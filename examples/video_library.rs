//! A digital-video-library scenario (the paper's Informedia motivation):
//! frames from the same shot form tight clusters in feature space; "find
//! frames like this one" should mostly return frames of the same shot.
//!
//! The cluster data set of §5.4 models exactly this. We index clustered
//! frame features with the SR-tree, run similarity queries, and measure
//! how much of the top-k comes from the correct shot, plus the
//! non-uniformity advantage over the SS-tree.
//!
//! ```text
//! cargo run --release --example video_library
//! ```

use srtree::dataset::{cluster, ClusterSpec};
use srtree::sstree::SsTree;
use srtree::tree::SrTree;

type KnnProbe<'a> = (&'a srtree::pager::PageFile, &'a dyn Fn(&[f32]) -> usize);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DIM: usize = 16;
    const SHOTS: usize = 200; // clusters
    const FRAMES_PER_SHOT: usize = 100;
    const K: usize = 21;

    let spec = ClusterSpec {
        clusters: SHOTS,
        points_per_cluster: FRAMES_PER_SHOT,
        max_radius: 0.05,
    };
    println!(
        "indexing {} frames from {SHOTS} shots ({FRAMES_PER_SHOT} frames each, {DIM}-d features)...",
        SHOTS * FRAMES_PER_SHOT
    );
    let frames = cluster(spec, DIM, 2024);

    // Frame i belongs to shot i / FRAMES_PER_SHOT (generation order).
    let shot_of = |frame: u64| frame as usize / FRAMES_PER_SHOT;

    let mut sr = SrTree::create_in_memory(DIM, 8192)?;
    let mut ss = SsTree::create_in_memory(DIM, 8192)?;
    for (i, f) in frames.iter().enumerate() {
        sr.insert(f.clone(), i as u64)?;
        ss.insert(f.clone(), i as u64)?;
    }

    // --- shot recall of similarity queries ------------------------------
    let mut same_shot = 0usize;
    let mut total = 0usize;
    for probe in (0..frames.len()).step_by(997) {
        let hits = sr.knn(frames[probe].coords(), K)?;
        for h in &hits {
            total += 1;
            if shot_of(h.data) == shot_of(probe as u64) {
                same_shot += 1;
            }
        }
    }
    println!(
        "top-{K} similarity results from the same shot: {:.1}% \
         (tight clusters make neighbors shot-mates)",
        100.0 * same_shot as f64 / total as f64
    );
    assert!(same_shot * 2 > total, "clusters should dominate the top-k");

    // --- the SR-tree's non-uniform-data advantage -----------------------
    let probes: Vec<usize> = (0..frames.len()).step_by(199).collect();
    let mut reads = Vec::new();
    for (label, tree_reads) in [("SS-tree", false), ("SR-tree", true)] {
        let (pager, knn): KnnProbe = if tree_reads {
            (sr.pager(), &|q| sr.knn(q, K).unwrap().len())
        } else {
            (ss.pager(), &|q| ss.knn(q, K).unwrap().len())
        };
        pager.set_cache_capacity(0)?;
        pager.reset_stats();
        for &p in &probes {
            let _ = knn(frames[p].coords());
        }
        let avg = pager.stats().tree_reads() as f64 / probes.len() as f64;
        println!("{label}: {avg:.1} page reads per query");
        reads.push(avg);
    }
    println!(
        "SR-tree reads are {:.0}% of the SS-tree's on clustered video features",
        100.0 * reads[1] / reads[0]
    );
    Ok(())
}
