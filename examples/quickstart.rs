//! Quickstart: build an SR-tree, run nearest-neighbor and range queries,
//! persist it to disk, and reopen it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use srtree::dataset::uniform;
use srtree::tree::SrTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- build an index over 10,000 random 16-d feature vectors --------
    let dim = 16;
    let points = uniform(10_000, dim, 42);
    let mut tree = SrTree::create_in_memory(dim, 8192)?;
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64)?;
    }
    println!(
        "built an SR-tree: {} points, height {}, fanout {} (node) / {} (leaf)",
        tree.len(),
        tree.height(),
        tree.params().max_node,
        tree.params().max_leaf,
    );

    // --- k nearest neighbors -------------------------------------------
    let query = points[0].coords();
    let hits = tree.knn(query, 5)?;
    println!("\n5 nearest neighbors of point 0:");
    for n in &hits {
        println!("  id {:>6}  distance {:.4}", n.data, n.dist2.sqrt());
    }
    assert_eq!(hits[0].data, 0, "a point is its own nearest neighbor");

    // --- range query ----------------------------------------------------
    let within = tree.range(query, 0.8)?;
    println!("\n{} points within distance 0.8 of point 0", within.len());

    // --- how many pages did that cost? ----------------------------------
    tree.pager().set_cache_capacity(0)?; // cold-cache accounting
    tree.pager().reset_stats();
    tree.knn(query, 21)?;
    let stats = tree.pager().stats();
    println!(
        "\na 21-NN query reads {} pages ({} node-level, {} leaf-level)",
        stats.tree_reads(),
        stats.logical_reads(srtree::pager::PageKind::Node),
        stats.logical_reads(srtree::pager::PageKind::Leaf),
    );

    // --- persistence -----------------------------------------------------
    let path = std::env::temp_dir().join("srtree-quickstart.pages");
    {
        let mut on_disk = SrTree::create(&path, dim)?;
        for (i, p) in points.iter().take(1000).enumerate() {
            on_disk.insert(p.clone(), i as u64)?;
        }
        on_disk.flush()?;
    }
    let reopened = SrTree::open(&path)?;
    println!(
        "\nreopened {} from disk: {} points, height {}",
        path.display(),
        reopened.len(),
        reopened.height()
    );
    let again = reopened.knn(points[0].coords(), 3)?;
    assert_eq!(again[0].data, 0);
    std::fs::remove_file(&path).ok();
    println!("quickstart OK");
    Ok(())
}
