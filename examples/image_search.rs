//! Content-based image retrieval — the paper's motivating application.
//!
//! A simulated image database stores 16-bin color histograms (the
//! paper's "real data set" format). Given a query image, the SR-tree
//! retrieves the most similar images; we check the answers against an
//! exact linear scan and compare the page reads of all five index
//! structures on the same workload.
//!
//! ```text
//! cargo run --release --example image_search
//! ```

use srtree::dataset::{real_sim, sample_queries};
use srtree::query::brute_force_knn;
use srtree::tree::SrTree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const DIM: usize = 16;
    const IMAGES: usize = 20_000;
    const K: usize = 10;

    println!("indexing {IMAGES} simulated image color histograms ({DIM}-d)...");
    let histograms = real_sim(IMAGES, DIM, 7);

    let mut tree = SrTree::create_in_memory(DIM, 8192)?;
    for (i, h) in histograms.iter().enumerate() {
        tree.insert(h.clone(), i as u64)?;
    }

    // --- similarity search for a few query images -----------------------
    let queries = sample_queries(&histograms, 5, 99);
    let flat: Vec<(&[f32], u64)> = histograms
        .iter()
        .enumerate()
        .map(|(i, h)| (h.coords(), i as u64))
        .collect();

    for (qi, q) in queries.iter().enumerate() {
        let hits = tree.knn(q.coords(), K)?;
        let exact = brute_force_knn(flat.iter().copied(), q.coords(), K);
        assert_eq!(hits.len(), exact.len());
        for (h, e) in hits.iter().zip(exact.iter()) {
            assert!(
                (h.dist2 - e.dist2).abs() < 1e-9,
                "index disagrees with scan"
            );
        }
        println!(
            "query {}: top-{} similar images {:?} (exact match with linear scan)",
            qi,
            K,
            hits.iter().map(|n| n.data).take(5).collect::<Vec<_>>()
        );
    }

    // --- compare the cost across index structures ----------------------
    println!("\npage reads per {K}-NN query (average over 100 queries, cold cache):");
    let workload = sample_queries(&histograms, 100, 3);
    let with_ids: Vec<(srtree::geometry::Point, u64)> = histograms
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();

    let mut rstar = srtree::rstar::RstarTree::create_in_memory(DIM, 8192)?;
    let mut sstree = srtree::sstree::SsTree::create_in_memory(DIM, 8192)?;
    let mut kdb = srtree::kdbtree::KdbTree::create_in_memory(DIM, 8192)?;
    for (i, h) in histograms.iter().enumerate() {
        rstar.insert(h.clone(), i as u64)?;
        sstree.insert(h.clone(), i as u64)?;
        kdb.insert(h.clone(), i as u64)?;
    }
    let vam = srtree::vamsplit::VamTree::build_in_memory(with_ids, DIM, 8192)?;

    let mut results: Vec<(&str, f64)> = Vec::new();
    macro_rules! measure {
        ($label:expr, $t:expr) => {{
            $t.pager().set_cache_capacity(0)?;
            $t.pager().reset_stats();
            for q in &workload {
                let _ = $t.knn(q.coords(), K)?;
            }
            results.push((
                $label,
                $t.pager().stats().tree_reads() as f64 / workload.len() as f64,
            ));
        }};
    }
    measure!("K-D-B-tree", kdb);
    measure!("R*-tree", rstar);
    measure!("SS-tree", sstree);
    measure!("VAMSplit R-tree", vam);
    measure!("SR-tree", tree);

    for (label, reads) in &results {
        println!("  {label:<16} {reads:>8.1}");
    }
    let ss = results.iter().find(|(l, _)| *l == "SS-tree").unwrap().1;
    let sr = results.iter().find(|(l, _)| *l == "SR-tree").unwrap().1;
    println!(
        "\nSR-tree reads are {:.0}% of the SS-tree's — the paper's ~68% real-data result",
        100.0 * sr / ss
    );
    Ok(())
}
