//! Fault injection from the public API: wrap a `PageStore`/`LogStore`
//! pair in the pager's `FaultInjector`, arm faults while a tree is
//! live, and watch them surface as typed errors — the same machinery
//! the tier-1 `tests/fault_injection.rs`, `tests/crash_recovery.rs`,
//! and `tests/differential_fuzz.rs` suites are built on.
//!
//! ```bash
//! cargo run --example fault_injection
//! ```

use sr_testkit::{generate, seed_line, DataDist, FaultInjector, WorkloadSpec};
use srtree::dataset::uniform;
use srtree::pager::{MemLogStore, MemPageStore, PageFile};
use srtree::tree::SrTree;

fn main() {
    // A fault-wrapped in-memory store + WAL pair; both halves share one
    // fault state, and the handle stays with us after the PageFile
    // takes ownership. The unwrapped clones share the same bytes — they
    // are how we "restart the process" later.
    let store = MemPageStore::new(2048);
    let log = MemLogStore::new();
    let (surviving_store, surviving_log) = (store.clone(), log.clone());
    let (store, log, faults) = FaultInjector::wrap_parts(Box::new(store), Box::new(log));
    let pf = PageFile::create_from_parts(store, log).expect("create page file");
    // Cache off: every logical access is a physical store or log op, so
    // armed faults fire inside the operation that caused them.
    pf.set_cache_capacity(0).expect("disable cache");
    let mut tree = SrTree::create_from(pf, 4, 64).expect("create tree");

    let points = uniform(500, 4, 42);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("clean insert");
    }
    println!("built: {} entries, height {}", tree.len(), tree.height());

    // Fail the next read: the k-NN surfaces a typed error, no panic.
    faults.fail_nth_read(0);
    match tree.knn(points[0].coords(), 5) {
        Err(e) => println!("armed read fault  -> {e}"),
        Ok(_) => unreachable!("armed fault must fire"),
    }

    // Tear the 3rd write from now: only a 100-byte prefix of that WAL
    // append persists.
    faults.torn_nth_write(2, 100);
    let mut torn_err = None;
    for (i, p) in points.iter().enumerate() {
        if let Err(e) = tree.insert(p.clone(), (1000 + i) as u64) {
            torn_err = Some(e);
            break;
        }
    }
    println!(
        "armed torn write  -> {}",
        torn_err.expect("torn write fires")
    );

    // Clear faults; the store works again and the stats tell the story.
    faults.clear();
    let s = faults.stats();
    println!(
        "stats: {} reads, {} writes, {} syncs, {} injected ({} torn)",
        s.reads, s.writes, s.syncs, s.injected, s.torn_writes
    );
    let hits = tree.knn(points[0].coords(), 5).expect("store recovered");
    println!("recovered: 5-NN of point 0 -> ids {:?}", {
        hits.iter().map(|n| n.data).collect::<Vec<_>>()
    });

    // Crash recovery, end to end: log a batch, then kill the machine
    // *inside* the commit — after the log fsync seals it (the
    // durability barrier) but before the checkpoint reaches the store.
    // "Restarting the process" on the surviving bytes must replay the
    // sealed frames and recover every one of those inserts.
    tree.flush().expect("commit the clean state");
    for (i, p) in points.iter().take(50).enumerate() {
        tree.insert(p.clone(), (5_000 + i) as u64).expect("insert");
    }
    let committed = tree.len();
    faults.crash_at_sync(1); // sync 0 = log barrier, sync 1 = checkpoint
    let crash = tree.flush().expect_err("the crashed checkpoint surfaces");
    println!("armed crash       -> {crash}");
    drop(tree); // the dead process: its Drop-flush fails fast, writes nothing

    let pf = PageFile::open_from_parts(Box::new(surviving_store), Box::new(surviving_log))
        .expect("reopen replays the log");
    let ws = pf.wal_stats();
    let tree = SrTree::open_from(pf).expect("recovered tree opens");
    println!(
        "reopened: {} entries (committed {committed}), wal replays {} / torn tails {}",
        tree.len(),
        ws.replays,
        ws.torn_tails
    );
    assert_eq!(tree.len(), committed, "recovery is exact");

    // The differential fuzzer's replay currency: a fully materialized
    // op tape, reproducible from the one seed on this line.
    let tape = generate(
        &WorkloadSpec::standard(2_000, 8, DataDist::Clustered),
        0xD1FF,
    );
    println!("{}", seed_line(&tape));
}
