//! Fault injection from the public API: wrap any `PageStore` in the
//! pager's `FaultInjector`, arm faults while a tree is live, and watch
//! them surface as typed errors — the same machinery the tier-1
//! `tests/fault_injection.rs` and `tests/differential_fuzz.rs` suites
//! are built on.
//!
//! ```bash
//! cargo run --example fault_injection
//! ```

use sr_testkit::{generate, seed_line, DataDist, FaultInjector, WorkloadSpec};
use srtree::dataset::uniform;
use srtree::pager::{MemPageStore, PageFile};
use srtree::tree::SrTree;

fn main() {
    // A fault-wrapped in-memory store; the handle stays with us after
    // the PageFile takes ownership of the store.
    let (store, faults) = FaultInjector::wrap(Box::new(MemPageStore::new(2048)));
    let pf = PageFile::create_from_store(store).expect("create page file");
    // Cache off: every logical access is a physical store op, so armed
    // faults fire inside the operation that caused them.
    pf.set_cache_capacity(0).expect("disable cache");
    let mut tree = SrTree::create_from(pf, 4, 64).expect("create tree");

    let points = uniform(500, 4, 42);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).expect("clean insert");
    }
    println!("built: {} entries, height {}", tree.len(), tree.height());

    // Fail the next read: the k-NN surfaces a typed error, no panic.
    faults.fail_nth_read(0);
    match tree.knn(points[0].coords(), 5) {
        Err(e) => println!("armed read fault  -> {e}"),
        Ok(_) => unreachable!("armed fault must fire"),
    }

    // Tear the 3rd write from now: only a 100-byte prefix persists.
    faults.torn_nth_write(2, 100);
    let mut torn_err = None;
    for (i, p) in points.iter().enumerate() {
        if let Err(e) = tree.insert(p.clone(), (1000 + i) as u64) {
            torn_err = Some(e);
            break;
        }
    }
    println!(
        "armed torn write  -> {}",
        torn_err.expect("torn write fires")
    );

    // Clear faults; the store works again and the stats tell the story.
    faults.clear();
    let s = faults.stats();
    println!(
        "stats: {} reads, {} writes, {} injected ({} torn)",
        s.reads, s.writes, s.injected, s.torn_writes
    );
    let hits = tree.knn(points[0].coords(), 5).expect("store recovered");
    println!("recovered: 5-NN of point 0 -> ids {:?}", {
        hits.iter().map(|n| n.data).collect::<Vec<_>>()
    });

    // The differential fuzzer's replay currency: a fully materialized
    // op tape, reproducible from the one seed on this line.
    let tape = generate(
        &WorkloadSpec::standard(2_000, 8, DataDist::Clustered),
        0xD1FF,
    );
    println!("{}", seed_line(&tape));
}
