//! A guided tour of the SR-tree's design choices, using the ablation
//! APIs: how much pruning each region shape buys, what forced
//! reinsertion contributes, and what bulk loading changes.
//!
//! ```text
//! cargo run --release --example design_ablation
//! ```

use srtree::dataset::{real_sim, sample_queries};
use srtree::geometry::Point;
use srtree::pager::PageFile;
use srtree::tree::{DistanceBound, SrOptions, SrTree};

const DIM: usize = 16;
const N: usize = 10_000;
const K: usize = 21;

fn reads_per_query(tree: &SrTree, queries: &[Point], bound: DistanceBound) -> f64 {
    tree.pager().set_cache_capacity(0).unwrap();
    tree.pager().reset_stats();
    for q in queries {
        tree.knn_with_bound(q.coords(), K, bound).unwrap();
    }
    tree.pager().stats().tree_reads() as f64 / queries.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("indexing {N} simulated color histograms ({DIM}-d)...\n");
    let points = real_sim(N, DIM, 7);
    let queries = sample_queries(&points, 200, 11);
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();

    // --- the paper's SR-tree --------------------------------------------
    let mut sr = SrTree::create_in_memory(DIM, 8192)?;
    for (p, id) in &with_ids {
        sr.insert(p.clone(), *id)?;
    }

    println!("§4.4 — which region shape does the pruning? (reads per {K}-NN query)");
    let both = reads_per_query(&sr, &queries, DistanceBound::Both);
    let sphere = reads_per_query(&sr, &queries, DistanceBound::SphereOnly);
    let rect = reads_per_query(&sr, &queries, DistanceBound::RectOnly);
    println!("  max(d_s, d_r)  (the SR-tree): {both:>8.1}");
    println!("  sphere only     (an SS view): {sphere:>8.1}");
    println!("  rectangle only  (an R* view): {rect:>8.1}");
    assert!(both <= sphere && both <= rect);

    // --- forced reinsertion ----------------------------------------------
    let mut no_reinsert = SrTree::create_with_options(
        PageFile::create_in_memory(8192)?,
        DIM,
        512,
        SrOptions {
            disable_reinsertion: true,
            ..Default::default()
        },
    )?;
    for (p, id) in &with_ids {
        no_reinsert.insert(p.clone(), *id)?;
    }
    let without = reads_per_query(&no_reinsert, &queries, DistanceBound::Both);
    println!("\nforced reinsertion: {both:.1} reads with, {without:.1} without");

    // --- bulk loading ------------------------------------------------------
    let mut bulk = SrTree::create_in_memory(DIM, 8192)?;
    bulk.bulk_load(with_ids.clone())?;
    let bulk_reads = reads_per_query(&bulk, &queries, DistanceBound::Both);
    println!(
        "\nbulk-loaded tree: {} leaves vs {} dynamic; {bulk_reads:.1} reads vs {both:.1}",
        bulk.num_leaves()?,
        sr.num_leaves()?,
    );
    println!(
        "\n(the dynamic tree reads less on clustered data: the centroid\n\
         insertion algorithm organizes it better than spatial packing —\n\
         the quiet hero of the paper's real-data results)"
    );
    Ok(())
}
