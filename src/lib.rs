//! Facade crate for the SR-tree reproduction workspace.
//!
//! Re-exports every crate of the reproduction of Katayama & Satoh,
//! *"The SR-tree: An Index Structure for High-Dimensional Nearest Neighbor
//! Queries"* (SIGMOD 1997), so downstream users can depend on a single
//! crate:
//!
//! ```
//! use srtree::tree::SrTree;       // the paper's contribution
//! use srtree::geometry::Point;
//! # let _ = (0, 0);
//! ```
//!
//! The individual crates remain usable on their own; see the workspace
//! README for the architecture overview.

#![forbid(unsafe_code)]

/// Workload generators: uniform, cluster, simulated color-histogram data.
pub use sr_dataset as dataset;
/// Parallel batch-query executor over any `SpatialIndex`.
pub use sr_exec as exec;
/// Geometry kernel: points, rectangles, spheres, MINDIST/MAXDIST.
pub use sr_geometry as geometry;
/// Baseline: the K-D-B-tree (Robinson, SIGMOD 1981).
pub use sr_kdbtree as kdbtree;
/// Observability: counters, histograms, span timers behind `Recorder`.
pub use sr_obs as obs;
/// Disk page store: 8 KiB pages, LRU buffer pool, I/O statistics.
pub use sr_pager as pager;
/// Generic k-NN / range search engines and brute-force ground truth.
pub use sr_query as query;
/// Baseline: the R\*-tree (Beckmann et al., SIGMOD 1990).
pub use sr_rstar as rstar;
/// TCP query service: thread-per-connection, admission control,
/// batch coalescing, graceful shutdown.
pub use sr_serve as serve;
/// Baseline: the SS-tree (White & Jain, ICDE 1996).
pub use sr_sstree as sstree;
/// The SR-tree itself (paper §4).
pub use sr_tree as tree;
/// Baseline: the VAMSplit R-tree (White & Jain, SPIE 1996), static build.
pub use sr_vamsplit as vamsplit;
/// Typed `Request`/`Response` API, checksummed wire frames, and the
/// shared `execute` entry point the CLI and the server dispatch through.
pub use sr_wire as wire;
