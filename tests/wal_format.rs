//! WAL frame-format contract, exercised through the public `srtree`
//! facade: encode/decode round-trips, checksum rejection of *every*
//! single-bit corruption of a seeded frame corpus, and the
//! empty/partial-tail shapes replay must classify as cleanly truncated
//! rather than corrupt.
//!
//! These are black-box guarantees downstream tooling may rely on (a
//! future `srtool wal-dump`, external recovery audits), so they pin the
//! byte-level format — not just the behavior of `sr_pager`'s own
//! replay, which `tests/crash_recovery.rs` covers end to end.

use srtree::pager::{
    crc32, decode_frame, encode_commit_frame, encode_frame, encode_header, encode_page_frame,
    scan_log, FrameDecode, WalFrame, FRAME_HEADER, WAL_HEADER, WAL_MAGIC, WAL_VERSION,
};

/// Small page size keeps the bit-flip sweep (8 positions per byte per
/// frame) fast while still covering header, checksum, and payload.
const PAGE: usize = 64;
const EPOCH: u64 = 7;

/// Deterministic byte soup (xorshift64*), so the corpus is seeded and
/// reproducible without any RNG dependency.
fn pseudo_bytes(n: usize, mut seed: u64) -> Vec<u8> {
    (0..n)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

/// The seeded corpus: page frames over varied images and ids, plus
/// commit markers at varied sequence numbers.
fn corpus() -> Vec<(WalFrame, Vec<u8>)> {
    let mut frames = Vec::new();
    for (i, seed) in [0x1u64, 0xDEAD_BEEF, 0xFFFF_FFFF_FFFF_FFFF]
        .iter()
        .enumerate()
    {
        let image = pseudo_bytes(PAGE, *seed);
        let frame = WalFrame::Page {
            id: i as u64 * 1000 + 3,
            image: image.clone(),
        };
        let bytes = encode_page_frame(i as u64 * 1000 + 3, &image, EPOCH).unwrap();
        frames.push((frame, bytes));
    }
    for seq in [0u64, 1, u64::MAX] {
        let frame = WalFrame::Commit { seq };
        let bytes = encode_commit_frame(seq, EPOCH).unwrap();
        frames.push((frame, bytes));
    }
    frames
}

#[test]
fn frames_round_trip_bit_exactly() {
    for (frame, bytes) in corpus() {
        // The two encoders agree byte for byte.
        assert_eq!(bytes, encode_frame(&frame, EPOCH).unwrap());
        match decode_frame(&bytes, EPOCH, PAGE) {
            FrameDecode::Frame(decoded, used) => {
                assert_eq!(decoded, frame);
                assert_eq!(used, bytes.len(), "frame must consume exactly its bytes");
            }
            other => panic!("round trip failed for {frame:?}: {other:?}"),
        }
        // Trailing bytes after a frame belong to the next record and
        // must not change the decode.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        assert!(
            matches!(decode_frame(&padded, EPOCH, PAGE), FrameDecode::Frame(_, used) if used == bytes.len())
        );
    }
}

/// Every single-bit flip anywhere in a frame — kind, id, length,
/// checksum, payload — must be rejected. Nothing may decode to a valid
/// frame, because replay trusts whatever decodes.
#[test]
fn every_single_bit_flip_is_rejected() {
    for (frame, bytes) in corpus() {
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match decode_frame(&flipped, EPOCH, PAGE) {
                    FrameDecode::Corrupt => {}
                    other => panic!(
                        "{frame:?}: flip of byte {byte} bit {bit} was not rejected: {other:?}"
                    ),
                }
            }
        }
    }
}

/// A frame checksummed under one epoch must not validate under another:
/// stale frames surviving a truncation at the same byte offset are
/// indistinguishable from live ones except by epoch salt.
#[test]
fn frames_do_not_validate_under_a_different_epoch() {
    for (frame, bytes) in corpus() {
        assert_eq!(
            decode_frame(&bytes, EPOCH + 1, PAGE),
            FrameDecode::Corrupt,
            "{frame:?} validated under a stale epoch"
        );
    }
}

/// Empty buffers and every strict prefix of a frame are `Incomplete` —
/// the cleanly-truncated-tail shape replay discards without complaint —
/// never `Corrupt` and never a spurious `Frame`.
#[test]
fn empty_and_partial_tails_are_incomplete() {
    assert_eq!(decode_frame(&[], EPOCH, PAGE), FrameDecode::Incomplete);
    let (_, bytes) = &corpus()[0];
    for cut in 0..bytes.len() {
        // A prefix cut inside the 17-byte header can never name a
        // length, so it is always Incomplete; a cut inside the payload
        // is Incomplete because the header's length outruns the buffer.
        assert_eq!(
            decode_frame(&bytes[..cut], EPOCH, PAGE),
            FrameDecode::Incomplete,
            "prefix of {cut} bytes misclassified"
        );
    }
}

/// The header round-trips, self-checksums, and pins magic/version.
#[test]
fn header_layout_is_pinned() {
    let h = encode_header(PAGE, EPOCH).unwrap();
    assert_eq!(h.len(), WAL_HEADER);
    assert_eq!(u32::from_le_bytes(h[0..4].try_into().unwrap()), WAL_MAGIC);
    assert_eq!(u32::from_le_bytes(h[4..8].try_into().unwrap()), WAL_VERSION);
    assert_eq!(
        u32::from_le_bytes(h[8..12].try_into().unwrap()),
        PAGE as u32
    );
    assert_eq!(u64::from_le_bytes(h[12..20].try_into().unwrap()), EPOCH);
    assert_eq!(
        u32::from_le_bytes(h[20..24].try_into().unwrap()),
        crc32(&h[..20])
    );
}

/// Whole-log scans: uncommitted frames drop, commit markers seal, torn
/// tails stop the scan, and a stale-epoch generation yields nothing.
#[test]
fn scan_log_classifies_tails() {
    let image_a = pseudo_bytes(PAGE, 11);
    let image_b = pseudo_bytes(PAGE, 22);
    let mut log = encode_header(PAGE, EPOCH).unwrap();
    log.extend(encode_page_frame(4, &image_a, EPOCH).unwrap());
    log.extend(encode_commit_frame(1, EPOCH).unwrap());
    log.extend(encode_page_frame(9, &image_b, EPOCH).unwrap());
    let sealed_len = log.len();

    // Frame 9 is unsealed: it must drop, not replay.
    let scan = scan_log(&log, PAGE).unwrap();
    assert_eq!(scan.committed, vec![(4, image_a.clone())]);
    assert_eq!((scan.commits, scan.dropped_frames), (1, 1));
    assert!(!scan.torn_tail, "a clean frame boundary is not a tear");
    assert_eq!(scan.header_epoch, EPOCH);

    // A torn half-frame after it marks the tail torn; the committed
    // prefix still replays.
    log.extend_from_slice(&encode_commit_frame(2, EPOCH).unwrap()[..FRAME_HEADER / 2]);
    let scan = scan_log(&log, PAGE).unwrap();
    assert_eq!(scan.committed, vec![(4, image_a.clone())]);
    assert!(scan.torn_tail);
    log.truncate(sealed_len);

    // The same bytes under last generation's epoch: everything is
    // stale, nothing replays, and the next epoch must move past it.
    let stale = scan_log(&log, PAGE).unwrap();
    assert_eq!(stale.header_epoch, EPOCH);
    let mut relabeled = encode_header(PAGE, EPOCH + 1).unwrap();
    relabeled.extend_from_slice(&log[WAL_HEADER..]);
    let scan = scan_log(&relabeled, PAGE).unwrap();
    assert!(scan.committed.is_empty(), "stale frames must not replay");
    assert!(scan.torn_tail, "stale frames read as a torn tail");

    // An empty log and a garbage header both degrade to no-op recovery.
    assert_eq!(scan_log(&[], PAGE).unwrap().committed.len(), 0);
    let garbage = pseudo_bytes(WAL_HEADER, 33);
    let scan = scan_log(&garbage, PAGE).unwrap();
    assert!(scan.committed.is_empty() && scan.torn_tail);
}
