//! Regression tests for three correctness bugs the observability work
//! exposed:
//!
//! 1. **Zero-tolerance sphere containment** — `contains`/`delete`
//!    descend by testing the stored point against each child's bounding
//!    sphere. Spheres are rebuilt from f32-rounded centroids, so a live
//!    point can sit a few ulps outside its ancestor's sphere; an exact
//!    test silently missed such entries. Fixed with an epsilon-tolerant
//!    test (`CONTAINMENT_EPS`).
//! 2. **Empty-tree height underflow** — query entry points computed
//!    `(height - 1) as u16` before checking for an empty tree, which
//!    underflows for height 0 (corrupt metadata) and did useless page
//!    walks for height 1 with an empty root. All five indexes now
//!    short-circuit empty trees.
//! 3. **Negative-radius panic** — `range` used to `assert!` on a
//!    negative radius. It is now a typed error (`InvalidRadius`) on all
//!    five indexes.

use srtree::dataset::{cluster, uniform, ClusterSpec};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

// ---------------------------------------------------------------------
// Bug 1: sphere-boundary containment.
// ---------------------------------------------------------------------

/// Clustered data maximizes centroid-update rounding: many near-identical
/// coordinates accumulate f32 error in the running means the spheres are
/// rebuilt from. Every inserted entry must remain visible to `contains`
/// and removable by `delete`.
#[test]
fn sr_tree_contains_and_delete_find_every_live_entry() {
    let points = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 150,
            max_radius: 0.001,
        },
        16,
        41,
    );
    let mut tree = SrTree::create_in_memory(16, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.contains(p, i as u64).unwrap(),
            "entry {i} was inserted but contains() cannot see it"
        );
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.delete(p, i as u64).unwrap(),
            "entry {i} was inserted but delete() cannot find it"
        );
    }
    assert!(tree.is_empty());
}

#[test]
fn ss_tree_contains_and_delete_find_every_live_entry() {
    let points = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 150,
            max_radius: 0.001,
        },
        16,
        43,
    );
    let mut tree = SsTree::create_in_memory(16, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.contains(p, i as u64).unwrap(),
            "entry {i} was inserted but contains() cannot see it"
        );
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.delete(p, i as u64).unwrap(),
            "entry {i} was inserted but delete() cannot find it"
        );
    }
    assert!(tree.is_empty());
}

// ---------------------------------------------------------------------
// Bug 2: empty-tree queries.
// ---------------------------------------------------------------------

/// Every query entry point must handle a tree that holds no points —
/// no panics, no underflow, empty results.
#[test]
fn empty_trees_answer_every_query_shape() {
    let q = vec![0.5f32; 8];
    let p = Point::new(q.clone());

    let mut sr = SrTree::create_in_memory(8, 4096).unwrap();
    assert!(sr.knn(&q, 5).unwrap().is_empty());
    assert!(sr.knn_best_first(&q, 5).unwrap().is_empty());
    assert!(sr.range(&q, 1.0).unwrap().is_empty());
    assert!(!sr.contains(&p, 0).unwrap());
    assert!(!sr.delete(&p, 0).unwrap());

    let mut ss = SsTree::create_in_memory(8, 4096).unwrap();
    assert!(ss.knn(&q, 5).unwrap().is_empty());
    assert!(ss.range(&q, 1.0).unwrap().is_empty());
    assert!(!ss.contains(&p, 0).unwrap());
    assert!(!ss.delete(&p, 0).unwrap());

    let mut rs = RstarTree::create_in_memory(8, 4096).unwrap();
    assert!(rs.knn(&q, 5).unwrap().is_empty());
    assert!(rs.range(&q, 1.0).unwrap().is_empty());
    assert!(!rs.contains(&p, 0).unwrap());
    assert!(!rs.delete(&p, 0).unwrap());

    let mut kdb = KdbTree::create_in_memory(8, 4096).unwrap();
    assert!(kdb.knn(&q, 5).unwrap().is_empty());
    assert!(kdb.range(&q, 1.0).unwrap().is_empty());
    assert!(!kdb.contains(&p, 0).unwrap());
    assert!(!kdb.delete(&p, 0).unwrap());

    let vam = VamTree::build_in_memory(Vec::new(), 8, 4096).unwrap();
    assert!(vam.knn(&q, 5).unwrap().is_empty());
    assert!(vam.range(&q, 1.0).unwrap().is_empty());
    assert!(!vam.contains(&p, 0).unwrap());
}

/// Deleting the last entry takes a tree back to empty; queries must
/// keep working afterwards (this exercises the post-shrink state, not
/// just the freshly created one).
#[test]
fn trees_emptied_by_deletion_still_answer_queries() {
    let q = vec![0.5f32; 4];
    let p = Point::new(q.clone());

    let mut sr = SrTree::create_in_memory(4, 4096).unwrap();
    sr.insert(p.clone(), 7).unwrap();
    assert!(sr.delete(&p, 7).unwrap());
    assert!(sr.knn(&q, 3).unwrap().is_empty());
    assert!(sr.range(&q, 10.0).unwrap().is_empty());
    assert!(!sr.contains(&p, 7).unwrap());
}

// ---------------------------------------------------------------------
// Bug 3: negative radius is a typed error.
// ---------------------------------------------------------------------

#[test]
fn negative_radius_is_rejected_not_a_panic() {
    let points = uniform(100, 4, 47);
    let q = vec![0.5f32; 4];

    let mut sr = SrTree::create_in_memory(4, 4096).unwrap();
    let mut ss = SsTree::create_in_memory(4, 4096).unwrap();
    let mut rs = RstarTree::create_in_memory(4, 4096).unwrap();
    let mut kdb = KdbTree::create_in_memory(4, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
        kdb.insert(p.clone(), i as u64).unwrap();
    }
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let vam = VamTree::build_in_memory(with_ids, 4, 4096).unwrap();

    use srtree::kdbtree::TreeError as KdbError;
    use srtree::rstar::TreeError as RsError;
    use srtree::sstree::TreeError as SsError;
    use srtree::tree::TreeError as SrError;
    use srtree::vamsplit::TreeError as VamError;

    assert!(matches!(
        sr.range(&q, -1.0),
        Err(SrError::InvalidRadius(r)) if r == -1.0
    ));
    assert!(matches!(ss.range(&q, -1.0), Err(SsError::InvalidRadius(_))));
    assert!(matches!(rs.range(&q, -1.0), Err(RsError::InvalidRadius(_))));
    assert!(matches!(
        kdb.range(&q, -1.0),
        Err(KdbError::InvalidRadius(_))
    ));
    assert!(matches!(
        vam.range(&q, -1.0),
        Err(VamError::InvalidRadius(_))
    ));
    assert!(matches!(
        sr.range(&q, f64::NAN),
        Err(SrError::InvalidRadius(_))
    ));

    // Zero and +inf stay valid: a degenerate and a full-scan radius.
    assert!(sr.range(&q, 0.0).is_ok());
    assert_eq!(sr.range(&q, f64::INFINITY).unwrap().len(), points.len());
}
