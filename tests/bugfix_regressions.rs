//! Regression tests for three correctness bugs the observability work
//! exposed:
//!
//! 1. **Zero-tolerance sphere containment** — `contains`/`delete`
//!    descend by testing the stored point against each child's bounding
//!    sphere. Spheres are rebuilt from f32-rounded centroids, so a live
//!    point can sit a few ulps outside its ancestor's sphere; an exact
//!    test silently missed such entries. Fixed with an epsilon-tolerant
//!    test (`CONTAINMENT_EPS`).
//! 2. **Empty-tree height underflow** — query entry points computed
//!    `(height - 1) as u16` before checking for an empty tree, which
//!    underflows for height 0 (corrupt metadata) and did useless page
//!    walks for height 1 with an empty root. All five indexes now
//!    short-circuit empty trees.
//! 3. **Negative-radius panic** — `range` used to `assert!` on a
//!    negative radius. It is now a typed error (`InvalidRadius`) on all
//!    five indexes.
//! 4. **Distance-accumulation drift** — the columnar kernels could have
//!    reassociated the per-point sum (chunked partial sums), which
//!    drifts `dist2` by ulps and silently reorders near-tied neighbor
//!    lists (the candidate set breaks exact-distance ties by data id).
//!    The kernels pin the canonical accumulation order instead; this
//!    suite holds all five trees, in all three leaf-scan modes, to
//!    bit-identical distances against the brute-force oracle on
//!    adversarially tie-heavy data, with exact id agreement below the
//!    k-th distance. *At* the k-th distance the traversal may keep any
//!    tied point — a region at exactly the k-th distance is pruned
//!    (`knn.rs`), so the data-id tie-break only arbitrates within the
//!    leaves actually visited — and the test checks group membership
//!    there instead.

use srtree::dataset::{cluster, uniform, ClusterSpec};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

// ---------------------------------------------------------------------
// Bug 1: sphere-boundary containment.
// ---------------------------------------------------------------------

/// Clustered data maximizes centroid-update rounding: many near-identical
/// coordinates accumulate f32 error in the running means the spheres are
/// rebuilt from. Every inserted entry must remain visible to `contains`
/// and removable by `delete`.
#[test]
fn sr_tree_contains_and_delete_find_every_live_entry() {
    let points = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 150,
            max_radius: 0.001,
        },
        16,
        41,
    );
    let mut tree = SrTree::create_in_memory(16, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.contains(p, i as u64).unwrap(),
            "entry {i} was inserted but contains() cannot see it"
        );
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.delete(p, i as u64).unwrap(),
            "entry {i} was inserted but delete() cannot find it"
        );
    }
    assert!(tree.is_empty());
}

#[test]
fn ss_tree_contains_and_delete_find_every_live_entry() {
    let points = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 150,
            max_radius: 0.001,
        },
        16,
        43,
    );
    let mut tree = SsTree::create_in_memory(16, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.contains(p, i as u64).unwrap(),
            "entry {i} was inserted but contains() cannot see it"
        );
    }
    for (i, p) in points.iter().enumerate() {
        assert!(
            tree.delete(p, i as u64).unwrap(),
            "entry {i} was inserted but delete() cannot find it"
        );
    }
    assert!(tree.is_empty());
}

// ---------------------------------------------------------------------
// Bug 2: empty-tree queries.
// ---------------------------------------------------------------------

/// Every query entry point must handle a tree that holds no points —
/// no panics, no underflow, empty results.
#[test]
fn empty_trees_answer_every_query_shape() {
    let q = vec![0.5f32; 8];
    let p = Point::new(q.clone());

    let mut sr = SrTree::create_in_memory(8, 4096).unwrap();
    assert!(sr.knn(&q, 5).unwrap().is_empty());
    assert!(sr.knn_best_first(&q, 5).unwrap().is_empty());
    assert!(sr.range(&q, 1.0).unwrap().is_empty());
    assert!(!sr.contains(&p, 0).unwrap());
    assert!(!sr.delete(&p, 0).unwrap());

    let mut ss = SsTree::create_in_memory(8, 4096).unwrap();
    assert!(ss.knn(&q, 5).unwrap().is_empty());
    assert!(ss.range(&q, 1.0).unwrap().is_empty());
    assert!(!ss.contains(&p, 0).unwrap());
    assert!(!ss.delete(&p, 0).unwrap());

    let mut rs = RstarTree::create_in_memory(8, 4096).unwrap();
    assert!(rs.knn(&q, 5).unwrap().is_empty());
    assert!(rs.range(&q, 1.0).unwrap().is_empty());
    assert!(!rs.contains(&p, 0).unwrap());
    assert!(!rs.delete(&p, 0).unwrap());

    let mut kdb = KdbTree::create_in_memory(8, 4096).unwrap();
    assert!(kdb.knn(&q, 5).unwrap().is_empty());
    assert!(kdb.range(&q, 1.0).unwrap().is_empty());
    assert!(!kdb.contains(&p, 0).unwrap());
    assert!(!kdb.delete(&p, 0).unwrap());

    let vam = VamTree::build_in_memory(Vec::new(), 8, 4096).unwrap();
    assert!(vam.knn(&q, 5).unwrap().is_empty());
    assert!(vam.range(&q, 1.0).unwrap().is_empty());
    assert!(!vam.contains(&p, 0).unwrap());
}

/// Deleting the last entry takes a tree back to empty; queries must
/// keep working afterwards (this exercises the post-shrink state, not
/// just the freshly created one).
#[test]
fn trees_emptied_by_deletion_still_answer_queries() {
    let q = vec![0.5f32; 4];
    let p = Point::new(q.clone());

    let mut sr = SrTree::create_in_memory(4, 4096).unwrap();
    sr.insert(p.clone(), 7).unwrap();
    assert!(sr.delete(&p, 7).unwrap());
    assert!(sr.knn(&q, 3).unwrap().is_empty());
    assert!(sr.range(&q, 10.0).unwrap().is_empty());
    assert!(!sr.contains(&p, 7).unwrap());
}

// ---------------------------------------------------------------------
// Bug 3: negative radius is a typed error.
// ---------------------------------------------------------------------

#[test]
fn negative_radius_is_rejected_not_a_panic() {
    let points = uniform(100, 4, 47);
    let q = vec![0.5f32; 4];

    let mut sr = SrTree::create_in_memory(4, 4096).unwrap();
    let mut ss = SsTree::create_in_memory(4, 4096).unwrap();
    let mut rs = RstarTree::create_in_memory(4, 4096).unwrap();
    let mut kdb = KdbTree::create_in_memory(4, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
        kdb.insert(p.clone(), i as u64).unwrap();
    }
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let vam = VamTree::build_in_memory(with_ids, 4, 4096).unwrap();

    use srtree::kdbtree::TreeError as KdbError;
    use srtree::rstar::TreeError as RsError;
    use srtree::sstree::TreeError as SsError;
    use srtree::tree::TreeError as SrError;
    use srtree::vamsplit::TreeError as VamError;

    assert!(matches!(
        sr.range(&q, -1.0),
        Err(SrError::InvalidRadius(r)) if r == -1.0
    ));
    assert!(matches!(ss.range(&q, -1.0), Err(SsError::InvalidRadius(_))));
    assert!(matches!(rs.range(&q, -1.0), Err(RsError::InvalidRadius(_))));
    assert!(matches!(
        kdb.range(&q, -1.0),
        Err(KdbError::InvalidRadius(_))
    ));
    assert!(matches!(
        vam.range(&q, -1.0),
        Err(VamError::InvalidRadius(_))
    ));
    assert!(matches!(
        sr.range(&q, f64::NAN),
        Err(SrError::InvalidRadius(_))
    ));

    // Zero and +inf stay valid: a degenerate and a full-scan radius.
    assert!(sr.range(&q, 0.0).is_ok());
    assert_eq!(sr.range(&q, f64::INFINITY).unwrap().len(), points.len());
}

// ---------------------------------------------------------------------
// Bug 4: distance-accumulation drift on near-tied data.
// ---------------------------------------------------------------------

/// Adversarially tie-heavy point set: a few duplicated points (exact
/// ties, resolved by the data-id tie-break; kept below leaf capacity —
/// a page of identical points cannot be split by the K-D-B-tree), an
/// axis-symmetric shell of 2·dim distinct points at *exactly* the same
/// distance from its center, coordinate permutations of one multiset
/// (sums that agree exactly in real arithmetic but differ by ulps under
/// any *reassociated* f64 order), and 1-ulp perturbations.
fn near_tie_points(dim: usize) -> Vec<Point> {
    let mut pts = Vec::new();
    // 5 exact duplicates of one point.
    let base: Vec<f32> = (0..dim).map(|d| 0.25 + d as f32 * 1e-3).collect();
    for _ in 0..5 {
        pts.push(Point::new(base.clone()));
    }
    // Tie shell: center ± delta along each axis — every point's dist2
    // to the center is the identical single-term sum delta².
    let center = vec![0.5f32; dim];
    for d in 0..dim {
        for sign in [-0.25f32, 0.25] {
            let mut p = center.clone();
            p[d] += sign;
            pts.push(Point::new(p));
        }
    }
    // Cyclic permutations of one multiset of distinct values.
    let multiset: Vec<f32> = (0..dim).map(|d| 1.0 + (d as f32) * 0.125).collect();
    for rot in 0..dim {
        for rep in 0..4 {
            let mut p: Vec<f32> = (0..dim).map(|d| multiset[(d + rot) % dim]).collect();
            // Shift every fourth copy by one ulp in one coordinate.
            if rep == 3 {
                p[rot] = f32::from_bits(p[rot].to_bits() + 1);
            }
            pts.push(Point::new(p));
        }
    }
    // A spread of ordinary points so the trees have real structure.
    for p in uniform(200, dim, 131) {
        pts.push(p);
    }
    pts
}

#[test]
fn near_ties_resolve_identically_across_trees_and_scan_modes() {
    use srtree::query::{brute_force_knn, LeafScan, Neighbor};

    let dim = 16;
    let points = near_tie_points(dim);
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();

    let mut sr = SrTree::create_in_memory(dim, 4096).unwrap();
    let mut ss = SsTree::create_in_memory(dim, 4096).unwrap();
    let mut rs = RstarTree::create_in_memory(dim, 4096).unwrap();
    let mut kdb = KdbTree::create_in_memory(dim, 4096).unwrap();
    for (p, i) in &with_ids {
        sr.insert(p.clone(), *i).unwrap();
        ss.insert(p.clone(), *i).unwrap();
        rs.insert(p.clone(), *i).unwrap();
        kdb.insert(p.clone(), *i).unwrap();
    }
    let vam = VamTree::build_in_memory(with_ids.clone(), dim, 4096).unwrap();

    // Query at a duplicated point (the id tie-break decides the top
    // ranks), at the tie shell's center (2·dim exactly-equidistant
    // answers), at a permuted point, and off to the side of the
    // permutation shell.
    let mut queries: Vec<Vec<f32>> = vec![
        points[0].coords().to_vec(),
        vec![0.5; dim],
        points[5 + 2 * dim + 3].coords().to_vec(),
    ];
    queries.push((0..dim).map(|d| 1.0 + (d as f32) * 0.125 * 0.5).collect());

    // Oracle agreement: distances bit-equal rank by rank; ids exact
    // below the k-th distance; ids at the k-th distance must belong to
    // the dataset's tied group (the traversal prunes regions at exactly
    // the k-th distance, so *which* tied point survives is its choice).
    let check = |name: &str, got: &[Neighbor], want: &[Neighbor], q: &[f32], scan: LeafScan| {
        use srtree::geometry::dist2;
        assert_eq!(got.len(), want.len(), "{name} {scan:?}: length");
        let boundary = want.last().map(|n| n.dist2.to_bits());
        for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                g.dist2.to_bits(),
                w.dist2.to_bits(),
                "{name} {scan:?} rank {rank}: dist {} vs oracle {}",
                g.dist2,
                w.dist2
            );
            if Some(g.dist2.to_bits()) != boundary {
                assert_eq!(
                    g.data, w.data,
                    "{name} {scan:?} rank {rank}: interior id drifted"
                );
            } else {
                assert!(
                    with_ids.iter().any(|(p, i)| *i == g.data
                        && dist2(p.coords(), q).to_bits() == g.dist2.to_bits()),
                    "{name} {scan:?} rank {rank}: id {} is not in the tied group",
                    g.data
                );
            }
        }
    };

    for (qi, q) in queries.iter().enumerate() {
        for k in [1usize, 4, 32, 60] {
            let want = brute_force_knn(with_ids.iter().map(|(p, i)| (p.coords(), *i)), q, k);
            assert_eq!(want.len(), k.min(points.len()), "query {qi} oracle size");
            let rec = &srtree::obs::Noop;
            type ScanFn<'a> = &'a dyn Fn(LeafScan) -> Vec<Neighbor>;
            let trees: [(&str, ScanFn); 5] = [
                ("sr", &|s| sr.knn_scan_with(q, k, s, rec).unwrap()),
                ("ss", &|s| ss.knn_scan_with(q, k, s, rec).unwrap()),
                ("rstar", &|s| rs.knn_scan_with(q, k, s, rec).unwrap()),
                ("kdb", &|s| kdb.knn_scan_with(q, k, s, rec).unwrap()),
                ("vam", &|s| vam.knn_scan_with(q, k, s, rec).unwrap()),
            ];
            for (name, knn) in trees {
                // The drift regression proper: all three kernels must
                // return the *same* answer, bit for bit, id for id.
                let scalar = knn(LeafScan::Scalar);
                for scan in [LeafScan::Columnar, LeafScan::EarlyAbandon] {
                    let alt = knn(scan);
                    assert_eq!(scalar.len(), alt.len(), "{name} {scan:?} length");
                    for (rank, (a, b)) in scalar.iter().zip(alt.iter()).enumerate() {
                        assert_eq!(
                            (a.dist2.to_bits(), a.data),
                            (b.dist2.to_bits(), b.data),
                            "{name} {scan:?} rank {rank}: kernel drifted from scalar"
                        );
                    }
                    check(name, &alt, &want, q, scan);
                }
                check(name, &scalar, &want, q, LeafScan::Scalar);
            }
        }
    }
}
