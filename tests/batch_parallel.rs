//! Integration: the parallel batch-query executor is invisible in the
//! output.
//!
//! The contract `sr-exec` promises (and the tentpole of the concurrent
//! read path): fanning a batch across T workers returns *byte-identical*
//! neighbor lists to a single-threaded loop, for every index structure,
//! while the answers stay equal to the brute-force oracle. A read fault
//! in one worker must surface as a typed error without poisoning the
//! index for subsequent batches.

use srtree::dataset::{sample_queries, uniform};
use srtree::exec::{run_knn_batch, ExecError};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::pager::{FaultInjector, MemLogStore, MemPageStore, PageFile, PagerError};
use srtree::query::{IndexError, SpatialIndex};
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

use sr_testkit::Model;

const DIM: usize = 8;
const K: usize = 10;
const PAGE_SIZE: usize = 8192;
const DATA_AREA: usize = 512;

fn pagefile() -> PageFile {
    PageFile::create_in_memory(PAGE_SIZE).unwrap()
}

/// Build all five structures over the same seeded point set.
fn build_all(points: &[Point]) -> Vec<Box<dyn SpatialIndex>> {
    let with_ids = |points: &[Point]| -> Vec<(Point, u64)> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect()
    };
    let mut out: Vec<Box<dyn SpatialIndex>> = Vec::new();
    let mut sr = SrTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut ss = SsTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut rs = RstarTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut kdb = KdbTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
        kdb.insert(p.clone(), i as u64).unwrap();
    }
    out.push(Box::new(sr));
    out.push(Box::new(ss));
    out.push(Box::new(rs));
    out.push(Box::new(kdb));
    out.push(Box::new(
        VamTree::build_from(pagefile(), with_ids(points), DIM, DATA_AREA).unwrap(),
    ));
    out
}

fn query_batch(points: &[Point], n: usize) -> Vec<Vec<f32>> {
    sample_queries(points, n, 0xBA7C)
        .into_iter()
        .map(|p| p.coords().to_vec())
        .collect()
}

/// T=1 and T=8 produce byte-identical neighbor lists on every structure,
/// and both match the brute-force oracle.
#[test]
fn t1_and_t8_agree_on_all_five_trees() {
    let points = uniform(2_000, DIM, 0x5EED);
    let queries = query_batch(&points, 48);

    let mut oracle = Model::new();
    for (i, p) in points.iter().enumerate() {
        oracle.insert(p.clone(), i as u64);
    }

    for index in build_all(&points) {
        // A small pool forces real churn through the sharded cache.
        index.pager().set_cache_capacity(16).unwrap();
        let seq = run_knn_batch(index.as_ref(), &queries, K, 1).unwrap();
        let par = run_knn_batch(index.as_ref(), &queries, K, 8).unwrap();
        assert_eq!(seq.threads, 1);
        assert_eq!(par.threads, 8);
        assert_eq!(
            seq.results,
            par.results,
            "{}: T=8 diverged from T=1",
            index.kind_name()
        );
        for (q, hits) in queries.iter().zip(&seq.results) {
            let expect = oracle.knn(q, K);
            assert_eq!(
                hits,
                &expect,
                "{}: tree disagrees with brute-force oracle",
                index.kind_name()
            );
        }
    }
}

/// The merged batch I/O window obeys the same exactness invariants as a
/// single-threaded query loop: every miss is one physical read.
#[test]
fn batch_io_window_stays_exact_at_t8() {
    let points = uniform(1_500, DIM, 0x10A2);
    let queries = query_batch(&points, 40);
    for index in build_all(&points) {
        index.pager().set_cache_capacity(8).unwrap();
        index.pager().reset_stats();
        let out = run_knn_batch(index.as_ref(), &queries, K, 8).unwrap();
        assert_eq!(
            out.io.cache_misses(),
            out.io.physical_reads(),
            "{}: sharded pool lost a read under T=8",
            index.kind_name()
        );
        assert!(out.io.physical_reads() > 0, "the batch must touch pages");
    }
}

/// One worker hitting an injected read fault aborts the batch with a
/// typed [`ExecError::Query`] whose source is the pager fault — and the
/// index is *not* poisoned: the same batch succeeds afterwards with
/// results identical to a clean run.
#[test]
fn injected_read_fault_is_typed_and_does_not_poison_the_pool() {
    let points = uniform(1_000, DIM, 0xFA17);
    let (store, log, faults) = FaultInjector::wrap_parts(
        Box::new(MemPageStore::new(PAGE_SIZE)),
        Box::new(MemLogStore::new()),
    );
    let pf = PageFile::create_from_parts(store, log).unwrap();
    let mut tree = SrTree::create_from(pf, DIM, DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Cold cache: every logical read reaches the store, so the armed
    // fault reliably fires mid-batch.
    tree.pager().set_cache_capacity(0).unwrap();
    let queries = query_batch(&points, 32);

    let clean = run_knn_batch(&tree, &queries, K, 1).unwrap();

    faults.fail_nth_read(40);
    let err = run_knn_batch(&tree, &queries, K, 4).expect_err("armed fault must surface");
    match err {
        ExecError::Query { index, source } => {
            assert!(index < queries.len());
            assert!(
                matches!(source, IndexError::Pager(PagerError::Injected { .. })),
                "fault must arrive as a pager error, got: {source}"
            );
        }
        other => panic!("wrong error shape: {other}"),
    }

    // The store is healthy again and no shard lock, stat counter, or
    // cached page was poisoned: the identical batch now succeeds.
    faults.clear();
    let retry = run_knn_batch(&tree, &queries, K, 4).unwrap();
    assert_eq!(clean.results, retry.results, "results changed after fault");
}

/// Degenerate batch requests fail with a typed error instead of hanging
/// or being silently reinterpreted — and they leave the index fully
/// usable for a corrected request.
#[test]
fn degenerate_batch_requests_are_typed_errors() {
    let points = uniform(200, DIM, 0xDE6E);
    let pf = PageFile::create_in_memory(PAGE_SIZE).unwrap();
    let mut tree = SrTree::create_from(pf, DIM, DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let queries = query_batch(&points, 8);

    assert!(matches!(
        run_knn_batch(&tree, &queries, K, 0).expect_err("zero threads"),
        ExecError::ZeroThreads
    ));
    assert!(matches!(
        run_knn_batch(&tree, &[], K, 4).expect_err("empty batch"),
        ExecError::EmptyBatch
    ));
    let out = run_knn_batch(&tree, &queries, K, 4).expect("corrected request");
    assert_eq!(out.results.len(), queries.len());
}
