//! Integration: windowed I/O accounting (`IoStats::since`) stays
//! coherent while the buffer pool churns.
//!
//! The paper's cost metric is disk reads per query, measured cold-cache
//! (§5). These tests pin the invariants that make that measurement
//! trustworthy at any pool size:
//!
//! * logical reads ≥ physical reads (the pool can only absorb traffic);
//! * capacity 0 ⇒ logical reads == physical reads (true cold cache);
//! * every logical read is exactly one cache hit or one cache miss, and
//!   every miss is exactly one physical read;
//! * per-query windows via `since` see the same invariants as the
//!   global counters.

use srtree::dataset::{sample_queries, uniform};
use srtree::pager::{IoStats, PageKind};
use srtree::tree::SrTree;

fn build_tree(n: usize, dim: usize) -> SrTree {
    let points = uniform(n, dim, 23);
    let mut tree = SrTree::create_in_memory(dim, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

fn total_logical_reads(s: &IoStats) -> u64 {
    s.logical_reads(PageKind::Meta)
        + s.logical_reads(PageKind::Node)
        + s.logical_reads(PageKind::Leaf)
        + s.logical_reads(PageKind::Free)
}

/// Run a query workload and check the windowed counters per query.
fn check_invariants_at_capacity(tree: &SrTree, capacity: usize) {
    tree.pager().set_cache_capacity(capacity).unwrap();
    assert_eq!(tree.pager().cache_capacity(), capacity);
    tree.pager().reset_stats();

    let queries = sample_queries(&uniform(500, tree.dim(), 23), 20, 29);
    let mut before = tree.pager().stats();
    for q in &queries {
        let found = tree.knn(q.coords(), 5).unwrap();
        assert_eq!(found.len(), 5);

        let now = tree.pager().stats();
        let window = now.since(&before);
        before = now;

        let logical = total_logical_reads(&window);
        assert!(logical > 0, "a knn query must read pages");
        assert!(
            logical >= window.physical_reads(),
            "pool can only absorb reads: logical {logical} < physical {}",
            window.physical_reads()
        );
        assert_eq!(
            window.cache_hits() + window.cache_misses(),
            logical,
            "every logical read is one hit or one miss"
        );
        assert_eq!(
            window.cache_misses(),
            window.physical_reads(),
            "every miss is one physical read"
        );
        if capacity == 0 {
            assert_eq!(
                logical,
                window.physical_reads(),
                "capacity 0 must be true cold cache"
            );
            assert_eq!(window.cache_hits(), 0);
        }
    }

    let total = tree.pager().stats();
    assert_eq!(
        total.cache_hits() + total.cache_misses(),
        total_logical_reads(&total),
        "global counters obey the same identity as the windows"
    );
}

#[test]
fn windowed_accounting_cold_cache() {
    let tree = build_tree(500, 8);
    check_invariants_at_capacity(&tree, 0);
}

#[test]
fn windowed_accounting_small_pool_churns() {
    let tree = build_tree(500, 8);
    // A 2-page pool is smaller than any root-to-leaf working set, so
    // the workload must churn it.
    check_invariants_at_capacity(&tree, 2);
    let s = tree.pager().stats();
    assert!(
        s.cache_evictions() > 0,
        "a 2-page pool under a query workload must evict"
    );
    assert!(s.cache_misses() > 0);
}

/// Drive the same query workload from many threads at once and check
/// that the sharded pool's counters stay *exact*: every miss is exactly
/// one physical read (the shard lock is held across the read-through, so
/// two racing readers of one page can never both fetch it), and every
/// logical read is exactly one hit or one miss.
fn check_concurrent_invariants_at_capacity(tree: &SrTree, capacity: usize, threads: usize) {
    tree.pager().set_cache_capacity(capacity).unwrap();
    tree.pager().reset_stats();

    let queries = sample_queries(&uniform(500, tree.dim(), 23), 64, 31);
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queries = &queries;
            scope.spawn(move || {
                for q in queries.iter().skip(w).step_by(threads) {
                    let found = tree.knn(q.coords(), 5).unwrap();
                    assert_eq!(found.len(), 5);
                }
            });
        }
    });

    let s = tree.pager().stats();
    let logical = total_logical_reads(&s);
    assert!(logical > 0, "the workload must read pages");
    assert_eq!(
        s.cache_hits() + s.cache_misses(),
        logical,
        "every logical read is one hit or one miss, even under {threads} threads"
    );
    assert_eq!(
        s.cache_misses(),
        s.physical_reads(),
        "misses must equal physical reads exactly under {threads} threads"
    );
    if capacity == 0 {
        assert_eq!(s.cache_hits(), 0, "capacity 0 must stay a true cold cache");
        assert_eq!(logical, s.physical_reads());
    }
}

#[test]
fn concurrent_accounting_stays_exact_under_churn() {
    let tree = build_tree(500, 8);
    // A 2-page pool guarantees every worker churns shared shards.
    check_concurrent_invariants_at_capacity(&tree, 2, 8);
    let s = tree.pager().stats();
    assert!(s.cache_evictions() > 0, "a tiny pool must evict");
}

#[test]
fn concurrent_accounting_cold_cache() {
    let tree = build_tree(500, 8);
    check_concurrent_invariants_at_capacity(&tree, 0, 8);
}

#[test]
fn concurrent_accounting_warm_pool() {
    let tree = build_tree(500, 8);
    check_concurrent_invariants_at_capacity(&tree, 4096, 8);
    let s = tree.pager().stats();
    assert!(s.cache_hits() > 0, "a pool larger than the file must hit");
}

/// The accounting invariants hold on a pager that *replayed* its WAL at
/// open. A crashed checkpoint (commit marker durable, store sync
/// failed) leaves committed frames in the log; the reopen reapplies
/// them — replay I/O is recovery work, not query work, so the counters
/// start at zero and `misses == physical_reads` must hold from the
/// first recovered query on.
#[test]
fn windowed_accounting_survives_a_wal_replay() {
    use sr_testkit::{faulted_parts, reopen};
    use srtree::pager::PageFile;

    let (store, log, handle, shared) = faulted_parts(4096);
    let pf = PageFile::create_from_parts(store, log).unwrap();
    let mut tree = SrTree::create_from(pf, 8, 64).unwrap();
    let points = uniform(500, 8, 23);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Fail the checkpoint's *store* sync (the second sync of this flush,
    // after the log's commit barrier): the commit is durable, the
    // checkpoint is not, and the log never truncates.
    handle.crash_at_sync(1);
    assert!(tree.flush().is_err(), "the crashed checkpoint must surface");
    drop(tree);

    let pf = reopen(&shared).expect("reopen must replay the committed log");
    let ws = pf.wal_stats();
    assert_eq!(ws.replays, 1, "this open must have replayed: {ws:?}");
    assert!(
        ws.replayed_frames > 0,
        "the commit must carry frames: {ws:?}"
    );
    assert_eq!(
        (ws.dropped_frames, ws.torn_tails),
        (0, 0),
        "a clean post-commit tail has nothing to drop: {ws:?}"
    );
    let s = pf.stats();
    assert_eq!(
        (s.physical_reads(), s.physical_writes()),
        (0, 0),
        "replay I/O is recovery work and must not pollute query accounting"
    );

    let tree = SrTree::open_from(pf).unwrap();
    assert_eq!(tree.len(), 500, "every committed insert must survive");
    check_invariants_at_capacity(&tree, 2);
    check_invariants_at_capacity(&tree, 0);
}

#[test]
fn windowed_accounting_large_pool_absorbs_reads() {
    let tree = build_tree(500, 8);
    check_invariants_at_capacity(&tree, 4096);
    let s = tree.pager().stats();
    assert!(
        s.cache_hits() > 0,
        "a pool larger than the tree must serve hits"
    );
    // After the first warming pass, repeated queries should be all-hit:
    // rerun one query and check its window is purely logical.
    let q = sample_queries(&uniform(500, tree.dim(), 23), 1, 29);
    let before = tree.pager().stats();
    let _ = tree.knn(q[0].coords(), 5).unwrap();
    let window = tree.pager().stats().since(&before);
    assert_eq!(
        window.physical_reads(),
        0,
        "warm pool larger than the file must not touch the store"
    );
    assert_eq!(window.cache_misses(), 0);
    assert!(window.cache_hits() > 0);
}
