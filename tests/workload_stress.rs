//! Long mixed workloads: interleaved inserts, deletes, and queries with
//! periodic full invariant verification — the closest thing to a
//! soak test that fits in CI.

use srtree::dataset::SeededRng;
use srtree::dataset::{real_sim, uniform};
use srtree::geometry::Point;
use srtree::query::brute_force_knn;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;

/// A reference set mirroring what the tree should contain.
struct Model {
    live: Vec<(Point, u64)>,
}

impl Model {
    fn knn(&self, q: &[f32], k: usize) -> Vec<f64> {
        brute_force_knn(self.live.iter().map(|(p, id)| (p.coords(), *id)), q, k)
            .iter()
            .map(|n| n.dist2)
            .collect()
    }
}

#[test]
fn srtree_survives_mixed_churn() {
    let pool = uniform(3_000, 8, 999);
    let mut rng = SeededRng::seed_from_u64(1234);
    let mut tree = SrTree::create_in_memory(8, 2048).unwrap();
    let mut model = Model { live: Vec::new() };
    let mut next_id = 0u64;

    for step in 0..2_000 {
        let roll: f64 = rng.random();
        if roll < 0.6 || model.live.is_empty() {
            // insert
            let p = pool[rng.random_range(0..pool.len())].clone();
            tree.insert(p.clone(), next_id).unwrap();
            model.live.push((p, next_id));
            next_id += 1;
        } else if roll < 0.85 {
            // delete a random live point
            let i = rng.random_range(0..model.live.len());
            let (p, id) = model.live.swap_remove(i);
            assert!(tree.delete(&p, id).unwrap(), "step {step}: lost ({id})");
        } else {
            // query and compare against the model
            let q = pool[rng.random_range(0..pool.len())].clone();
            let k = 1 + rng.random_range(0..10usize);
            let got: Vec<f64> = tree
                .knn(q.coords(), k)
                .unwrap()
                .iter()
                .map(|n| n.dist2)
                .collect();
            let want = model.knn(q.coords(), k);
            assert_eq!(got.len(), want.len(), "step {step}");
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g - w).abs() < 1e-9, "step {step}: {g} vs {w}");
            }
        }
        if step % 250 == 0 {
            srtree::tree::verify::check(&tree).unwrap_or_else(|e| panic!("step {step}: {e}"));
            assert_eq!(tree.len() as usize, model.live.len());
        }
    }
    srtree::tree::verify::check(&tree).unwrap();
}

#[test]
fn sstree_survives_mixed_churn() {
    let pool = real_sim(2_000, 8, 888);
    let mut rng = SeededRng::seed_from_u64(4321);
    let mut tree = SsTree::create_in_memory(8, 2048).unwrap();
    let mut model: Vec<(Point, u64)> = Vec::new();
    let mut next_id = 0u64;

    for step in 0..1_500 {
        if rng.random::<f64>() < 0.65 || model.is_empty() {
            let p = pool[rng.random_range(0..pool.len())].clone();
            tree.insert(p.clone(), next_id).unwrap();
            model.push((p, next_id));
            next_id += 1;
        } else {
            let i = rng.random_range(0..model.len());
            let (p, id) = model.swap_remove(i);
            assert!(tree.delete(&p, id).unwrap(), "step {step}");
        }
        if step % 300 == 0 {
            srtree::sstree::verify::check(&tree).unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }
    srtree::sstree::verify::check(&tree).unwrap();
    // final cross-check on a few queries
    for q in pool.iter().step_by(511) {
        let got = tree.knn(q.coords(), 5).unwrap();
        let want = brute_force_knn(model.iter().map(|(p, id)| (p.coords(), *id)), q.coords(), 5);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist2 - w.dist2).abs() < 1e-9);
        }
    }
}

#[test]
fn duplicate_heavy_workload() {
    // Many duplicated positions with distinct payloads (image databases
    // contain near-identical frames). The K-D-B-tree is exempt — it
    // cannot hold more coincident points than one page (documented).
    let mut tree = SrTree::create_in_memory(4, 2048).unwrap();
    let positions = uniform(20, 4, 777);
    let mut expected = 0u64;
    for round in 0..30u64 {
        for (i, p) in positions.iter().enumerate() {
            tree.insert(p.clone(), round * 100 + i as u64).unwrap();
            expected += 1;
        }
    }
    assert_eq!(tree.len(), expected);
    srtree::tree::verify::check(&tree).unwrap();
    // every duplicate is retrievable
    let got = tree.knn(positions[0].coords(), 30).unwrap();
    assert_eq!(got.len(), 30);
    assert!(got.iter().all(|n| n.dist2 == 0.0));
    // delete one round's worth
    for (i, p) in positions.iter().enumerate() {
        assert!(tree.delete(p, i as u64).unwrap());
    }
    assert_eq!(tree.len(), expected - 20);
    srtree::tree::verify::check(&tree).unwrap();
}

#[test]
fn adversarial_coordinates() {
    // Extreme magnitudes, negatives, and axis-degenerate data must not
    // break region arithmetic.
    let mut tree = SrTree::create_in_memory(3, 2048).unwrap();
    let mut pts: Vec<Point> = Vec::new();
    for i in 0..300 {
        let p = match i % 4 {
            0 => Point::new(vec![i as f32 * 1e6, 0.0, 0.0]), // huge, on-axis
            1 => Point::new(vec![-1e-30, i as f32, 1e30f32.sqrt()]),
            2 => Point::new(vec![0.0, 0.0, 0.0]), // repeated origin
            _ => Point::new(vec![(i as f32).sin(), (i as f32).cos(), -(i as f32)]),
        };
        tree.insert(p.clone(), i as u64).unwrap();
        pts.push(p);
    }
    srtree::tree::verify::check(&tree).unwrap();
    let flat: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in pts.iter().step_by(37) {
        let got = tree.knn(q.coords(), 7).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q.coords(), 7);
        for (g, w) in got.iter().zip(want.iter()) {
            let tol = 1e-6 * w.dist2.max(1.0);
            assert!(
                (g.dist2 - w.dist2).abs() <= tol,
                "{} vs {}",
                g.dist2,
                w.dist2
            );
        }
    }
}
