//! Decoder-totality fuzzing: every byte-level decoder in the system —
//! the columnar leaf view, the wire frame codecs, and the WAL scanner —
//! must be a *total* function of arbitrary input bytes. Random and
//! mutated buffers may decode, report `Incomplete`, or fail with a
//! typed error; they must never panic, over-read, or allocate from an
//! unvalidated length. This is the runtime counterpart of srlint's L9
//! taint pass: the lint proves every decoded count is checked before
//! use, this arm hammers the same decoders with inputs that lie.
//!
//! Set `SRTREE_FUZZ_SEED` (decimal or `0x`-hex) to replay a failure;
//! the fixed default seeds keep CI deterministic.

use srtree::dataset::SeededRng;
use srtree::pager::{
    encode_header, encode_page_frame, put_leaf_columns, scan_log, LeafColumns, PageCodec,
};
use srtree::wire::{
    decode_request, decode_response, encode_request, encode_response, Request, Response, Row,
    DEFAULT_MAX_BODY,
};

/// Random + mutated buffers per seed, per decoder. Small enough to stay
/// in tier-1 time, large enough that every early-exit branch of each
/// decoder is hit many times per run.
const CASES: usize = 4_000;

fn seed_for(default: u64) -> u64 {
    match std::env::var("SRTREE_FUZZ_SEED") {
        Ok(s) => parse_seed(&s).unwrap_or_else(|| panic!("bad SRTREE_FUZZ_SEED {s:?}")),
        Err(_) => default,
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

fn random_bytes(rng: &mut SeededRng, max_len: usize) -> Vec<u8> {
    let len = rng.random_range(0..max_len + 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// Corrupt a valid buffer: flip bytes, truncate, or splice garbage —
/// the mutations a torn write or a hostile peer would produce.
fn mutate(rng: &mut SeededRng, valid: &[u8]) -> Vec<u8> {
    let mut buf = valid.to_vec();
    match rng.random_range(0..4) {
        0 => {
            // Flip up to 4 bytes.
            for _ in 0..rng.random_range(1..5) {
                if buf.is_empty() {
                    break;
                }
                let i = rng.random_range(0..buf.len());
                buf[i] ^= rng.next_u64() as u8 | 1;
            }
        }
        1 => {
            // Truncate to a strict prefix.
            buf.truncate(rng.random_range(0..buf.len().max(1)));
        }
        2 => {
            // Append garbage.
            buf.extend(random_bytes(rng, 64));
        }
        _ => {
            // Overwrite a random aligned u32 with an extreme value —
            // the shape of a lying length or count field.
            if buf.len() >= 4 {
                let i = rng.random_range(0..buf.len() - 3);
                let lie: u32 = [0, 1, u32::MAX, u32::MAX / 2, 0xFFFF][rng.random_range(0..5)];
                buf[i..i + 4].copy_from_slice(&lie.to_le_bytes());
            }
        }
    }
    buf
}

#[test]
fn leaf_columns_parse_is_total() {
    for (si, base) in [0xDECFu64 << 16 | 1, 0xDECF << 16 | 2, 0xDECF << 16 | 3]
        .into_iter()
        .enumerate()
    {
        let mut rng = SeededRng::seed_from_u64(seed_for(base));
        for case in 0..CASES {
            let dim = 1 + rng.random_range(0..32);
            let buf = if rng.random_range(0..2) == 0 {
                random_bytes(&mut rng, 4096)
            } else {
                // A well-formed columnar payload, then mutated, so the
                // fuzz reaches past the header into the bounds math.
                let entries = rng.random_range(0..8);
                let data_area = 16usize;
                let mut valid = vec![0u8; 4 + entries * (dim * 8 + data_area)];
                let points: Vec<Vec<f32>> = (0..entries)
                    .map(|_| (0..dim).map(|_| rng.next_u64() as f32).collect())
                    .collect();
                let refs: Vec<(&[f32], u64)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.as_slice(), i as u64))
                    .collect();
                let mut c = PageCodec::new(&mut valid);
                put_leaf_columns(&mut c, dim, data_area, &refs).expect("valid leaf");
                mutate(&mut rng, &valid)
            };
            if let Ok(cols) = LeafColumns::parse(&buf, dim) {
                // A successful parse must expose in-bounds views.
                let n = cols.len();
                assert!(cols.coords().len() >= n * dim * 8, "seed {si} case {case}");
                assert_eq!(cols.data_ids().count(), n, "seed {si} case {case}");
            }
        }
    }
}

#[test]
fn wire_frame_decode_is_total() {
    for base in [0xD1CEu64 << 16 | 1, 0xD1CE << 16 | 2, 0xD1CE << 16 | 3] {
        let mut rng = SeededRng::seed_from_u64(seed_for(base));
        for _ in 0..CASES {
            let buf = if rng.random_range(0..2) == 0 {
                random_bytes(&mut rng, 512)
            } else {
                // Mutate a valid frame so the fuzz reaches past the
                // header checks into the body decoders.
                let dim = rng.random_range(0..16);
                let valid = if rng.random_range(0..2) == 0 {
                    encode_request(&Request::Knn {
                        query: vec![0.5; dim],
                        k: rng.random_range(0..64) as u32,
                    })
                    .expect("encode request")
                } else {
                    let rows: Vec<Row> = (0..rng.random_range(0..8))
                        .map(|i| Row {
                            data: i as u64,
                            dist: i as f64,
                        })
                        .collect();
                    encode_response(&Response::Rows(rows)).expect("encode response")
                };
                mutate(&mut rng, &valid)
            };
            // Any outcome but a panic is acceptable: Frame, Incomplete,
            // or a typed error.
            let _ = decode_request(&buf, DEFAULT_MAX_BODY);
            let _ = decode_response(&buf, DEFAULT_MAX_BODY);
            // A tiny cap exercises the TooLarge path on the same bytes.
            let _ = decode_request(&buf, 16);
            let _ = decode_response(&buf, 16);
        }
    }
}

#[test]
fn wal_scan_is_total() {
    const PS: usize = 256;
    for base in [0x5CA1u64 << 16 | 1, 0x5CA1 << 16 | 2, 0x5CA1 << 16 | 3] {
        let mut rng = SeededRng::seed_from_u64(seed_for(base));
        for _ in 0..CASES {
            let buf = if rng.random_range(0..2) == 0 {
                random_bytes(&mut rng, 2048)
            } else {
                // A valid header + a few page frames, then mutated.
                let mut log = encode_header(PS, 1).expect("encode header");
                for id in 0..rng.random_range(0..4) {
                    let image = vec![id as u8; PS];
                    log.extend(encode_page_frame(id as u64, &image, 1).expect("encode frame"));
                }
                mutate(&mut rng, &log)
            };
            // scan_log stops at the first unreadable frame (typed error
            // or truncated tail) — it must never panic on any bytes.
            let _ = scan_log(&buf, PS);
        }
    }
}
