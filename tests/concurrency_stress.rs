//! Integration: seeded-schedule concurrency stress across all five
//! trees.
//!
//! The dynamic counterpart to the L7/L8 lint passes: eight threads of
//! deterministic mixed k-NN / range traffic hammer one shared index
//! through a deliberately small buffer pool, with per-thread yield/spin
//! perturbation shuffling the interleavings between runs. After the
//! join, the pager's accounting must be exact — every cache miss is one
//! physical read and every logical read is one hit or one miss — and
//! every answer produced mid-storm must have matched the brute-force
//! oracle. Three root seeds per structure keep the schedule space
//! honest without making the suite slow.

use srtree::dataset::{sample_queries, uniform};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::pager::PageFile;
use srtree::query::SpatialIndex;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

use sr_testkit::{run_stress, total_logical_reads, Model, StressConfig};

const DIM: usize = 8;
const N_POINTS: usize = 1_500;
const PAGE_SIZE: usize = 8192;
const DATA_AREA: usize = 512;
const CACHE_PAGES: usize = 16;
const SEEDS: [u64; 3] = [0x5EED_0001, 0xD15C_0CAB, 0x0BAD_CAFE];

fn pagefile() -> PageFile {
    PageFile::create_in_memory(PAGE_SIZE).unwrap()
}

/// Build all five structures over the same seeded point set.
fn build_all(points: &[Point]) -> Vec<Box<dyn SpatialIndex>> {
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let mut sr = SrTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut ss = SsTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut rs = RstarTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    let mut kdb = KdbTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
        kdb.insert(p.clone(), i as u64).unwrap();
    }
    let vam = VamTree::build_from(pagefile(), with_ids, DIM, DATA_AREA).unwrap();
    vec![
        Box::new(sr),
        Box::new(ss),
        Box::new(rs),
        Box::new(kdb),
        Box::new(vam),
    ]
}

/// Eight threads, three seeds, five trees: oracle-exact answers and
/// exact I/O accounting at every join point.
#[test]
fn stress_all_five_trees_under_eight_threads() {
    let points = uniform(N_POINTS, DIM, 0xACE5);
    let queries = sample_queries(&points, 64, 0xF1E1D);

    let mut oracle = Model::new();
    for (i, p) in points.iter().enumerate() {
        oracle.insert(p.clone(), i as u64);
    }

    for index in build_all(&points) {
        // A small pool forces eviction churn, so hits, misses, and
        // physical reads all move under contention.
        index.pager().set_cache_capacity(CACHE_PAGES).unwrap();
        for seed in SEEDS {
            let cfg = StressConfig {
                threads: 8,
                ops_per_thread: 48,
                seed,
                ..StressConfig::default()
            };
            let report = run_stress(index.as_ref(), &oracle, &queries, &cfg)
                .unwrap_or_else(|msg| panic!("{msg}"));
            assert_eq!(
                report.ops,
                (cfg.threads * cfg.ops_per_thread) as u64,
                "{}: every scheduled op must run",
                index.kind_name()
            );
            assert!(
                report.knn_ops > 0 && report.range_ops > 0,
                "{}: seed {seed:#x} must exercise both query kinds",
                index.kind_name()
            );
            assert!(
                report.io.cache_misses() > 0,
                "{}: a {CACHE_PAGES}-page pool must miss under this load",
                index.kind_name()
            );
            assert!(
                total_logical_reads(&report.io) > 0,
                "{}: queries must read pages",
                index.kind_name()
            );
        }
    }
}

/// The same seed replays the same per-thread schedules: total operation
/// mix and logical read counts are identical across repeat runs even
/// though thread interleavings differ.
#[test]
fn stress_schedules_replay_deterministically() {
    let points = uniform(600, DIM, 0xACE5);
    let queries = sample_queries(&points, 32, 0xF1E1D);
    let mut oracle = Model::new();
    for (i, p) in points.iter().enumerate() {
        oracle.insert(p.clone(), i as u64);
    }
    let mut tree = SrTree::create_from(pagefile(), DIM, DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree.pager().set_cache_capacity(CACHE_PAGES).unwrap();

    let cfg = StressConfig {
        threads: 4,
        ops_per_thread: 32,
        seed: 0x7EA7,
        ..StressConfig::default()
    };
    let a = run_stress(&tree, &oracle, &queries, &cfg).unwrap();
    let b = run_stress(&tree, &oracle, &queries, &cfg).unwrap();
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.knn_ops, b.knn_ops);
    assert_eq!(a.range_ops, b.range_ops);
    // Logical reads are a pure function of the op tapes, which the seed
    // pins; only hit/miss split may shift with cache state.
    assert_eq!(total_logical_reads(&a.io), total_logical_reads(&b.io));
}
