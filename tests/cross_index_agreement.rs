//! Integration: all five index structures must return identical answers
//! on identical workloads — the precondition for every comparison the
//! paper makes.

use srtree::dataset::{cluster, real_sim, sample_queries, uniform, ClusterSpec};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::query::brute_force_knn;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

struct Fleet {
    kdb: KdbTree,
    rstar: RstarTree,
    ss: SsTree,
    sr: SrTree,
    vam: VamTree,
}

fn build_fleet(points: &[Point]) -> Fleet {
    let dim = points[0].dim();
    let mut kdb = KdbTree::create_in_memory(dim, 4096).unwrap();
    let mut rstar = RstarTree::create_in_memory(dim, 4096).unwrap();
    let mut ss = SsTree::create_in_memory(dim, 4096).unwrap();
    let mut sr = SrTree::create_in_memory(dim, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        kdb.insert(p.clone(), i as u64).unwrap();
        rstar.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        sr.insert(p.clone(), i as u64).unwrap();
    }
    let with_ids: Vec<(Point, u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect();
    let vam = VamTree::build_in_memory(with_ids, dim, 4096).unwrap();
    Fleet {
        kdb,
        rstar,
        ss,
        sr,
        vam,
    }
}

fn check_agreement(points: &[Point], queries: &[Point], k: usize) {
    let fleet = build_fleet(points);
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in queries {
        let truth = brute_force_knn(flat.iter().copied(), q.coords(), k);
        let answers = [
            fleet.kdb.knn(q.coords(), k).unwrap(),
            fleet.rstar.knn(q.coords(), k).unwrap(),
            fleet.ss.knn(q.coords(), k).unwrap(),
            fleet.sr.knn(q.coords(), k).unwrap(),
            fleet.vam.knn(q.coords(), k).unwrap(),
        ];
        for (i, got) in answers.iter().enumerate() {
            assert_eq!(got.len(), truth.len(), "structure {i} length");
            for (g, w) in got.iter().zip(truth.iter()) {
                assert!(
                    (g.dist2 - w.dist2).abs() < 1e-9,
                    "structure {i}: {} vs {}",
                    g.dist2,
                    w.dist2
                );
            }
            // Deterministic tie-breaking makes even the id lists equal.
            assert_eq!(
                got.iter().map(|n| n.data).collect::<Vec<_>>(),
                truth.iter().map(|n| n.data).collect::<Vec<_>>(),
                "structure {i} ids"
            );
        }
    }
}

#[test]
fn agreement_on_uniform_data() {
    let points = uniform(1_500, 8, 101);
    let queries = sample_queries(&points, 15, 5);
    check_agreement(&points, &queries, 21);
}

#[test]
fn agreement_on_clustered_data() {
    let points = cluster(
        ClusterSpec {
            clusters: 15,
            points_per_cluster: 80,
            max_radius: 0.04,
        },
        8,
        103,
    );
    let queries = sample_queries(&points, 15, 7);
    check_agreement(&points, &queries, 10);
}

#[test]
fn agreement_on_histogram_data() {
    let points = real_sim(1_200, 16, 107);
    let queries = sample_queries(&points, 10, 9);
    check_agreement(&points, &queries, 21);
}

#[test]
fn agreement_on_low_dimensional_data() {
    let points = uniform(1_000, 2, 109);
    let queries = sample_queries(&points, 15, 11);
    check_agreement(&points, &queries, 5);
}

#[test]
fn agreement_after_deletions() {
    // Delete a third of the points from every dynamic structure and
    // re-check agreement against the surviving ground truth.
    let points = uniform(900, 4, 113);
    let mut fleet = build_fleet(&points);
    let mut survivors: Vec<(Point, u64)> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        if i % 3 == 0 {
            assert!(fleet.kdb.delete(p, i as u64).unwrap());
            assert!(fleet.rstar.delete(p, i as u64).unwrap());
            assert!(fleet.ss.delete(p, i as u64).unwrap());
            assert!(fleet.sr.delete(p, i as u64).unwrap());
        } else {
            survivors.push((p.clone(), i as u64));
        }
    }
    let flat: Vec<(&[f32], u64)> = survivors.iter().map(|(p, i)| (p.coords(), *i)).collect();
    for (q, _) in survivors.iter().step_by(97) {
        let truth = brute_force_knn(flat.iter().copied(), q.coords(), 9);
        for got in [
            fleet.kdb.knn(q.coords(), 9).unwrap(),
            fleet.rstar.knn(q.coords(), 9).unwrap(),
            fleet.ss.knn(q.coords(), 9).unwrap(),
            fleet.sr.knn(q.coords(), 9).unwrap(),
        ] {
            for (g, w) in got.iter().zip(truth.iter()) {
                assert!((g.dist2 - w.dist2).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn range_agreement_across_structures() {
    let points = uniform(800, 4, 127);
    let fleet = build_fleet(&points);
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for (qi, radius) in [(3usize, 0.2f64), (77, 0.4), (400, 0.6)] {
        let q = points[qi].coords();
        let truth: Vec<u64> = srtree::query::brute_force_range(flat.iter().copied(), q, radius)
            .iter()
            .map(|n| n.data)
            .collect();
        let ids = |v: Vec<srtree::query::Neighbor>| v.iter().map(|n| n.data).collect::<Vec<_>>();
        assert_eq!(ids(fleet.kdb.range(q, radius).unwrap()), truth);
        assert_eq!(ids(fleet.rstar.range(q, radius).unwrap()), truth);
        assert_eq!(ids(fleet.ss.range(q, radius).unwrap()), truth);
        assert_eq!(ids(fleet.sr.range(q, radius).unwrap()), truth);
        assert_eq!(ids(fleet.vam.range(q, radius).unwrap()), truth);
    }
}
