//! Wire frame-format contract, exercised through the public `srtree`
//! facade: encode/decode round-trips for every request and response
//! kind, checksum rejection of *every* single-bit corruption of a
//! seeded frame corpus, and classification of every strict prefix as
//! `Incomplete` — never `Corrupt`, never a spurious frame.
//!
//! These are black-box guarantees remote clients in other languages may
//! rely on, so they pin the byte-level format — not just the behavior
//! of `sr_serve`'s own client, which `crates/serve`'s integration tests
//! cover end to end. The structure deliberately mirrors
//! `tests/wal_format.rs`: the wire frame is the WAL frame's trick
//! (salted CRCs, total decoding) applied to the network.

use srtree::wire::{
    decode_request, decode_response, encode_request, encode_response, Decoded, RemoteError,
    Request, Response, Row, WireError, DEFAULT_MAX_BODY,
};

/// Every request kind, with bodies covering empty, small, and
/// non-trivial float payloads.
fn request_corpus() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Knn {
            query: vec![0.25, -1.5, 3.0e-9, f32::MAX],
            k: 21,
        },
        Request::Range {
            query: vec![0.0; 16],
            radius: 0.327,
        },
        Request::Insert {
            point: vec![1.0, 2.0, 3.0],
            data: u64::MAX,
        },
        Request::Delete {
            point: vec![-4.5; 8],
            data: 0,
        },
        Request::Stats,
        Request::Shutdown,
    ]
}

/// Every response kind, including every error variant.
fn response_corpus() -> Vec<Response> {
    vec![
        Response::Rows(vec![
            Row {
                data: 17,
                dist: 0.0625,
            },
            Row {
                data: u64::MAX,
                dist: f64::MAX,
            },
        ]),
        Response::Rows(Vec::new()),
        Response::Ack { n: 800 },
        Response::Stats {
            json: "{\"schema_version\":1,\"kind\":\"sr\"}".to_string(),
        },
        Response::Error(RemoteError::Overloaded {
            active: 65,
            max: 64,
        }),
        Response::Error(RemoteError::ShuttingDown),
        Response::Error(RemoteError::TooLarge {
            len: 5 << 20,
            max: 4 << 20,
        }),
        Response::Error(RemoteError::Unsupported("static index".to_string())),
        Response::Error(RemoteError::BadRequest("dimension mismatch".to_string())),
        Response::Error(RemoteError::Failed("page I/O".to_string())),
    ]
}

#[test]
fn request_frames_round_trip_bit_exactly() {
    for req in request_corpus() {
        let bytes = encode_request(&req).unwrap();
        match decode_request(&bytes, DEFAULT_MAX_BODY).unwrap() {
            Decoded::Frame { msg, consumed } => {
                assert_eq!(msg, req);
                assert_eq!(
                    consumed,
                    bytes.len(),
                    "frame must consume exactly its bytes"
                );
            }
            Decoded::Incomplete => panic!("whole frame reported incomplete: {req:?}"),
        }
        // Trailing bytes belong to the next pipelined frame and must not
        // change the decode.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        assert!(matches!(
            decode_request(&padded, DEFAULT_MAX_BODY).unwrap(),
            Decoded::Frame { consumed, .. } if consumed == bytes.len()
        ));
    }
}

#[test]
fn response_frames_round_trip_bit_exactly() {
    for resp in response_corpus() {
        let bytes = encode_response(&resp).unwrap();
        match decode_response(&bytes, DEFAULT_MAX_BODY).unwrap() {
            Decoded::Frame { msg, consumed } => {
                assert_eq!(msg, resp);
                assert_eq!(consumed, bytes.len());
            }
            Decoded::Incomplete => panic!("whole frame reported incomplete: {resp:?}"),
        }
    }
}

/// Every single-bit flip anywhere in a frame — kind byte, length
/// prefix, either checksum, body — must decode to `Corrupt`. Nothing
/// may decode to a valid frame (the server dispatches whatever
/// decodes), and no flip may hang the decoder waiting for more bytes
/// (the header checksum is verified before the length is trusted).
#[test]
fn every_single_bit_flip_is_rejected() {
    for req in request_corpus() {
        let bytes = encode_request(&req).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match decode_request(&flipped, DEFAULT_MAX_BODY) {
                    Err(WireError::Corrupt { .. }) => {}
                    other => {
                        panic!("{req:?}: flip of byte {byte} bit {bit} was not rejected: {other:?}")
                    }
                }
            }
        }
    }
    for resp in response_corpus() {
        let bytes = encode_response(&resp).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                match decode_response(&flipped, DEFAULT_MAX_BODY) {
                    Err(WireError::Corrupt { .. }) => {}
                    other => panic!(
                        "{resp:?}: flip of byte {byte} bit {bit} was not rejected: {other:?}"
                    ),
                }
            }
        }
    }
}

/// Every strict prefix of a frame is `Incomplete` — the read-more-bytes
/// signal a streaming connection relies on — never `Corrupt` and never
/// a spurious short frame.
#[test]
fn every_strict_prefix_is_incomplete() {
    assert_eq!(
        decode_request(&[], DEFAULT_MAX_BODY).unwrap(),
        Decoded::Incomplete
    );
    for req in request_corpus() {
        let bytes = encode_request(&req).unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_request(&bytes[..cut], DEFAULT_MAX_BODY).unwrap(),
                Decoded::Incomplete,
                "{req:?}: prefix of {cut} bytes misclassified"
            );
        }
    }
    for resp in response_corpus() {
        let bytes = encode_response(&resp).unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_response(&bytes[..cut], DEFAULT_MAX_BODY).unwrap(),
                Decoded::Incomplete,
                "{resp:?}: prefix of {cut} bytes misclassified"
            );
        }
    }
}

/// The header layout is pinned: `kind:u8 | body_len:u32le | hcrc:u32le
/// | bcrc:u32le | body`, 13 header bytes. A Ping carries no body.
#[test]
fn header_layout_is_pinned() {
    let ping = encode_request(&Request::Ping).unwrap();
    assert_eq!(ping.len(), 13, "Ping is a bare 13-byte header");
    assert_eq!(ping[0], 0x01, "Ping request kind");
    assert_eq!(u32::from_le_bytes(ping[1..5].try_into().unwrap()), 0);

    let knn = encode_request(&Request::Knn {
        query: vec![1.0, 2.0],
        k: 5,
    })
    .unwrap();
    assert_eq!(knn[0], 0x02, "Knn request kind");
    // Body: k:u32 | dim:u32 | dim × f32.
    assert_eq!(u32::from_le_bytes(knn[1..5].try_into().unwrap()), 4 + 4 + 8);
    assert_eq!(u32::from_le_bytes(knn[13..17].try_into().unwrap()), 5);
    assert_eq!(u32::from_le_bytes(knn[17..21].try_into().unwrap()), 2);

    let ack = encode_response(&Response::Ack { n: 3 }).unwrap();
    assert_eq!(ack[0], 0x42, "Ack response kind");
    assert_eq!(u64::from_le_bytes(ack[13..21].try_into().unwrap()), 3);
}

/// A body larger than the decoder's cap is a typed `TooLarge` before
/// any body bytes are buffered — the admission-control contract that
/// stops one connection from ballooning server memory.
#[test]
fn oversized_bodies_are_typed_too_large() {
    let req = Request::Insert {
        point: vec![0.5; 256],
        data: 1,
    };
    let bytes = encode_request(&req).unwrap();
    // Hand the decoder only the 13-byte header: the cap must trip on the
    // declared length alone, without waiting for the body.
    assert!(matches!(
        decode_request(&bytes[..13], 64),
        Err(WireError::TooLarge { max: 64, .. })
    ));
}

/// Request and response kinds live in disjoint namespaces: a replayed
/// or cross-wired frame is `Corrupt`, never a confused misparse.
#[test]
fn kind_namespaces_are_disjoint() {
    for req in request_corpus() {
        let bytes = encode_request(&req).unwrap();
        assert!(matches!(
            decode_response(&bytes, DEFAULT_MAX_BODY),
            Err(WireError::Corrupt { .. })
        ));
    }
    for resp in response_corpus() {
        let bytes = encode_response(&resp).unwrap();
        assert!(matches!(
            decode_request(&bytes, DEFAULT_MAX_BODY),
            Err(WireError::Corrupt { .. })
        ));
    }
}
