//! Tier-1 fault injection: the pager's `FaultInjector` fails chosen
//! reads/writes, tears writes mid-page, and cuts off all I/O at a crash
//! point. Every injected fault must surface as a typed `Err` — never a
//! panic — and, now that the pager journals every mutation through a
//! write-ahead log, a file that took faults after a flush must reopen
//! to *exactly* the flushed state: uncommitted and torn log tails are
//! discarded by replay, never served.
//!
//! The fault layer wraps both halves of the pager (`wrap_parts`): page
//! store and log store share one fault state, so write/read budgets
//! count WAL appends too. The cache is disabled
//! (`set_cache_capacity(0)`) where a fault must fire inside the
//! operation that caused it. The exhaustive every-I/O-point sweep lives
//! in `tests/crash_recovery.rs`; these tests pin targeted shapes.

use sr_testkit::{FaultHandle, FaultInjector, FaultKind, TempDir};
use srtree::dataset::uniform;
use srtree::pager::{
    wal_file_path, FileLogStore, FilePageStore, MemLogStore, MemPageStore, PageFile, PagerError,
};
use srtree::tree::{verify, SrOptions, SrTree, TreeError};

const DIM: usize = 4;
const PAGE: usize = 1024;
const DATA_AREA: usize = 64;

/// Split-on-overflow options: forced reinsertion is disabled so the
/// first leaf overflow goes straight down the split path we want to
/// fault.
fn split_opts() -> SrOptions {
    SrOptions {
        disable_reinsertion: true,
        ..SrOptions::default()
    }
}

/// An SR-tree over a fault-wrapped in-memory store pair (page store
/// *and* WAL share the fault state), cache off.
fn faulty_mem_tree() -> (SrTree, FaultHandle) {
    let (store, log, handle) = FaultInjector::wrap_parts(
        Box::new(MemPageStore::new(PAGE)),
        Box::new(MemLogStore::new()),
    );
    let pf = PageFile::create_from_parts(store, log).unwrap();
    pf.set_cache_capacity(0).unwrap();
    let tree = SrTree::create_with_options(pf, DIM, DATA_AREA, split_opts()).unwrap();
    (tree, handle)
}

/// An SR-tree over fault-wrapped *file* stores (pages + WAL file), so a
/// later `PageFile::open(path)` exercises the real on-disk replay path.
fn faulty_file_tree(path: &std::path::Path) -> (SrTree, FaultHandle) {
    let (store, log, handle) = FaultInjector::wrap_parts(
        Box::new(FilePageStore::create(path, PAGE).unwrap()),
        Box::new(FileLogStore::create(&wal_file_path(path)).unwrap()),
    );
    let pf = PageFile::create_from_parts(store, log).unwrap();
    pf.set_cache_capacity(0).unwrap();
    let tree = SrTree::create_with_options(pf, DIM, DATA_AREA, split_opts()).unwrap();
    (tree, handle)
}

/// Index of the first insert that splits the root leaf (height 1 -> 2),
/// found on a clean shadow tree with identical parameters.
fn first_split_index(points: &[srtree::geometry::Point]) -> usize {
    let pf = PageFile::create_in_memory(PAGE).unwrap();
    let mut shadow = SrTree::create_with_options(pf, DIM, DATA_AREA, split_opts()).unwrap();
    for (i, p) in points.iter().enumerate() {
        shadow.insert(p.clone(), i as u64).unwrap();
        if shadow.height() > 1 {
            return i;
        }
    }
    panic!(
        "no split within {} inserts; shrink the page size",
        points.len()
    );
}

#[test]
fn write_failure_during_split_surfaces_as_err() {
    let points = uniform(200, DIM, 701);
    let split_at = first_split_index(&points);

    // Fault every write the splitting insert performs, in turn. Small n
    // hits the split machinery itself (the leaf is overfull, so the
    // first writes of that insert are the split); larger n may land past
    // the insert's last write, which must then succeed.
    let mut injected_errs = 0;
    for nth_write in 0..8u64 {
        let (mut tree, handle) = faulty_mem_tree();
        for (i, p) in points[..split_at].iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        assert_eq!(
            tree.height(),
            1,
            "split happened earlier than the shadow run"
        );
        handle.fail_nth_write(nth_write);
        let was_err = match tree.insert(points[split_at].clone(), split_at as u64) {
            Ok(()) => {
                assert_eq!(tree.height(), 2);
                false
            }
            Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
                assert_eq!(kind, FaultKind::Write);
                injected_errs += 1;
                true
            }
            Err(other) => panic!("nth_write={nth_write}: unexpected error kind: {other}"),
        };
        // The handle's statistics attribute the fault correctly.
        assert_eq!(handle.stats().injected, was_err as u64);
        handle.clear();
        // After the store recovers, the tree handle still answers
        // queries without panicking (possibly over a partial split).
        let _ = tree.knn(points[0].coords(), 3);
    }
    assert!(
        injected_errs > 0,
        "no write of the splitting insert was faulted; split writes fewer pages than expected"
    );
}

#[test]
fn read_failure_during_query_is_clean_and_clears() {
    let points = uniform(400, DIM, 703);
    let (mut tree, handle) = faulty_mem_tree();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let want = tree.knn(points[0].coords(), 5).unwrap();

    handle.fail_nth_read(0);
    match tree.knn(points[0].coords(), 5) {
        Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
            assert_eq!(kind, FaultKind::Read)
        }
        Ok(_) => panic!("armed read fault never fired"),
        Err(other) => panic!("unexpected error kind: {other}"),
    }
    assert_eq!(handle.stats().injected, 1);

    // Reads are side-effect free: after clearing the fault the same
    // query gives the same answer.
    handle.clear();
    let again = tree.knn(points[0].coords(), 5).unwrap();
    assert_eq!(
        want.iter().map(|n| n.data).collect::<Vec<_>>(),
        again.iter().map(|n| n.data).collect::<Vec<_>>()
    );
}

/// Reopen a file that took faults after a flush. The WAL's contract is
/// unconditional: replay discards everything uncommitted and the tree
/// comes back *exactly* as last flushed — verifying clean, at
/// `want_len` entries, without panicking anywhere on the way.
fn check_reopen_exact(path: &std::path::Path, want_len: u64, what: &str) {
    let reopened = std::panic::catch_unwind(|| {
        let pf = PageFile::open(path)?;
        pf.set_cache_capacity(0)?;
        let tree = SrTree::open_from(pf)?;
        let verdict = verify::check(&tree).map(|_| tree.len());
        Ok::<_, TreeError>(verdict)
    });
    let result = match reopened {
        Ok(r) => r,
        Err(_) => panic!("{what}: reopen panicked instead of returning a typed error"),
    };
    match result {
        Ok(Ok(len)) => assert_eq!(
            len, want_len,
            "{what}: recovered to the wrong state (want the last flush)"
        ),
        Ok(Err(report)) => panic!("{what}: replay must recover the flushed tree, got: {report}"),
        Err(e) => panic!("{what}: replay must recover the flushed tree, got: {e}"),
    }
}

#[test]
fn crash_mid_update_then_reopen_recovers_the_flushed_state() {
    let points = uniform(300, DIM, 707);
    for crash_after in [3u64, 40, 200, 900] {
        let dir = TempDir::new("sr-fault-crash").unwrap();
        let path = dir.file("crash.pages");
        {
            let (mut tree, handle) = faulty_file_tree(&path);
            // A durable prefix, flushed before the crash is armed.
            for (i, p) in points.iter().take(60).enumerate() {
                tree.insert(p.clone(), i as u64).unwrap();
            }
            tree.flush().unwrap();

            handle.crash_after(crash_after);
            let mut saw_cutoff = false;
            for (i, p) in points.iter().enumerate().skip(60) {
                match tree.insert(p.clone(), i as u64) {
                    Ok(()) => {}
                    Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
                        assert_eq!(kind, FaultKind::Crash);
                        saw_cutoff = true;
                        break;
                    }
                    Err(other) => {
                        panic!("crash_after={crash_after}: unexpected error kind: {other}")
                    }
                }
            }
            assert!(saw_cutoff, "crash_after={crash_after}: cutoff never fired");
            assert!(handle.crashed());
            // Post-crash the handle is dead for writes: flush errors, it
            // must not panic — and, critically, it must not commit the
            // uncommitted tail it can no longer write.
            let _ = tree.flush();
        } // drop releases the file handles; Drop paths must stay quiet
          // Everything after the flush was uncommitted WAL tail; replay
          // drops it and serves exactly the 60 flushed entries.
        check_reopen_exact(&path, 60, &format!("crash_after={crash_after}"));
    }
}

#[test]
fn flush_write_failure_surfaces_as_err_and_clears() {
    let points = uniform(120, DIM, 711);
    let (mut tree, handle) = faulty_mem_tree();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // The next write the flush performs (the meta page's WAL append —
    // the tree meta is dirty and gets journaled before the commit
    // marker) is faulted: flush must return the typed injected error,
    // not panic or swallow it.
    handle.fail_nth_write(0);
    match tree.flush() {
        Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
            assert_eq!(kind, FaultKind::Write)
        }
        Ok(()) => panic!("armed write fault never fired during flush"),
        Err(other) => panic!("unexpected error kind: {other}"),
    }
    handle.clear();
    // A clean retry succeeds — the failed append never advanced the
    // log's length, so the retry overwrites it at the same offset — and
    // the tree is still fully usable.
    tree.flush().unwrap();
    assert_eq!(tree.len(), points.len() as u64);
    tree.knn(points[0].coords(), 3).unwrap();
}

/// Header-decode paths that formerly `unwrap()`ed inside the pager now
/// return `PagerError::Corrupt` for every malformed prefix we can
/// construct: truncation below the meta header, a clobbered magic, and
/// an absurd page-size field.
#[test]
fn corrupt_header_variants_error_typed_not_panic() {
    let points = uniform(50, DIM, 713);
    let dir = TempDir::new("sr-fault-header").unwrap();
    let good = dir.file("good.pages");
    {
        let store = FilePageStore::create(&good, PAGE).unwrap();
        let pf = PageFile::create_from_store(Box::new(store)).unwrap();
        let mut tree = SrTree::create_with_options(pf, DIM, DATA_AREA, split_opts()).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        tree.flush().unwrap();
    }
    let pristine = std::fs::read(&good).unwrap();

    let mut cases: Vec<(String, Vec<u8>)> = Vec::new();
    for keep in [0usize, 1, 7, 15] {
        cases.push((
            format!("truncated to {keep} bytes"),
            pristine[..keep.min(pristine.len())].to_vec(),
        ));
    }
    let mut bad_magic = pristine.clone();
    for b in bad_magic.iter_mut().take(4) {
        *b ^= 0xff;
    }
    cases.push(("magic clobbered".into(), bad_magic));
    let mut huge_page = pristine.clone();
    // The page-size field sits after the magic; saturate it.
    for b in huge_page.iter_mut().skip(8).take(8) {
        *b = 0xff;
    }
    cases.push(("page-size field saturated".into(), huge_page));

    for (what, bytes) in cases {
        let path = dir.file("mangled.pages");
        std::fs::write(&path, &bytes).unwrap();
        let outcome = std::panic::catch_unwind(|| PageFile::open(&path).map(|_| ()));
        match outcome {
            Ok(Err(PagerError::Corrupt(msg))) => {
                assert!(!msg.is_empty(), "{what}: empty corruption message")
            }
            Ok(Err(PagerError::Io(_))) => {} // acceptable for truncation
            Ok(Err(other)) => panic!("{what}: unexpected error kind: {other}"),
            Ok(Ok(())) => panic!("{what}: mangled header opened cleanly"),
            Err(_) => panic!("{what}: open panicked instead of returning a typed error"),
        }
    }
}

#[test]
fn torn_write_then_reopen_recovers_the_flushed_state() {
    let points = uniform(300, DIM, 709);
    // Tear a WAL append at several points, keeping only a byte prefix:
    // simulates a power cut mid-sector. The torn bytes land past the
    // log's committed length (a failed append never advances it), so
    // replay must treat them as tail garbage.
    for (nth, keep) in [(0u64, 13usize), (5, 100), (11, PAGE / 2)] {
        let dir = TempDir::new("sr-fault-torn").unwrap();
        let path = dir.file("torn.pages");
        {
            let (mut tree, handle) = faulty_file_tree(&path);
            for (i, p) in points.iter().take(80).enumerate() {
                tree.insert(p.clone(), i as u64).unwrap();
            }
            tree.flush().unwrap();

            handle.torn_nth_write(nth, keep);
            let mut torn = false;
            for (i, p) in points.iter().enumerate().skip(80) {
                match tree.insert(p.clone(), i as u64) {
                    Ok(()) => {}
                    Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
                        assert_eq!(kind, FaultKind::TornWrite);
                        torn = true;
                        break;
                    }
                    Err(other) => panic!("torn nth={nth}: unexpected error kind: {other}"),
                }
            }
            assert!(torn, "torn nth={nth}: the armed torn write never fired");
            assert_eq!(handle.stats().torn_writes, 1);
            // A torn write is a power cut: the process does no further
            // I/O. Latch everything off so the handle's Drop-flush
            // cannot commit the partial state.
            handle.crash_after(0);
        }
        check_reopen_exact(&path, 80, &format!("torn nth={nth} keep={keep}"));
    }
}
