//! Integration: the per-query prune breakdown recorded by `sr-obs`
//! quantifies the paper's §4.4 claim — the combined lower bound
//! `max(d_sphere, d_rect)` prunes at least as well as either shape's
//! bound alone.
//!
//! Attribution semantics: under `DistanceBound::Both`, a prune event
//! credits *every* shape whose bound alone would have sufficed, so per
//! query `prune_events >= max(prune_sphere, prune_rect)` holds by
//! construction, and the excess of `prune_events` over a single shape's
//! count is exactly the advantage of combining them.

use srtree::dataset::{sample_queries, uniform};
use srtree::obs::{Counter, StatsRecorder};
use srtree::tree::{DistanceBound, SrTree};

fn build(n: usize, dim: usize, seed: u64) -> SrTree {
    let points = uniform(n, dim, seed);
    let mut tree = SrTree::create_in_memory(dim, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

#[test]
fn combined_bound_prunes_at_least_each_single_shape() {
    let dim = 16;
    let tree = build(3_000, dim, 59);
    let queries = sample_queries(&uniform(3_000, dim, 59), 15, 61);

    let rec = StatsRecorder::new();
    let mut before = rec.snapshot();
    let mut saw_sphere_prune = false;
    let mut saw_rect_prune = false;

    for q in &queries {
        let _ = tree
            .knn_bounded_with(q.coords(), 10, DistanceBound::Both, &rec)
            .unwrap();
        let now = rec.snapshot();
        let w = now.since(&before);
        before = now;

        let events = w.counter(Counter::PruneEvents);
        let sphere = w.counter(Counter::PruneSphere);
        let rect = w.counter(Counter::PruneRect);
        assert!(
            events >= sphere.max(rect),
            "per query, the combined bound must prune at least as much as \
             either shape alone: events {events}, sphere {sphere}, rect {rect}"
        );
        assert!(
            w.counter(Counter::NodeExpansions) + w.counter(Counter::LeafExpansions) > 0,
            "a knn query over 3000 points must expand nodes"
        );
        saw_sphere_prune |= sphere > 0;
        saw_rect_prune |= rect > 0;
    }

    // Across the workload both shapes must contribute — that is the
    // point of storing both (paper §4.4, Figures 8-10).
    assert!(saw_sphere_prune, "sphere bound never achieved a prune");
    assert!(saw_rect_prune, "rect bound never achieved a prune");
}

#[test]
fn combined_bound_expands_no_more_nodes_than_single_shapes() {
    let dim = 16;
    let tree = build(3_000, dim, 67);
    let queries = sample_queries(&uniform(3_000, dim, 67), 10, 71);

    let expansions = |bound: DistanceBound| -> u64 {
        let rec = StatsRecorder::new();
        for q in &queries {
            let _ = tree.knn_bounded_with(q.coords(), 10, bound, &rec).unwrap();
        }
        let s = rec.snapshot();
        s.counter(Counter::NodeExpansions) + s.counter(Counter::LeafExpansions)
    };

    let both = expansions(DistanceBound::Both);
    let sphere_only = expansions(DistanceBound::SphereOnly);
    let rect_only = expansions(DistanceBound::RectOnly);
    assert!(
        both <= sphere_only,
        "combined bound must not expand more than sphere-only ({both} > {sphere_only})"
    );
    assert!(
        both <= rect_only,
        "combined bound must not expand more than rect-only ({both} > {rect_only})"
    );
}

#[test]
fn results_identical_across_bounds_while_counters_differ() {
    let dim = 8;
    let tree = build(1_000, dim, 73);
    let q = sample_queries(&uniform(1_000, dim, 73), 1, 79);
    let q = q[0].coords();

    let rec = StatsRecorder::new();
    let both = tree
        .knn_bounded_with(q, 10, DistanceBound::Both, &rec)
        .unwrap();
    let sphere = tree
        .knn_with_bound(q, 10, DistanceBound::SphereOnly)
        .unwrap();
    let rect = tree.knn_with_bound(q, 10, DistanceBound::RectOnly).unwrap();
    let ids = |v: &[srtree::query::Neighbor]| v.iter().map(|n| n.data).collect::<Vec<_>>();
    assert_eq!(ids(&both), ids(&sphere));
    assert_eq!(ids(&both), ids(&rect));

    let s = rec.snapshot();
    assert_eq!(s.hist(srtree::obs::Hist::QueryNs).count, 1);
    assert!(s.counter(Counter::PointsScored) >= 10);
}
