//! Integration: the per-query prune breakdown recorded by `sr-obs`
//! quantifies the paper's §4.4 claim — the combined lower bound
//! `max(d_sphere, d_rect)` prunes at least as well as either shape's
//! bound alone.
//!
//! Attribution semantics: under `DistanceBound::Both`, a prune event
//! credits *every* shape whose bound alone would have sufficed, so per
//! query `prune_events >= max(prune_sphere, prune_rect)` holds by
//! construction, and the excess of `prune_events` over a single shape's
//! count is exactly the advantage of combining them.

use srtree::dataset::{sample_queries, uniform};
use srtree::obs::{Counter, StatsRecorder};
use srtree::pager::PageKind;
use srtree::query::LeafScan;
use srtree::tree::{DistanceBound, SrTree};

fn build(n: usize, dim: usize, seed: u64) -> SrTree {
    let points = uniform(n, dim, seed);
    let mut tree = SrTree::create_in_memory(dim, 4096).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

#[test]
fn combined_bound_prunes_at_least_each_single_shape() {
    let dim = 16;
    let tree = build(3_000, dim, 59);
    let queries = sample_queries(&uniform(3_000, dim, 59), 15, 61);

    let rec = StatsRecorder::new();
    let mut before = rec.snapshot();
    let mut saw_sphere_prune = false;
    let mut saw_rect_prune = false;

    for q in &queries {
        let _ = tree
            .knn_bounded_with(q.coords(), 10, DistanceBound::Both, &rec)
            .unwrap();
        let now = rec.snapshot();
        let w = now.since(&before);
        before = now;

        let events = w.counter(Counter::PruneEvents);
        let sphere = w.counter(Counter::PruneSphere);
        let rect = w.counter(Counter::PruneRect);
        assert!(
            events >= sphere.max(rect),
            "per query, the combined bound must prune at least as much as \
             either shape alone: events {events}, sphere {sphere}, rect {rect}"
        );
        assert!(
            w.counter(Counter::NodeExpansions) + w.counter(Counter::LeafExpansions) > 0,
            "a knn query over 3000 points must expand nodes"
        );
        saw_sphere_prune |= sphere > 0;
        saw_rect_prune |= rect > 0;
    }

    // Across the workload both shapes must contribute — that is the
    // point of storing both (paper §4.4, Figures 8-10).
    assert!(saw_sphere_prune, "sphere bound never achieved a prune");
    assert!(saw_rect_prune, "rect bound never achieved a prune");
}

#[test]
fn combined_bound_expands_no_more_nodes_than_single_shapes() {
    let dim = 16;
    let tree = build(3_000, dim, 67);
    let queries = sample_queries(&uniform(3_000, dim, 67), 10, 71);

    let expansions = |bound: DistanceBound| -> u64 {
        let rec = StatsRecorder::new();
        for q in &queries {
            let _ = tree.knn_bounded_with(q.coords(), 10, bound, &rec).unwrap();
        }
        let s = rec.snapshot();
        s.counter(Counter::NodeExpansions) + s.counter(Counter::LeafExpansions)
    };

    let both = expansions(DistanceBound::Both);
    let sphere_only = expansions(DistanceBound::SphereOnly);
    let rect_only = expansions(DistanceBound::RectOnly);
    assert!(
        both <= sphere_only,
        "combined bound must not expand more than sphere-only ({both} > {sphere_only})"
    );
    assert!(
        both <= rect_only,
        "combined bound must not expand more than rect-only ({both} > {rect_only})"
    );
}

#[test]
fn results_identical_across_bounds_while_counters_differ() {
    let dim = 8;
    let tree = build(1_000, dim, 73);
    let q = sample_queries(&uniform(1_000, dim, 73), 1, 79);
    let q = q[0].coords();

    let rec = StatsRecorder::new();
    let both = tree
        .knn_bounded_with(q, 10, DistanceBound::Both, &rec)
        .unwrap();
    let sphere = tree
        .knn_with_bound(q, 10, DistanceBound::SphereOnly)
        .unwrap();
    let rect = tree.knn_with_bound(q, 10, DistanceBound::RectOnly).unwrap();
    let ids = |v: &[srtree::query::Neighbor]| v.iter().map(|n| n.data).collect::<Vec<_>>();
    assert_eq!(ids(&both), ids(&sphere));
    assert_eq!(ids(&both), ids(&rect));

    let s = rec.snapshot();
    assert_eq!(s.hist(srtree::obs::Hist::QueryNs).count, 1);
    assert!(s.counter(Counter::PointsScored) >= 10);
}

/// The leaf-scan kernels are a pure ablation: identical answers
/// (bitwise), identical `points_scored`, and identical traversal
/// counters across all three modes. Only the early-abandon mode may
/// report `early_abandons`, and abandoned points still count as scored —
/// the under-reporting bug this pins down made early-abandon queries
/// look cheaper than they were.
#[test]
fn scan_modes_agree_bitwise_and_report_identical_work() {
    let dim = 16; // > EARLY_ABANDON_HEAD_DIMS, so the pruning tail runs
    let tree = build(3_000, dim, 83);
    let queries = sample_queries(&uniform(3_000, dim, 83), 12, 89);

    struct ModeRun {
        answers: Vec<Vec<(u64, u64)>>, // per query: (dist2 bits, id)
        scored: u64,
        abandoned: u64,
        expansions: u64,
    }
    let run = |scan: LeafScan| -> ModeRun {
        let rec = StatsRecorder::new();
        let answers = queries
            .iter()
            .map(|q| {
                tree.knn_scan_with(q.coords(), 10, scan, &rec)
                    .unwrap()
                    .iter()
                    .map(|n| (n.dist2.to_bits(), n.data))
                    .collect()
            })
            .collect();
        let s = rec.snapshot();
        ModeRun {
            answers,
            scored: s.counter(Counter::PointsScored),
            abandoned: s.counter(Counter::EarlyAbandons),
            expansions: s.counter(Counter::NodeExpansions) + s.counter(Counter::LeafExpansions),
        }
    };

    let scalar = run(LeafScan::Scalar);
    let columnar = run(LeafScan::Columnar);
    let early = run(LeafScan::EarlyAbandon);

    assert_eq!(scalar.answers, columnar.answers, "columnar answers drifted");
    assert_eq!(
        scalar.answers, early.answers,
        "early-abandon answers drifted"
    );

    // Scan mode must not change what the traversal visits or how much
    // work is attributed: abandoned points still count as scored.
    assert_eq!(scalar.abandoned, 0, "scalar mode cannot abandon");
    assert_eq!(columnar.abandoned, 0, "plain columnar mode cannot abandon");
    assert!(
        early.abandoned > 0,
        "a 16-dim workload must abandon some tails"
    );
    assert_eq!(scalar.scored, columnar.scored);
    assert_eq!(
        scalar.scored, early.scored,
        "early-abandon under-reports points_scored"
    );
    assert_eq!(scalar.expansions, columnar.expansions);
    assert_eq!(scalar.expansions, early.expansions);
    assert!(
        early.abandoned < early.scored,
        "abandons are a subset of scored points"
    );
}

/// The columnar fast path reads each expanded page exactly once, like
/// the scalar path: `node_expansions == node reads` and
/// `leaf_expansions == leaf reads` hold in every scan mode (the CI
/// accounting gate checks the same identities on the bench artifact).
#[test]
fn expansions_match_page_reads_in_every_scan_mode() {
    let dim = 16;
    let tree = build(2_000, dim, 97);
    let queries = sample_queries(&uniform(2_000, dim, 97), 10, 101);

    for scan in [LeafScan::Scalar, LeafScan::Columnar, LeafScan::EarlyAbandon] {
        let rec = StatsRecorder::new();
        tree.pager().reset_stats();
        for q in &queries {
            let _ = tree.knn_scan_with(q.coords(), 10, scan, &rec).unwrap();
        }
        let s = rec.snapshot();
        let io = tree.pager().stats();
        assert_eq!(
            s.counter(Counter::NodeExpansions),
            io.logical_reads(PageKind::Node),
            "{scan:?}: node expansions != node reads"
        );
        assert_eq!(
            s.counter(Counter::LeafExpansions),
            io.logical_reads(PageKind::Leaf),
            "{scan:?}: leaf expansions != leaf reads"
        );
    }
}
