//! Tier-1 differential fuzzing: seeded op tapes replayed through the
//! SR-, SS-, R*-, K-D-B-, and VAMSplit trees in lock step with a
//! brute-force oracle. Any divergence in k-NN / range answers or any
//! invariant-checker failure panics with a minimized, copy-pastable
//! `SEED=` reproduction line (see `sr_testkit::failure_report`).
//!
//! Set `SRTREE_FUZZ_SEED` (decimal or `0x`-hex) to replay a reported
//! failure; the fixed default seeds below make CI deterministic.

use sr_testkit::{
    check_answer, faulted_parts, fuzz_case, generate, matches_model, reopen, seed_line, AnyTree,
    DataDist, DiffConfig, DiffReport, Model, Op, OpTape, WorkloadSpec, DYNAMIC_KINDS,
};
use srtree::geometry::Point;
use srtree::pager::PageFile;

/// Per-tape op count. The issue floor is 2,000 ops per tape.
const OPS: usize = 2_000;

fn seed_for(default: u64) -> u64 {
    match std::env::var("SRTREE_FUZZ_SEED") {
        Ok(s) => parse_seed(&s).unwrap_or_else(|| panic!("bad SRTREE_FUZZ_SEED {s:?}")),
        Err(_) => default,
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Every tape must actually exercise all four op kinds and run the
/// invariant checkers — a tape that silently degenerated to inserts
/// would pass while testing nothing.
fn assert_exercised(report: &DiffReport, ops: usize) {
    assert_eq!(report.ops, ops);
    assert!(report.inserts > 0, "tape had no inserts: {report:?}");
    assert!(report.deletes > 0, "tape had no deletes: {report:?}");
    assert!(report.knns > 0, "tape had no k-NN queries: {report:?}");
    assert!(report.ranges > 0, "tape had no range queries: {report:?}");
    assert!(report.verifies > 0, "no verify sweeps ran: {report:?}");
    assert!(
        report.vam_rebuilds > 0,
        "VAMSplit never rebuilt: {report:?}"
    );
    // Two kernel comparisons (Scalar, Columnar) per k-NN per structure:
    // the columnar-layout arm must actually have run.
    assert!(
        report.scan_checks >= report.knns * 8,
        "kernel-ablation arm underran: {report:?}"
    );
}

#[test]
fn uniform_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 6, DataDist::Uniform);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0001), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

#[test]
fn clustered_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 8, DataDist::Clustered);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0002), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

#[test]
fn real_sim_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 4, DataDist::RealSim);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0003), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

/// A smaller page size forces deep trees and frequent splits /
/// underflows, the structurally hardest paths; verify after every 100
/// ops to pin a hypothetical violation close to the op that caused it.
#[test]
fn small_page_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(1_200, 5, DataDist::Clustered);
    let cfg = DiffConfig {
        page_size: 1536,
        verify_every: 100,
        ..DiffConfig::default()
    };
    let report = fuzz_case(&spec, seed_for(0xD1FF_0004), &cfg);
    assert_eq!(report.ops, 1_200);
    assert!(
        report.verifies >= 12,
        "expected dense verify sweeps: {report:?}"
    );
}

/// Ops between commit barriers in the crash-and-recover arm (prime, so
/// barriers drift relative to the tape's own op mix).
const CRASH_ARM_FLUSH_EVERY: usize = 97;

/// Replay `tape.ops[from..]` through one tree and the oracle in lock
/// step, committing every [`CRASH_ARM_FLUSH_EVERY`] steps. Query
/// answers must match the oracle exactly; a divergence panics with
/// `ctx` (which carries the replayable `SEED=` line). An I/O error
/// stops the replay and returns `(Some(step), pending)`, where
/// `pending` is the oracle snapshot a failing *commit* was writing.
/// `committed` tracks the snapshot at the last successful commit.
fn replay_tape(
    tree: &mut AnyTree,
    model: &mut Model,
    tape: &OpTape,
    from: usize,
    committed: &mut Model,
    ctx: &str,
) -> (Option<usize>, Option<Model>) {
    for (step, op) in tape.ops.iter().enumerate().skip(from) {
        match op {
            Op::Insert(p, id) => {
                if tree.insert(p.clone(), *id).is_err() {
                    return (Some(step), None);
                }
                model.insert(p.clone(), *id);
            }
            Op::Delete(p, id) => match tree.delete(p, *id) {
                Ok(hit) => {
                    let oracle_hit = model.delete(p, *id);
                    assert_eq!(hit, oracle_hit, "step {step}: delete disagreed\n{ctx}");
                }
                Err(_) => return (Some(step), None),
            },
            Op::Knn(q, k) => match tree.knn(q.coords(), *k) {
                Ok(got) => check_answer("crash-arm", &got, &model.knn(q.coords(), *k), true)
                    .unwrap_or_else(|e| panic!("step {step}: {e}\n{ctx}")),
                Err(_) => return (Some(step), None),
            },
            Op::Range(q, r) => match tree.range(q.coords(), *r) {
                Ok(got) => check_answer("crash-arm", &got, &model.range(q.coords(), *r), true)
                    .unwrap_or_else(|e| panic!("step {step}: {e}\n{ctx}")),
                Err(_) => return (Some(step), None),
            },
        }
        if (step + 1) % CRASH_ARM_FLUSH_EVERY == 0 {
            if tree.flush().is_err() {
                return (Some(step), Some(model.clone()));
            }
            *committed = model.clone();
        }
    }
    (None, None)
}

/// Crash-and-recover arm: replay a tape on one dynamic structure
/// (seed-rotated), crash at a seed-derived write mid-tape, reopen from
/// the surviving bytes, roll the oracle back to whichever legal state
/// the WAL recovered (last commit, or the in-flight commit), and
/// continue the remainder of the tape — answers must still match the
/// oracle exactly. The `SEED=` line reproduces the whole schedule:
/// tape, structure choice, crash point, and torn-write prefix.
#[test]
fn crash_mid_tape_recovers_and_continues_matching_oracle() {
    let seed = seed_for(0xD1FF_0005);
    let spec = WorkloadSpec::standard(600, 4, DataDist::Uniform);
    let tape = generate(&spec, seed);
    let kind = DYNAMIC_KINDS[(seed % 4) as usize];
    let ctx = format!("structure={} {}", kind.name(), seed_line(&tape));
    let probes: Vec<Point> = tape
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Insert(p, _) => Some(p.clone()),
            _ => None,
        })
        .take(5)
        .collect();

    // Clean run: learn how many writes the schedule performs before and
    // after the baseline commit, so the crash point always lands
    // mid-tape (creation crashes are tests/crash_recovery.rs territory).
    let (store, log, handle, _shared) = faulted_parts(2048);
    let pf = PageFile::create_from_parts(store, log).unwrap();
    let mut tree = AnyTree::create(kind, pf, tape.dim, 64).unwrap();
    tree.flush().unwrap();
    let writes_at_baseline = handle.stats().writes;
    let mut model = Model::new();
    let mut committed = Model::new();
    let (crashed, _) = replay_tape(&mut tree, &mut model, &tape, 0, &mut committed, &ctx);
    assert!(crashed.is_none(), "clean run errored\n{ctx}");
    let total_writes = handle.stats().writes;
    assert!(
        total_writes > writes_at_baseline + 10,
        "tape too small\n{ctx}"
    );
    drop(tree);

    // Armed run: crash at a seed-derived write with a seed-derived torn
    // prefix, somewhere strictly after the baseline commit.
    let crash_write = writes_at_baseline + seed % (total_writes - writes_at_baseline);
    let keep = match seed % 4 {
        0 => 0,
        1 => 9,
        2 => 1024,
        _ => usize::MAX,
    };
    let (store, log, handle, shared) = faulted_parts(2048);
    handle.crash_at_write(crash_write, keep);
    let pf = PageFile::create_from_parts(store, log).unwrap();
    let mut tree = AnyTree::create(kind, pf, tape.dim, 64).unwrap();
    tree.flush().unwrap();
    let mut model = Model::new();
    let mut committed = Model::new();
    let (crashed_at, pending) = replay_tape(&mut tree, &mut model, &tape, 0, &mut committed, &ctx);
    let crashed_at = crashed_at
        .unwrap_or_else(|| panic!("armed crash at write {crash_write} never fired\n{ctx}"));
    assert!(
        handle.crashed(),
        "run errored without the latch firing\n{ctx}"
    );
    drop(tree);

    // Restart: reopen the surviving bytes and identify which legal
    // state the WAL recovered.
    let pf = reopen(&shared)
        .unwrap_or_else(|e| panic!("reopen after crash at step {crashed_at}: {e}\n{ctx}"));
    let mut tree = AnyTree::open(kind, pf)
        .unwrap_or_else(|e| panic!("open after crash at step {crashed_at}: {e}\n{ctx}"));
    let mut candidates = vec![("committed", committed.clone())];
    if let Some(p) = pending {
        candidates.push(("pending", p));
    }
    let mut model = None;
    let mut failures = Vec::new();
    for (label, cand) in candidates {
        match matches_model(&tree, &cand, &probes, 5, 0.6) {
            Ok(()) => {
                model = Some(cand);
                break;
            }
            Err(e) => failures.push(format!("vs {label}: {e}")),
        }
    }
    let mut model = model.unwrap_or_else(|| {
        panic!(
            "recovered state after crash at step {crashed_at} matches no legal state: {}\n{ctx}",
            failures.join("; ")
        )
    });

    // Continue the rest of the tape on the recovered tree; the oracle
    // was rolled back to the recovered state, so agreement must hold
    // all the way to the end.
    let mut committed = model.clone();
    let (crashed, _) = replay_tape(
        &mut tree,
        &mut model,
        &tape,
        crashed_at,
        &mut committed,
        &ctx,
    );
    assert!(
        crashed.is_none(),
        "continuation errored after recovery\n{ctx}"
    );
    tree.flush()
        .unwrap_or_else(|e| panic!("final flush: {e}\n{ctx}"));
    matches_model(&tree, &model, &probes, 5, 0.6)
        .unwrap_or_else(|e| panic!("end state diverged from oracle: {e}\n{ctx}"));
}

#[test]
fn failure_output_carries_replayable_seed_line() {
    let tape = generate(&WorkloadSpec::standard(50, 4, DataDist::Clustered), 0xBEEF);
    let line = seed_line(&tape);
    assert!(line.contains("SEED=0xbeef"), "not copy-pastable: {line}");
    assert!(
        line.contains("srtool fuzz --seed 0xbeef --ops 50 --dim 4 --dist cluster"),
        "replay command drifted from the CLI grammar: {line}"
    );
}
