//! Tier-1 differential fuzzing: seeded op tapes replayed through the
//! SR-, SS-, R*-, K-D-B-, and VAMSplit trees in lock step with a
//! brute-force oracle. Any divergence in k-NN / range answers or any
//! invariant-checker failure panics with a minimized, copy-pastable
//! `SEED=` reproduction line (see `sr_testkit::failure_report`).
//!
//! Set `SRTREE_FUZZ_SEED` (decimal or `0x`-hex) to replay a reported
//! failure; the fixed default seeds below make CI deterministic.

use sr_testkit::{fuzz_case, generate, seed_line, DataDist, DiffConfig, DiffReport, WorkloadSpec};

/// Per-tape op count. The issue floor is 2,000 ops per tape.
const OPS: usize = 2_000;

fn seed_for(default: u64) -> u64 {
    match std::env::var("SRTREE_FUZZ_SEED") {
        Ok(s) => parse_seed(&s).unwrap_or_else(|| panic!("bad SRTREE_FUZZ_SEED {s:?}")),
        Err(_) => default,
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Every tape must actually exercise all four op kinds and run the
/// invariant checkers — a tape that silently degenerated to inserts
/// would pass while testing nothing.
fn assert_exercised(report: &DiffReport, ops: usize) {
    assert_eq!(report.ops, ops);
    assert!(report.inserts > 0, "tape had no inserts: {report:?}");
    assert!(report.deletes > 0, "tape had no deletes: {report:?}");
    assert!(report.knns > 0, "tape had no k-NN queries: {report:?}");
    assert!(report.ranges > 0, "tape had no range queries: {report:?}");
    assert!(report.verifies > 0, "no verify sweeps ran: {report:?}");
    assert!(
        report.vam_rebuilds > 0,
        "VAMSplit never rebuilt: {report:?}"
    );
}

#[test]
fn uniform_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 6, DataDist::Uniform);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0001), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

#[test]
fn clustered_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 8, DataDist::Clustered);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0002), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

#[test]
fn real_sim_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(OPS, 4, DataDist::RealSim);
    let report = fuzz_case(&spec, seed_for(0xD1FF_0003), &DiffConfig::default());
    assert_exercised(&report, OPS);
}

/// A smaller page size forces deep trees and frequent splits /
/// underflows, the structurally hardest paths; verify after every 100
/// ops to pin a hypothetical violation close to the op that caused it.
#[test]
fn small_page_tape_has_no_divergence() {
    let spec = WorkloadSpec::standard(1_200, 5, DataDist::Clustered);
    let cfg = DiffConfig {
        page_size: 1536,
        verify_every: 100,
        ..DiffConfig::default()
    };
    let report = fuzz_case(&spec, seed_for(0xD1FF_0004), &cfg);
    assert_eq!(report.ops, 1_200);
    assert!(
        report.verifies >= 12,
        "expected dense verify sweeps: {report:?}"
    );
}

#[test]
fn failure_output_carries_replayable_seed_line() {
    let tape = generate(&WorkloadSpec::standard(50, 4, DataDist::Clustered), 0xBEEF);
    let line = seed_line(&tape);
    assert!(line.contains("SEED=0xbeef"), "not copy-pastable: {line}");
    assert!(
        line.contains("srtool fuzz --seed 0xbeef --ops 50 --dim 4 --dist cluster"),
        "replay command drifted from the CLI grammar: {line}"
    );
}
