//! Integration: the paper's qualitative claims, asserted as tests on
//! scaled-down workloads. These are the "shape" checks of the
//! reproduction — who wins and in which regime — kept small enough for
//! CI.

use srtree::dataset::{cluster, real_sim, sample_queries, uniform, ClusterSpec};
use srtree::geometry::Point;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;

const DIM: usize = 16;
const K: usize = 21;

fn reads_per_query<F: Fn(&[f32])>(
    pager: &srtree::pager::PageFile,
    queries: &[Point],
    go: F,
) -> f64 {
    pager.set_cache_capacity(0).unwrap();
    pager.reset_stats();
    for q in queries {
        go(q.coords());
    }
    pager.stats().tree_reads() as f64 / queries.len() as f64
}

/// §5.1 / Figure 11: on non-uniform (histogram) data the SR-tree reads
/// substantially fewer pages than the SS-tree, which reads fewer than
/// the R\*-tree.
#[test]
fn sr_beats_ss_beats_rstar_on_real_data() {
    let points = real_sim(8_000, DIM, 31);
    let queries = sample_queries(&points, 60, 33);

    let mut sr = SrTree::create_in_memory(DIM, 8192).unwrap();
    let mut ss = SsTree::create_in_memory(DIM, 8192).unwrap();
    let mut rs = RstarTree::create_in_memory(DIM, 8192).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
    }

    let sr_reads = reads_per_query(sr.pager(), &queries, |q| {
        sr.knn(q, K).unwrap();
    });
    let ss_reads = reads_per_query(ss.pager(), &queries, |q| {
        ss.knn(q, K).unwrap();
    });
    let rs_reads = reads_per_query(rs.pager(), &queries, |q| {
        rs.knn(q, K).unwrap();
    });

    assert!(
        sr_reads < 0.85 * ss_reads,
        "SR {sr_reads:.1} should clearly beat SS {ss_reads:.1}"
    );
    assert!(
        ss_reads < rs_reads,
        "SS {ss_reads:.1} should beat R* {rs_reads:.1}"
    );
}

/// §5.3 / Figure 14: the SR-tree pays *more* node-level reads (fanout is
/// a third of the SS-tree's) but saves more leaf-level reads than that.
#[test]
fn fanout_problem_tradeoff() {
    let points = real_sim(8_000, DIM, 41);
    let queries = sample_queries(&points, 60, 43);

    let mut sr = SrTree::create_in_memory(DIM, 8192).unwrap();
    let mut ss = SsTree::create_in_memory(DIM, 8192).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
    }

    let run = |pager: &srtree::pager::PageFile, go: &dyn Fn(&[f32])| {
        pager.set_cache_capacity(0).unwrap();
        pager.reset_stats();
        for q in &queries {
            go(q.coords());
        }
        let s = pager.stats();
        (
            s.logical_reads(srtree::pager::PageKind::Node) as f64,
            s.logical_reads(srtree::pager::PageKind::Leaf) as f64,
        )
    };
    let (sr_node, sr_leaf) = run(sr.pager(), &|q| {
        sr.knn(q, K).unwrap();
    });
    let (ss_node, ss_leaf) = run(ss.pager(), &|q| {
        ss.knn(q, K).unwrap();
    });

    assert!(
        sr_leaf < ss_leaf,
        "SR leaf reads {sr_leaf} should undercut SS {ss_leaf}"
    );
    let total_sr = sr_node + sr_leaf;
    let total_ss = ss_node + ss_leaf;
    assert!(
        total_sr < total_ss,
        "total reads: SR {total_sr} vs SS {total_ss}"
    );
}

/// §5.2 / Figures 12–13: SR-tree leaf regions have volumes no larger
/// than the R\*-tree's *and* diameters no larger than the SS-tree's —
/// "both small volumes and short diameters".
#[test]
fn sr_regions_are_small_and_short() {
    let points = real_sim(6_000, DIM, 51);
    let mut sr = SrTree::create_in_memory(DIM, 8192).unwrap();
    let mut ss = SsTree::create_in_memory(DIM, 8192).unwrap();
    let mut rs = RstarTree::create_in_memory(DIM, 8192).unwrap();
    for (i, p) in points.iter().enumerate() {
        sr.insert(p.clone(), i as u64).unwrap();
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
    }
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;

    let sr_regions = sr.leaf_regions().unwrap();
    let sr_vol = mean(sr_regions.iter().map(|(_, r)| r.volume()).collect());
    let sr_diam = mean(sr_regions.iter().map(|(s, _)| s.diameter()).collect());

    let ss_spheres = ss.leaf_regions().unwrap();
    let ss_vol = mean(ss_spheres.iter().map(|s| s.volume()).collect());
    let ss_diam = mean(ss_spheres.iter().map(|s| s.diameter()).collect());

    let rs_rects = rs.leaf_regions().unwrap();
    let rs_vol = mean(rs_rects.iter().map(|r| r.volume()).collect());

    // Figure 12 shows SR and R* leaf volumes at near-parity (both far
    // below the SS-tree); which of the two ends up smaller depends on
    // split timing and the exact data set, so assert parity within 2x
    // rather than a strict ordering (seed 51 gives SR/R* ~= 1.35).
    assert!(
        sr_vol <= rs_vol * 2.0,
        "SR volume {sr_vol:e} vs R* {rs_vol:e}"
    );
    assert!(
        sr_vol < ss_vol / 100.0,
        "SR volume {sr_vol:e} vs SS {ss_vol:e}"
    );
    // "As short diameters as those of the SS-tree" — approximately:
    // the trees differ in fanout, so split timing differs slightly.
    assert!(
        sr_diam <= ss_diam * 1.15,
        "SR diameter {sr_diam} vs SS {ss_diam}"
    );
}

/// §3.2 / Figure 5: bounding rectangles have far smaller volume but
/// longer diameters than bounding spheres on the same data.
#[test]
fn rectangles_small_spheres_short() {
    let points = uniform(6_000, DIM, 61);
    let mut ss = SsTree::create_in_memory(DIM, 8192).unwrap();
    let mut rs = RstarTree::create_in_memory(DIM, 8192).unwrap();
    for (i, p) in points.iter().enumerate() {
        ss.insert(p.clone(), i as u64).unwrap();
        rs.insert(p.clone(), i as u64).unwrap();
    }
    let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    let ss_spheres = ss.leaf_regions().unwrap();
    let ss_vol = mean(ss_spheres.iter().map(|s| s.volume()).collect());
    let ss_diam = mean(ss_spheres.iter().map(|s| s.diameter()).collect());
    let rs_rects = rs.leaf_regions().unwrap();
    let rs_vol = mean(rs_rects.iter().map(|r| r.volume()).collect());
    let rs_diam = mean(rs_rects.iter().map(|r| r.diagonal()).collect());

    assert!(
        rs_vol < ss_vol / 10.0,
        "rect vol {rs_vol:e} vs sphere {ss_vol:e}"
    );
    assert!(
        rs_diam > ss_diam,
        "rect diag {rs_diam} vs sphere diam {ss_diam}"
    );
}

/// §5.4 / Figure 19: the SR-tree's advantage grows as the data becomes
/// less uniform (fewer, tighter clusters).
#[test]
fn advantage_grows_with_clustering() {
    let total = 6_000;
    let mut ratios = Vec::new();
    for clusters in [20usize, 6_000] {
        let points = if clusters >= total {
            uniform(total, DIM, 71)
        } else {
            cluster(
                ClusterSpec {
                    clusters,
                    points_per_cluster: total / clusters,
                    max_radius: 0.1,
                },
                DIM,
                71,
            )
        };
        let queries = sample_queries(&points, 40, 73);
        let mut sr = SrTree::create_in_memory(DIM, 8192).unwrap();
        let mut ss = SsTree::create_in_memory(DIM, 8192).unwrap();
        for (i, p) in points.iter().enumerate() {
            sr.insert(p.clone(), i as u64).unwrap();
            ss.insert(p.clone(), i as u64).unwrap();
        }
        let sr_reads = reads_per_query(sr.pager(), &queries, |q| {
            sr.knn(q, K).unwrap();
        });
        let ss_reads = reads_per_query(ss.pager(), &queries, |q| {
            ss.knn(q, K).unwrap();
        });
        ratios.push(sr_reads / ss_reads);
    }
    // Clustered data must show a clearly larger advantage than uniform
    // (Figure 19's shape). Seed 71 gives clustered ~= 0.77 vs uniform
    // ~= 0.99; the absolute bound is 0.85 — looser than the paper's own
    // measurements because our cluster generator (Dirichlet stand-in,
    // Sec. 2 of DESIGN.md) spreads clusters differently — while the
    // 0.1 separation keeps the claim's direction sharp.
    assert!(
        ratios[0] < ratios[1] - 0.1,
        "clustered SR/SS ratio {} should clearly beat uniform {}",
        ratios[0],
        ratios[1]
    );
    assert!(
        ratios[0] < 0.85,
        "clustered advantage too weak: {}",
        ratios[0]
    );
}
