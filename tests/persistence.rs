//! Integration: every structure persists to its page file and reopens
//! with identical query behavior; files are mutually type-checked (an
//! SR-tree file refuses to open as an SS-tree, etc.).

use sr_testkit::TempDir;
use srtree::dataset::{sample_queries, uniform};
use srtree::geometry::Point;
use srtree::kdbtree::KdbTree;
use srtree::rstar::RstarTree;
use srtree::sstree::SsTree;
use srtree::tree::SrTree;
use srtree::vamsplit::VamTree;

#[test]
fn all_structures_survive_reopen() {
    let points = uniform(2_000, 8, 11);
    let queries = sample_queries(&points, 10, 13);

    // Build + close each structure, collecting pre-close answers. The
    // guard removes the directory (and every index file) on drop, even
    // if an assertion below fails.
    let dir = TempDir::new("srtree-integration").unwrap();
    let sr_path = dir.file("sr.pages");
    let ss_path = dir.file("ss.pages");
    let rs_path = dir.file("rs.pages");
    let kdb_path = dir.file("kdb.pages");
    let vam_path = dir.file("vam.pages");
    let mut expected: Vec<Vec<u64>> = Vec::new();
    {
        let mut sr = SrTree::create(&sr_path, 8).unwrap();
        let mut ss = SsTree::create(&ss_path, 8).unwrap();
        let mut rs = RstarTree::create(&rs_path, 8).unwrap();
        let mut kdb = KdbTree::create(&kdb_path, 8).unwrap();
        for (i, p) in points.iter().enumerate() {
            sr.insert(p.clone(), i as u64).unwrap();
            ss.insert(p.clone(), i as u64).unwrap();
            rs.insert(p.clone(), i as u64).unwrap();
            kdb.insert(p.clone(), i as u64).unwrap();
        }
        let with_ids: Vec<(Point, u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i as u64))
            .collect();
        let vam = VamTree::build_at(&vam_path, with_ids, 8).unwrap();
        for q in &queries {
            expected.push(
                sr.knn(q.coords(), 9)
                    .unwrap()
                    .iter()
                    .map(|n| n.data)
                    .collect(),
            );
        }
        sr.flush().unwrap();
        ss.flush().unwrap();
        rs.flush().unwrap();
        kdb.flush().unwrap();
        vam.flush().unwrap();
    }

    // Reopen and compare.
    let sr = SrTree::open(&sr_path).unwrap();
    let ss = SsTree::open(&ss_path).unwrap();
    let rs = RstarTree::open(&rs_path).unwrap();
    let kdb = KdbTree::open(&kdb_path).unwrap();
    let vam = VamTree::open(&vam_path).unwrap();
    assert_eq!(sr.len(), 2_000);
    assert_eq!(vam.len(), 2_000);
    for (q, want) in queries.iter().zip(expected.iter()) {
        let got: Vec<u64> = sr
            .knn(q.coords(), 9)
            .unwrap()
            .iter()
            .map(|n| n.data)
            .collect();
        assert_eq!(&got, want, "SR-tree answers changed across reopen");
        // Other structures agree with the SR-tree (same deterministic
        // tie-breaking).
        let ids = |v: Vec<srtree::query::Neighbor>| v.iter().map(|n| n.data).collect::<Vec<u64>>();
        assert_eq!(ids(ss.knn(q.coords(), 9).unwrap()), *want);
        assert_eq!(ids(rs.knn(q.coords(), 9).unwrap()), *want);
        assert_eq!(ids(kdb.knn(q.coords(), 9).unwrap()), *want);
        assert_eq!(ids(vam.knn(q.coords(), 9).unwrap()), *want);
    }
}

#[test]
fn index_files_are_type_checked() {
    let dir = TempDir::new("srtree-integration").unwrap();
    let path = dir.file("typed.pages");
    {
        let mut sr = SrTree::create(&path, 4).unwrap();
        sr.insert(Point::new(vec![0.0, 0.0, 0.0, 0.0]), 0).unwrap();
        sr.flush().unwrap();
    }
    // A valid page file, but not an SS-tree / R*-tree / K-D-B-tree.
    assert!(SsTree::open(&path).is_err());
    assert!(RstarTree::open(&path).is_err());
    assert!(KdbTree::open(&path).is_err());
    assert!(VamTree::open(&path).is_err());
    // And still a valid SR-tree.
    assert!(SrTree::open(&path).is_ok());
}

#[test]
fn updates_after_reopen_keep_working() {
    let dir = TempDir::new("srtree-integration").unwrap();
    let path = dir.file("update-after-reopen.pages");
    let points = uniform(600, 4, 17);
    {
        let mut sr = SrTree::create(&path, 4).unwrap();
        for (i, p) in points.iter().take(300).enumerate() {
            sr.insert(p.clone(), i as u64).unwrap();
        }
        sr.flush().unwrap();
    }
    {
        let mut sr = SrTree::open(&path).unwrap();
        for (i, p) in points.iter().enumerate().skip(300) {
            sr.insert(p.clone(), i as u64).unwrap();
        }
        for (i, p) in points.iter().take(100).enumerate() {
            assert!(sr.delete(p, i as u64).unwrap());
        }
        sr.flush().unwrap();
    }
    let sr = SrTree::open(&path).unwrap();
    assert_eq!(sr.len(), 500);
    srtree::tree::verify::check(&sr).unwrap();
}
