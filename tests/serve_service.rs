//! End-to-end integration of the TCP query service, through the public
//! facade: an on-disk SR-tree served over localhost, hammered by eight
//! concurrent client threads mixing k-NN, range, and insert traffic —
//! every query answer checked oracle-exact against a brute-force scan —
//! plus the admission-control and graceful-shutdown contracts: an
//! over-capacity connection gets a typed `Overloaded` (never a hang or
//! a silent drop), and a `Shutdown` request drains and flushes so the
//! reopened index replays zero WAL frames.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sr_testkit::TempDir;
use srtree::dataset::{sample_queries, uniform};
use srtree::query::{brute_force_knn, brute_force_range};
use srtree::serve::{Client, ServeConfig, ServeError, Server};
use srtree::tree::SrTree;
use srtree::wire::{RemoteError, Request, Response};

const DIM: usize = 8;
const N: usize = 2_000;
const K: usize = 9;
const THREADS: usize = 8;
const PAGE: usize = 8192;

fn cfg(threads: usize, max_conns: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        max_conns,
        ..ServeConfig::default()
    }
}

/// Inserted points live at +100 per coordinate: farther from any
/// unit-cube query than every original point, so concurrent inserts
/// cannot perturb the k-NN/range oracle.
fn shifted(coords: &[f32]) -> Vec<f32> {
    coords.iter().map(|c| c + 100.0).collect()
}

#[test]
fn eight_threads_mixed_load_is_oracle_exact_and_shutdown_is_clean() {
    let points = uniform(N, DIM, 41);
    let queries = sample_queries(&points, 24, 43);
    let dir = TempDir::new("srtree-serve").unwrap();
    let path = dir.file("serve.pages");
    {
        let mut tree = SrTree::create(&path, DIM).unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        tree.flush().unwrap();
    }

    let tree = SrTree::open(&path).unwrap();
    let server = Server::start(Box::new(tree), cfg(4, 2 * THREADS)).unwrap();
    let addr = server.local_addr().to_string();

    let coords: Arc<Vec<Vec<f32>>> = Arc::new(points.iter().map(|p| p.coords().to_vec()).collect());
    let queries: Arc<Vec<Vec<f32>>> =
        Arc::new(queries.iter().map(|q| q.coords().to_vec()).collect());

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        let coords = Arc::clone(&coords);
        let queries = Arc::clone(&queries);
        handles.push(thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let oracle = || {
                coords
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.as_slice(), i as u64))
            };
            for (qi, q) in queries.iter().enumerate() {
                if (qi + t) % 2 == 0 {
                    let want = brute_force_knn(oracle(), q, K);
                    let got = client.knn(q, K as u32).unwrap();
                    assert_eq!(
                        got.iter().map(|r| r.data).collect::<Vec<_>>(),
                        want.iter().map(|n| n.data).collect::<Vec<_>>(),
                        "thread {t} query {qi}: k-NN ids diverged from oracle"
                    );
                    for (row, n) in got.iter().zip(want.iter()) {
                        assert!(
                            (row.dist - n.dist2.sqrt()).abs() <= 1e-9 * (1.0 + n.dist2.sqrt()),
                            "thread {t} query {qi}: distance diverged"
                        );
                    }
                } else {
                    // Radius just past the 5th neighbor: a non-trivial,
                    // query-dependent result set.
                    let ref_knn = brute_force_knn(oracle(), q, 5);
                    let radius = ref_knn.last().map(|n| n.dist2.sqrt()).unwrap_or(0.1) * 1.001;
                    let want = brute_force_range(oracle(), q, radius);
                    let got = client.range(q, radius).unwrap();
                    assert_eq!(
                        got.iter().map(|r| r.data).collect::<Vec<_>>(),
                        want.iter().map(|n| n.data).collect::<Vec<_>>(),
                        "thread {t} query {qi}: range ids diverged from oracle"
                    );
                }
                // Interleave writes: far-away points that cannot enter
                // any unit-cube answer, unique payload per thread/query.
                if qi < 4 {
                    let p = shifted(q);
                    client
                        .insert(&p, 1_000_000 + (t * 100 + qi) as u64)
                        .unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The service stats document carries the schema marker and the
    // service-lifetime query metrics.
    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("\"schema_version\":1"),
        "stats missing schema_version: {stats}"
    );
    assert!(
        stats.contains("\"metrics\""),
        "stats missing metrics: {stats}"
    );
    assert!(
        stats.contains("\"wal\""),
        "stats missing wal block: {stats}"
    );

    // Graceful shutdown: the ack arrives, the server drains and exits.
    client.shutdown().unwrap();
    server.wait().unwrap();

    // The flush-on-shutdown contract: reopening replays nothing, and
    // every acknowledged insert is present.
    let tree = SrTree::open(&path).unwrap();
    assert_eq!(
        tree.pager().wal_stats().replays,
        0,
        "clean shutdown must leave an empty WAL"
    );
    assert_eq!(tree.len(), (N + THREADS * 4) as u64);
    let probe = shifted(&queries[0]);
    let hit = &tree.knn(&probe, 1).unwrap()[0];
    assert!(hit.dist2 < 1e-9, "inserted point not found after reopen");
    assert_eq!(hit.data, 1_000_000);
}

#[test]
fn pipelined_batches_match_individual_calls_and_drain_before_shutdown() {
    let points = uniform(400, DIM, 47);
    let mut tree = SrTree::create_in_memory(DIM, PAGE).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let server = Server::start(Box::new(tree), cfg(2, 8)).unwrap();
    let addr = server.local_addr().to_string();

    // Individual calls first.
    let mut one = Client::connect(&addr).unwrap();
    let qs: Vec<Vec<f32>> = points.iter().take(6).map(|p| p.coords().to_vec()).collect();
    let mut individual = Vec::new();
    for q in &qs {
        individual.push(Response::Rows(one.knn(q, 5).unwrap()));
        individual.push(Response::Rows(one.range(q, 0.4).unwrap()));
    }

    // The same twelve queries pipelined as one adjacent run (the shape
    // the server coalesces into a single sr-exec batch), with a
    // Shutdown frame buffered behind them: all twelve answers must
    // drain, in order, before the ack.
    let mut reqs = Vec::new();
    for q in &qs {
        reqs.push(Request::Knn {
            query: q.clone(),
            k: 5,
        });
        reqs.push(Request::Range {
            query: q.clone(),
            radius: 0.4,
        });
    }
    reqs.push(Request::Shutdown);
    let mut piped = Client::connect(&addr).unwrap();
    let resps = piped.pipeline(&reqs).unwrap();
    assert_eq!(resps.len(), individual.len() + 1);
    assert_eq!(resps[..individual.len()], individual[..]);
    assert_eq!(resps[individual.len()], Response::Ack { n: 0 });
    server.wait().unwrap();
}

#[test]
fn over_capacity_connections_get_typed_overloaded_and_slots_recycle() {
    let points = uniform(200, DIM, 53);
    let mut tree = SrTree::create_in_memory(DIM, PAGE).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let server = Server::start(Box::new(tree), cfg(2, 2)).unwrap();
    let addr = server.local_addr().to_string();

    // Fill both admission slots; the pings prove both connections are
    // fully admitted before the third arrives.
    let mut a = Client::connect(&addr).unwrap();
    let mut b = Client::connect(&addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // The third connection is answered — not hung, not dropped — with
    // the typed backpressure error naming the cap.
    let mut c = Client::connect(&addr).unwrap();
    match c.ping() {
        Err(ServeError::Remote(RemoteError::Overloaded { max, .. })) => assert_eq!(max, 2),
        other => panic!("expected typed Overloaded, got {other:?}"),
    }

    // Slots recycle once the admitted connections hang up.
    drop(a);
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut d = Client::connect(&addr).unwrap();
        match d.ping() {
            Ok(()) => break,
            Err(ServeError::Remote(RemoteError::Overloaded { .. }))
                if Instant::now() < deadline =>
            {
                thread::sleep(Duration::from_millis(20));
            }
            other => panic!("slot never recycled: {other:?}"),
        }
    }

    server.stop();
    server.wait().unwrap();
}
