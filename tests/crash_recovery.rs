//! Exhaustive crash-point recovery: the proving suite for the pager's
//! write-ahead log.
//!
//! For a seeded insert/delete workload on each of the five structures,
//! a clean run first counts every store/log write and every fsync the
//! workload performs. The suite then re-runs the identical workload
//! once per I/O point, crashing at that point — writes are torn to a
//! configurable byte prefix (empty, mid-frame-header, half a page,
//! or fully persisted) and every subsequent I/O fails, modelling a
//! process death. The surviving bytes are reopened like a process
//! restart (WAL scan, torn-tail discard, committed-frame replay) and
//! the recovered tree must answer k-NN and range probes *oracle
//! exactly* against one of the two legal states:
//!
//! * the last committed snapshot (crash between commits rolls forward
//!   to the checkpoint barrier), or
//! * the snapshot a crashed-in-flight commit was writing (a commit is
//!   atomic: it either landed entirely or not at all — never a blend).
//!
//! A typed open failure is acceptable only when *no* tree state was
//! ever durably committed (the crash hit creation itself).

use sr_testkit::{faulted_parts, matches_model, reopen, AnyTree, FaultHandle, Model, TreeKind};
use srtree::dataset::{sample_queries, uniform};
use srtree::geometry::Point;
use srtree::pager::{LogStore, PageFile, PageStore};
use srtree::vamsplit::VamTree;

const DIM: usize = 4;
const PAGE: usize = 1024;
const DATA_AREA: usize = 64;
/// Points per workload. Small enough that crashing at every single I/O
/// point stays fast, large enough to force splits in every structure.
const N: usize = 56;
/// Ops between commits — several commit barriers per run, with real
/// uncommitted tails in between.
const FLUSH_EVERY: usize = 12;
const K: usize = 4;
const RADIUS: f64 = 0.45;
const SEED: u64 = 0xC4A5;
/// Small pool so recovered reads exercise both WAL-read and store-read
/// paths instead of staying cache-resident.
const CACHE_PAGES: usize = 8;

/// One step of the scripted workload (indices into the point set).
#[derive(Clone, Copy, Debug)]
enum WlOp {
    Insert(usize),
    Delete(usize),
    Flush,
}

/// Deterministic insert/delete/flush tape: every point inserted, every
/// fourth step deletes an earlier (odd) id exactly once, and a commit
/// barrier lands every `FLUSH_EVERY` inserts plus one at the end.
fn script(n: usize) -> Vec<WlOp> {
    let mut ops = Vec::new();
    for i in 0..n {
        ops.push(WlOp::Insert(i));
        if i % 4 == 3 {
            ops.push(WlOp::Delete(i / 2));
        }
        if (i + 1) % FLUSH_EVERY == 0 {
            ops.push(WlOp::Flush);
        }
    }
    ops.push(WlOp::Flush);
    ops
}

/// What a (possibly crashed) run left behind, oracle-side.
struct Outcome {
    /// Oracle snapshot at the last flush that returned `Ok` — the state
    /// recovery must roll forward to. `None` if no commit ever completed.
    committed: Option<Model>,
    /// Oracle snapshot a *failing* flush was trying to commit. The
    /// in-flight commit may or may not have reached the log before the
    /// crash, so this is the second legal recovery target.
    pending: Option<Model>,
    /// Whether the run hit an error (every armed run must).
    errored: bool,
}

/// Drive the scripted workload over a faulted store pair, mirroring
/// every successful op into the oracle and snapshotting it at commits.
fn run_dynamic(
    kind: TreeKind,
    points: &[Point],
    ops: &[WlOp],
    store: Box<dyn PageStore>,
    log: Box<dyn LogStore>,
) -> Outcome {
    let mut model = Model::new();
    let mut committed: Option<Model> = None;
    let pf = match PageFile::create_from_parts(store, log) {
        Ok(pf) => pf,
        Err(_) => {
            return Outcome {
                committed,
                pending: Some(Model::new()),
                errored: true,
            }
        }
    };
    let _ = pf.set_cache_capacity(CACHE_PAGES);
    let mut tree = match AnyTree::create(kind, pf, DIM, DATA_AREA) {
        Ok(t) => t,
        Err(_) => {
            return Outcome {
                committed,
                pending: Some(Model::new()),
                errored: true,
            }
        }
    };
    // Baseline commit: the empty tree becomes the first durable state.
    if tree.flush().is_err() {
        return Outcome {
            committed,
            pending: Some(model),
            errored: true,
        };
    }
    committed = Some(model.clone());
    for op in ops {
        match *op {
            WlOp::Insert(i) => {
                if tree.insert(points[i].clone(), i as u64).is_err() {
                    return Outcome {
                        committed,
                        pending: None,
                        errored: true,
                    };
                }
                model.insert(points[i].clone(), i as u64);
            }
            WlOp::Delete(i) => match tree.delete(&points[i], i as u64) {
                Ok(hit) => {
                    let oracle_hit = model.delete(&points[i], i as u64);
                    assert_eq!(
                        hit,
                        oracle_hit,
                        "{}: delete({i}) disagreed with oracle",
                        kind.name()
                    );
                }
                Err(_) => {
                    return Outcome {
                        committed,
                        pending: None,
                        errored: true,
                    }
                }
            },
            WlOp::Flush => {
                if tree.flush().is_err() {
                    return Outcome {
                        committed,
                        pending: Some(model),
                        errored: true,
                    };
                }
                committed = Some(model.clone());
            }
        }
    }
    Outcome {
        committed,
        pending: None,
        errored: false,
    }
}

/// Which I/O point a run crashes at.
#[derive(Clone, Copy, Debug)]
enum CrashPoint {
    /// Crash at the nth write, keeping only a byte prefix of it.
    Write(u64, usize),
    /// Fail the nth sync (fsync barrier) and latch.
    Sync(u64),
}

fn arm(handle: &FaultHandle, point: CrashPoint) {
    match point {
        CrashPoint::Write(w, keep) => handle.crash_at_write(w, keep),
        CrashPoint::Sync(s) => handle.crash_at_sync(s),
    }
}

/// Cycle the torn-write prefix through the interesting shapes: nothing
/// persisted, a cut inside the 17-byte frame header, a cut inside the
/// payload, and the full write persisted before the latch.
fn keep_for(w: u64) -> usize {
    match w % 4 {
        0 => 0,
        1 => 9,
        2 => PAGE / 2,
        _ => usize::MAX,
    }
}

/// Crash one dynamic-tree run at `point`, reopen, and check recovery.
fn check_dynamic_crash_point(
    kind: TreeKind,
    points: &[Point],
    ops: &[WlOp],
    queries: &[Point],
    point: CrashPoint,
) {
    let (store, log, handle, shared) = faulted_parts(PAGE);
    arm(&handle, point);
    let outcome = run_dynamic(kind, points, ops, store, log);
    assert!(
        outcome.errored && handle.crashed(),
        "{} {point:?}: armed crash never fired",
        kind.name()
    );
    // The "process" is dead; reopen from the surviving bytes. The open
    // replays committed WAL frames and discards the torn tail.
    let pf = match reopen(&shared) {
        Ok(pf) => pf,
        Err(e) => {
            assert!(
                outcome.committed.is_none(),
                "{} {point:?}: store unreadable after a committed state existed: {e}",
                kind.name()
            );
            return;
        }
    };
    let _ = pf.set_cache_capacity(CACHE_PAGES);
    let tree = match AnyTree::open(kind, pf) {
        Ok(t) => t,
        Err(e) => {
            assert!(
                outcome.committed.is_none(),
                "{} {point:?}: tree unopenable after a committed state existed: {e}",
                kind.name()
            );
            return;
        }
    };
    let mut failures = Vec::new();
    for (label, cand) in [
        ("committed", &outcome.committed),
        ("pending", &outcome.pending),
    ] {
        if let Some(m) = cand {
            match matches_model(&tree, m, queries, K, RADIUS) {
                Ok(()) => return,
                Err(e) => failures.push(format!("vs {label} ({} pts): {e}", m.len())),
            }
        }
    }
    panic!(
        "{} {point:?}: recovered tree (len {}) matches no legal state: {}",
        kind.name(),
        tree.len(),
        failures.join("; ")
    );
}

/// Count the workload's I/O points with a clean (unfaulted) run, then
/// crash at every single one of them.
fn crash_sweep_dynamic(kind: TreeKind) {
    let points = uniform(N, DIM, SEED);
    let queries = sample_queries(&points, 6, SEED ^ 0x9E37_79B9);
    let ops = script(N);

    let (store, log, handle, _shared) = faulted_parts(PAGE);
    let clean = run_dynamic(kind, &points, &ops, store, log);
    assert!(!clean.errored, "{}: clean run must not error", kind.name());
    let io = handle.stats();
    assert!(
        io.writes > 20 && io.syncs > 3,
        "{}: workload too small to be interesting ({io:?})",
        kind.name()
    );

    eprintln!(
        "{}: sweeping {} writes + {} syncs",
        kind.name(),
        io.writes,
        io.syncs
    );
    for w in 0..io.writes {
        check_dynamic_crash_point(
            kind,
            &points,
            &ops,
            &queries,
            CrashPoint::Write(w, keep_for(w)),
        );
    }
    for s in 0..io.syncs {
        check_dynamic_crash_point(kind, &points, &ops, &queries, CrashPoint::Sync(s));
    }
}

#[test]
fn sr_tree_recovers_from_every_crash_point() {
    crash_sweep_dynamic(TreeKind::Sr);
}

#[test]
fn ss_tree_recovers_from_every_crash_point() {
    crash_sweep_dynamic(TreeKind::Ss);
}

#[test]
fn rstar_tree_recovers_from_every_crash_point() {
    crash_sweep_dynamic(TreeKind::Rstar);
}

#[test]
fn kdb_tree_recovers_from_every_crash_point() {
    crash_sweep_dynamic(TreeKind::Kdb);
}

/// VAMSplit build, crashed at every I/O point. The static tree has a
/// single commit (the post-build flush), so a recovered open either
/// fails typed (nothing committed) or serves the full point set.
fn run_vam(points: &[Point], store: Box<dyn PageStore>, log: Box<dyn LogStore>) -> Outcome {
    let full = {
        let mut m = Model::new();
        for (i, p) in points.iter().enumerate() {
            m.insert(p.clone(), i as u64);
        }
        m
    };
    let pf = match PageFile::create_from_parts(store, log) {
        Ok(pf) => pf,
        Err(_) => {
            return Outcome {
                committed: None,
                pending: Some(full),
                errored: true,
            }
        }
    };
    let _ = pf.set_cache_capacity(CACHE_PAGES);
    let data: Vec<(Point, u64)> = points.iter().cloned().zip(0u64..).collect();
    let tree = match VamTree::build_from(pf, data, DIM, DATA_AREA) {
        Ok(t) => t,
        Err(_) => {
            return Outcome {
                committed: None,
                pending: Some(full),
                errored: true,
            }
        }
    };
    if tree.flush().is_err() {
        return Outcome {
            committed: None,
            pending: Some(full),
            errored: true,
        };
    }
    Outcome {
        committed: Some(full),
        pending: None,
        errored: false,
    }
}

#[test]
fn vam_tree_recovers_from_every_crash_point() {
    let points = uniform(N, DIM, SEED);
    let queries = sample_queries(&points, 6, SEED ^ 0x9E37_79B9);

    let (store, log, handle, _shared) = faulted_parts(PAGE);
    let clean = run_vam(&points, store, log);
    assert!(!clean.errored, "vam-tree: clean build must not error");
    let io = handle.stats();
    assert!(
        io.writes > 10 && io.syncs > 0,
        "vam-tree: build too small ({io:?})"
    );
    let full = clean.committed.unwrap();

    let mut crash_points: Vec<CrashPoint> = (0..io.writes)
        .map(|w| CrashPoint::Write(w, keep_for(w)))
        .collect();
    crash_points.extend((0..io.syncs).map(CrashPoint::Sync));

    for point in crash_points {
        let (store, log, handle, shared) = faulted_parts(PAGE);
        arm(&handle, point);
        let outcome = run_vam(&points, store, log);
        assert!(
            outcome.errored && handle.crashed(),
            "vam-tree {point:?}: armed crash never fired"
        );
        let pf = match reopen(&shared) {
            Ok(pf) => pf,
            // Nothing tree-level was ever committed in a crashed build,
            // so an unreadable store is always legal here.
            Err(_) => continue,
        };
        let _ = pf.set_cache_capacity(CACHE_PAGES);
        let tree = match VamTree::open_from(pf) {
            Ok(t) => t,
            // The single commit never landed: a typed failure is the
            // correct answer.
            Err(_) => continue,
        };
        // The commit landed in its entirety: the recovered tree must
        // serve the full build, oracle-exactly.
        sr_testkit::crash::verify_vam(&tree)
            .unwrap_or_else(|e| panic!("vam-tree {point:?}: verify: {e}"));
        assert_eq!(tree.len(), full.len() as u64, "vam-tree {point:?}: len");
        for (qi, q) in queries.iter().enumerate() {
            let got = tree
                .knn(q.coords(), K)
                .unwrap_or_else(|e| panic!("vam-tree {point:?}: knn[{qi}]: {e}"));
            let want = full.knn(q.coords(), K);
            sr_testkit::check_answer("vam-tree", &got, &want, true)
                .unwrap_or_else(|e| panic!("vam-tree {point:?}: knn[{qi}]: {e}"));
            let got = tree
                .range(q.coords(), RADIUS)
                .unwrap_or_else(|e| panic!("vam-tree {point:?}: range[{qi}]: {e}"));
            let want = full.range(q.coords(), RADIUS);
            sr_testkit::check_answer("vam-tree", &got, &want, true)
                .unwrap_or_else(|e| panic!("vam-tree {point:?}: range[{qi}]: {e}"));
        }
    }
}
