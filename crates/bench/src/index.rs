//! A uniform wrapper over the five index structures so experiments can
//! iterate over them. Everything after construction dispatches through
//! `sr-query`'s [`SpatialIndex`] trait; only construction (and the few
//! experiments that need structure-specific accessors like
//! `leaf_regions`) name concrete tree types.

use sr_geometry::Point;
use sr_kdbtree::KdbTree;
use sr_pager::{IoStats, PageFile};
use sr_query::{Neighbor, SpatialIndex};
use sr_rstar::RstarTree;
use sr_sstree::SsTree;
use sr_tree::SrTree;
use sr_vamsplit::VamTree;

/// Which structure to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    /// K-D-B-tree (Robinson 1981).
    Kdb,
    /// R\*-tree (Beckmann et al. 1990).
    Rstar,
    /// SS-tree (White & Jain 1996).
    Ss,
    /// VAMSplit R-tree (White & Jain 1996), static.
    Vam,
    /// SR-tree (Katayama & Satoh 1997) — the paper's contribution.
    Sr,
}

impl TreeKind {
    /// Label used in tables (matching the paper's naming).
    pub fn label(self) -> &'static str {
        match self {
            TreeKind::Kdb => "K-D-B-tree",
            TreeKind::Rstar => "R*-tree",
            TreeKind::Ss => "SS-tree",
            TreeKind::Vam => "VAMSplit R-tree",
            TreeKind::Sr => "SR-tree",
        }
    }

    /// The dynamic structures (everything but the VAMSplit R-tree).
    pub const DYNAMIC: &'static [TreeKind] =
        &[TreeKind::Kdb, TreeKind::Rstar, TreeKind::Ss, TreeKind::Sr];

    /// All five structures.
    pub const ALL: &'static [TreeKind] = &[
        TreeKind::Kdb,
        TreeKind::Rstar,
        TreeKind::Ss,
        TreeKind::Vam,
        TreeKind::Sr,
    ];
}

/// One of the five index structures behind [`SpatialIndex`].
pub struct AnyIndex {
    kind: TreeKind,
    index: Box<dyn SpatialIndex>,
}

/// The paper's page size.
pub const PAGE_SIZE: usize = 8192;
/// The paper's per-leaf-entry data area.
pub const DATA_AREA: usize = 512;

fn paper_pagefile() -> PageFile {
    PageFile::create_in_memory(PAGE_SIZE).expect("in-memory page file")
}

/// Build an SS-tree over `points` with the paper's layout (for
/// experiments that need [`SsTree::leaf_regions`]).
pub fn build_ss(points: &[Point]) -> SsTree {
    let mut t = SsTree::create_from(paper_pagefile(), points[0].dim(), DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

/// Build an R\*-tree over `points` with the paper's layout.
pub fn build_rstar(points: &[Point]) -> RstarTree {
    let mut t = RstarTree::create_from(paper_pagefile(), points[0].dim(), DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

/// Build an SR-tree over `points` with the paper's layout.
pub fn build_sr(points: &[Point]) -> SrTree {
    let mut t = SrTree::create_from(paper_pagefile(), points[0].dim(), DATA_AREA).unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

impl AnyIndex {
    /// Build an index of `kind` over `points` (in-memory page file, the
    /// paper's page layout). Dynamic trees insert one point at a time;
    /// the VAMSplit R-tree bulk-builds.
    ///
    /// # Panics
    /// Panics on I/O errors (in-memory page files cannot fail) and on
    /// `Unsplittable` K-D-B overflows (the paper's data sets are
    /// continuous).
    pub fn build(kind: TreeKind, points: &[Point]) -> AnyIndex {
        let dim = points[0].dim();
        let index: Box<dyn SpatialIndex> = match kind {
            TreeKind::Kdb => {
                let mut t = KdbTree::create_from(paper_pagefile(), dim, DATA_AREA).unwrap();
                for (i, p) in points.iter().enumerate() {
                    t.insert(p.clone(), i as u64).unwrap();
                }
                Box::new(t)
            }
            TreeKind::Rstar => Box::new(build_rstar(points)),
            TreeKind::Ss => Box::new(build_ss(points)),
            TreeKind::Vam => {
                let with_ids: Vec<(Point, u64)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.clone(), i as u64))
                    .collect();
                Box::new(VamTree::build_from(paper_pagefile(), with_ids, dim, DATA_AREA).unwrap())
            }
            TreeKind::Sr => Box::new(build_sr(points)),
        };
        AnyIndex { kind, index }
    }

    /// Wrap an already-built SR-tree (e.g. from `bulk_load`).
    pub fn from_sr(tree: SrTree) -> AnyIndex {
        AnyIndex {
            kind: TreeKind::Sr,
            index: Box::new(tree),
        }
    }

    /// Which structure this is.
    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// The trait object itself, for callers (the batch executor) that
    /// want the [`SpatialIndex`] API directly.
    pub fn index(&self) -> &dyn SpatialIndex {
        self.index.as_ref()
    }

    /// k-nearest-neighbor query.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.knn_with(query, k, &sr_obs::Noop)
    }

    /// [`AnyIndex::knn`] with a metrics recorder (see `sr-obs`).
    pub fn knn_with(&self, query: &[f32], k: usize, rec: &dyn sr_obs::Recorder) -> Vec<Neighbor> {
        self.index
            .query(&sr_query::QuerySpec::knn(query, k), rec)
            .unwrap()
            .rows
    }

    /// Range query.
    pub fn range(&self, query: &[f32], radius: f64) -> Vec<Neighbor> {
        self.index.range(query, radius).unwrap()
    }

    /// The underlying page file.
    pub fn pager(&self) -> &PageFile {
        self.index.pager()
    }

    /// Tree height in levels.
    pub fn height(&self) -> u32 {
        self.index.height()
    }

    /// Number of leaf pages.
    pub fn num_leaves(&self) -> u64 {
        self.index.num_leaves().unwrap()
    }

    /// Disable the buffer pool (cold-cache query accounting) and zero the
    /// I/O counters.
    pub fn reset_for_queries(&self) {
        self.reset_for_queries_at(0);
    }

    /// Set the buffer pool to `pages` pages and zero the I/O counters.
    pub fn reset_for_queries_at(&self, pages: usize) {
        self.pager().set_cache_capacity(pages).unwrap();
        self.pager().reset_stats();
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        self.pager().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_dataset::uniform;

    #[test]
    fn all_kinds_build_and_agree_on_knn() {
        let pts = uniform(300, 8, 3);
        let q = pts[5].coords();
        let mut answers: Vec<Vec<u64>> = Vec::new();
        for &kind in TreeKind::ALL {
            let idx = AnyIndex::build(kind, &pts);
            assert_eq!(idx.kind(), kind);
            let hits = idx.knn(q, 7);
            assert_eq!(hits.len(), 7, "{}", kind.label());
            answers.push(hits.iter().map(|n| n.data).collect());
        }
        // Identical point set, identical ties-broken ordering → identical
        // id lists across all five structures.
        for w in answers.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    #[test]
    fn reset_for_queries_gives_cold_cache_counts() {
        let pts = uniform(500, 8, 5);
        let idx = AnyIndex::build(TreeKind::Sr, &pts);
        idx.reset_for_queries();
        idx.knn(pts[0].coords(), 21);
        let s = idx.stats();
        assert!(s.tree_reads() > 0);
        assert_eq!(s.tree_reads(), s.physical_reads());
    }
}
