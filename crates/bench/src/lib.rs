//! Benchmark harness reproducing **every table and figure** of the
//! SR-tree paper's evaluation (§3 and §5).
//!
//! Each experiment is a module under [`experiments`]; the `experiments`
//! binary dispatches on the experiment id (`table1` … `fig19`) and prints
//! the same rows/series the paper reports, plus a CSV copy under
//! `target/experiments/`.
//!
//! Two scales are supported:
//!
//! * **default** — sizes reduced so the full suite runs in minutes;
//! * **`--paper`** — the paper's exact data-set sizes and 1,000-query
//!   workloads.
//!
//! Absolute numbers differ from a 1996 SPARCstation; the *shapes* (who
//! wins, by what factor, where the crossovers fall) are the reproduction
//! target. EXPERIMENTS.md records paper-vs-measured for every id.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod index;
pub mod measure;
pub mod report;

pub use index::{AnyIndex, TreeKind};
pub use measure::{BuildCost, QueryCost, Scale};

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "ablation",
    "bulkload",
    "obs",
    "throughput",
    "serve_load",
];

/// Run one experiment by id. `paper` selects the paper-exact scale.
pub fn run_experiment(id: &str, paper: bool) -> Result<(), String> {
    let scale = Scale::new(paper);
    match id {
        "table1" => experiments::table1::run(&scale),
        "table2" => experiments::table2::run(&scale),
        "table3" => experiments::table3::run(&scale),
        "fig3" => experiments::fig3::run(&scale),
        "fig4" => experiments::fig4::run(&scale),
        "fig5" => experiments::fig5::run(&scale),
        "fig6" => experiments::fig6::run(&scale),
        "fig9" => experiments::fig9::run(&scale),
        "fig10" => experiments::fig10::run(&scale),
        "fig11" => experiments::fig11::run(&scale),
        "fig12" => experiments::fig12::run(&scale),
        "fig13" => experiments::fig13::run(&scale),
        "fig14" => experiments::fig14::run(&scale),
        "fig15" => experiments::fig15::run(&scale),
        "fig16" => experiments::fig16::run(&scale),
        "fig17" => experiments::fig17::run(&scale),
        "fig18" => experiments::fig18::run(&scale),
        "fig19" => experiments::fig19::run(&scale),
        "ablation" => experiments::ablation::run(&scale),
        "bulkload" => experiments::bulkload::run(&scale),
        "obs" => experiments::obs::run(&scale),
        "throughput" => experiments::throughput::run(&scale),
        "serve_load" => experiments::serve_load::run(&scale),
        other => Err(format!(
            "unknown experiment {other:?}; known: {}",
            ALL_EXPERIMENTS.join(", ")
        )),
    }
}
