//! Table formatting and CSV output for experiment reports.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple aligned-text table that doubles as a CSV writer.
pub struct Report {
    id: String,
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report for experiment `id` with a human-readable title.
    pub fn new(id: &str, title: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn header<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cols: I) -> &mut Self {
        self.header = cols.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row.
    pub fn row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, cols: I) -> &mut Self {
        self.rows.push(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Render the aligned-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(c.len());
                } else {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let _ = writeln!(
                out,
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
            );
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout and write `target/experiments/<id>.csv`.
    pub fn emit(&self) -> Result<(), String> {
        print!("{}", self.render());
        let dir = PathBuf::from("target/experiments");
        fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
        let mut csv = String::new();
        if !self.header.is_empty() {
            csv.push_str(&self.header.join(","));
            csv.push('\n');
        }
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(dir.join(format!("{}.csv", self.id)), csv).map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// Format a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else if v.abs() >= 1e-3 {
        format!("{v:.4}")
    } else {
        format!("{v:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "demo");
        r.header(["a", "bbbb"]).row(["1", "2"]).row(["333", "4"]);
        let s = r.render();
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.4), "123");
        assert_eq!(f(1.234), "1.23");
        assert_eq!(f(0.1234), "0.1234");
        assert!(f(1.2e-7).contains('e'));
    }
}
