//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p sr-bench --bin experiments -- <id>|all [--paper]
//! ```
//!
//! Ids: table1 table2 table3 fig3 fig4 fig5 fig6 fig9 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19. CSV copies land in
//! `target/experiments/`.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper = args.iter().any(|a| a == "--paper");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if ids.is_empty() {
        eprintln!("usage: experiments <id>|all [--paper]");
        eprintln!("known ids: {}", sr_bench::ALL_EXPERIMENTS.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if ids == ["all"] {
        sr_bench::ALL_EXPERIMENTS.to_vec()
    } else {
        ids
    };
    for id in ids {
        let t0 = Instant::now();
        if let Err(e) = sr_bench::run_experiment(id, paper) {
            eprintln!("experiment {id} failed: {e}");
            std::process::exit(1);
        }
        println!("[{id} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
}
