//! Measurement primitives: query cost, build cost, and the two
//! experiment scales.

use std::time::Instant;

use sr_geometry::Point;
use sr_obs::{Counter, StatsRecorder};
use sr_pager::PageKind;

use crate::index::{AnyIndex, TreeKind, DATA_AREA, PAGE_SIZE};

/// The paper queries "the nearest 21 points".
pub const K: usize = 21;

/// Experiment scale: default (fast) or `--paper` (exact paper sizes).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Whether paper-exact sizes are in force.
    pub paper: bool,
}

impl Scale {
    /// Build a scale; `paper = true` reproduces the paper's exact sizes.
    pub fn new(paper: bool) -> Self {
        Scale { paper }
    }

    /// Data-set sizes for the uniform experiments (paper: 10k..100k).
    pub fn uniform_sizes(&self) -> Vec<usize> {
        if self.paper {
            (1..=10).map(|i| i * 10_000).collect()
        } else {
            vec![5_000, 10_000, 20_000, 40_000]
        }
    }

    /// Data-set sizes for the real-data experiments (paper: 2k..20k).
    pub fn real_sizes(&self) -> Vec<usize> {
        if self.paper {
            (1..=10).map(|i| i * 2_000).collect()
        } else {
            vec![2_000, 5_000, 10_000, 20_000]
        }
    }

    /// Number of query trials averaged per measurement (paper: 1,000).
    pub fn trials(&self) -> usize {
        if self.paper {
            1_000
        } else {
            200
        }
    }

    /// Dimensionalities for the dimensionality sweeps (paper: 1..64).
    pub fn dims(&self) -> Vec<usize> {
        if self.paper {
            vec![1, 2, 4, 8, 16, 32, 64]
        } else {
            vec![1, 2, 4, 8, 16, 32]
        }
    }

    /// Data-set size for the dimensionality sweep on uniform data
    /// (paper: 100,000).
    pub fn dim_sweep_size(&self) -> usize {
        if self.paper {
            100_000
        } else {
            20_000
        }
    }

    /// Cluster counts for the uniformity sweep (paper: 1..100,000 with a
    /// fixed 100,000 total points).
    pub fn cluster_counts(&self) -> Vec<usize> {
        if self.paper {
            vec![1, 10, 100, 1_000, 10_000, 100_000]
        } else {
            vec![1, 10, 100, 1_000, 20_000]
        }
    }

    /// Total points for the uniformity sweep.
    pub fn cluster_total(&self) -> usize {
        if self.paper {
            100_000
        } else {
            20_000
        }
    }
}

/// Averages over a query workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Mean CPU milliseconds per query.
    pub cpu_ms: f64,
    /// Mean node+leaf page reads per query (the paper's "disk reads").
    pub reads: f64,
    /// Mean node-level reads per query (Figure 14).
    pub node_reads: f64,
    /// Mean leaf-level reads per query (Figure 14).
    pub leaf_reads: f64,
    /// Mean node expansions per query (sr-obs).
    pub expansions: f64,
    /// Mean prune events per query, however attributed.
    pub prune_events: f64,
    /// Mean prunes per query the sphere bound alone would deliver (§4.4).
    pub prune_sphere: f64,
    /// Mean prunes per query the rectangle bound alone would deliver.
    pub prune_rect: f64,
    /// Buffer-pool hit rate over the workload (0 under the cold cache).
    pub cache_hit_rate: f64,
}

/// Run the paper's query workload (k = 21 nearest neighbors, cold cache)
/// and average the costs.
pub fn measure_knn(index: &AnyIndex, queries: &[Point], k: usize) -> QueryCost {
    measure_knn_at_capacity(index, queries, k, 0)
}

/// [`measure_knn`] with a buffer pool of `cache_pages` pages instead of
/// the paper's cold cache (`cache_hit_rate` is only meaningful here).
pub fn measure_knn_at_capacity(
    index: &AnyIndex,
    queries: &[Point],
    k: usize,
    cache_pages: usize,
) -> QueryCost {
    index.reset_for_queries_at(cache_pages);
    let rec = StatsRecorder::new();
    let before = index.stats();
    let t0 = Instant::now();
    for q in queries {
        let hits = index.knn_with(q.coords(), k, &rec);
        std::hint::black_box(&hits);
    }
    let elapsed = t0.elapsed();
    let after = index.stats();
    let d = after.since(&before);
    let m = rec.snapshot();
    let probes = d.cache_hits() + d.cache_misses();
    let n = queries.len() as f64;
    QueryCost {
        cpu_ms: elapsed.as_secs_f64() * 1e3 / n,
        reads: d.tree_reads() as f64 / n,
        node_reads: d.logical_reads(PageKind::Node) as f64 / n,
        leaf_reads: d.logical_reads(PageKind::Leaf) as f64 / n,
        expansions: m.counter(Counter::NodeExpansions) as f64 / n,
        prune_events: m.counter(Counter::PruneEvents) as f64 / n,
        prune_sphere: m.counter(Counter::PruneSphere) as f64 / n,
        prune_rect: m.counter(Counter::PruneRect) as f64 / n,
        cache_hit_rate: if probes == 0 {
            0.0
        } else {
            d.cache_hits() as f64 / probes as f64
        },
    }
}

/// Averages over an insertion workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildCost {
    /// Mean CPU milliseconds per insertion.
    pub cpu_ms: f64,
    /// Mean node+leaf page accesses (reads + writes) per insertion — the
    /// paper's "number of disk accesses" (Figure 9-b).
    pub accesses: f64,
}

/// Build an index while measuring per-insert cost (bulk build for the
/// VAMSplit R-tree, whole-build cost spread over the points).
pub fn measure_build(kind: TreeKind, points: &[Point]) -> (AnyIndex, BuildCost) {
    // A modest buffer pool mimics a real insertion workload; accesses are
    // logical, so the pool does not distort the paper's metric.
    let t0 = Instant::now();
    let index = AnyIndex::build(kind, points);
    let elapsed = t0.elapsed();
    let stats = index.stats();
    let n = points.len() as f64;
    (
        index,
        BuildCost {
            cpu_ms: elapsed.as_secs_f64() * 1e3 / n,
            accesses: stats.tree_accesses() as f64 / n,
        },
    )
}

/// Assert the paper's workload parameters are in force (compile-time
/// documentation; referenced by tests).
pub fn paper_layout() -> (usize, usize) {
    (PAGE_SIZE, DATA_AREA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_dataset::{sample_queries, uniform};

    #[test]
    fn measure_knn_reports_positive_costs() {
        let pts = uniform(2_000, 8, 1);
        let idx = AnyIndex::build(TreeKind::Sr, &pts);
        let qs = sample_queries(&pts, 20, 2);
        let c = measure_knn(&idx, &qs, K);
        assert!(c.reads > 0.0);
        assert!(c.cpu_ms > 0.0);
        assert!((c.node_reads + c.leaf_reads - c.reads).abs() < 1e-9);
    }

    #[test]
    fn measure_knn_reports_prune_breakdown_and_hit_rate() {
        let pts = uniform(2_000, 8, 7);
        let idx = AnyIndex::build(TreeKind::Sr, &pts);
        let qs = sample_queries(&pts, 20, 4);
        let cold = measure_knn(&idx, &qs, K);
        assert!(cold.expansions > 0.0);
        assert!(cold.prune_events >= cold.prune_sphere.max(cold.prune_rect));
        assert!(
            (cold.cache_hit_rate - 0.0).abs() < f64::EPSILON,
            "cold cache never hits"
        );
        let warm = measure_knn_at_capacity(&idx, &qs, K, 4096);
        assert!(warm.cache_hit_rate > 0.0, "large pool must absorb rereads");
    }

    #[test]
    fn measure_build_counts_accesses() {
        let pts = uniform(1_000, 8, 3);
        let (_, cost) = measure_build(TreeKind::Ss, &pts);
        assert!(cost.accesses > 1.0, "accesses {}", cost.accesses);
    }

    #[test]
    fn scales_differ() {
        let fast = Scale::new(false);
        let paper = Scale::new(true);
        assert!(fast.trials() < paper.trials());
        assert_eq!(paper.uniform_sizes().last(), Some(&100_000));
        assert_eq!(paper.real_sizes().last(), Some(&20_000));
    }
}
