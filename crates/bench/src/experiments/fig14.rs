//! Figure 14: node-level reads vs leaf-level reads per query, SS-tree vs
//! SR-tree, on the real data set — the §5.3 "fanout problem" analysis.
//! The SR-tree's third-of-SS fanout costs extra node reads, but the
//! tighter regions save more leaf reads than that.

use sr_dataset::sample_queries;

use crate::experiments::{real_data, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig14",
        "node-level vs leaf-level reads per query (real data set)",
    );
    report.header([
        "size",
        "SS node reads",
        "SS leaf reads",
        "SR node reads",
        "SR leaf reads",
    ]);
    for &n in &scale.real_sizes() {
        let points = real_data(n);
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);
        let mut row = vec![n.to_string()];
        for kind in [TreeKind::Ss, TreeKind::Sr] {
            let index = AnyIndex::build(kind, &points);
            let cost = measure_knn(&index, &queries, K);
            row.push(f(cost.node_reads));
            row.push(f(cost.leaf_reads));
        }
        report.row(row);
    }
    report.emit()
}
