//! Figure 18: SR-tree vs SS-tree query cost with varying dimensionality
//! on the cluster data set (100 clusters).

use sr_dataset::{cluster, ClusterSpec};

use crate::experiments::fig15::dim_sweep;
use crate::experiments::DATA_SEED;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    dim_sweep(
        "fig18",
        "21-NN cost vs dimensionality (cluster data set, 100 clusters)",
        scale,
        |d, n| {
            cluster(
                ClusterSpec {
                    clusters: 100,
                    points_per_cluster: n / 100,
                    max_radius: 0.1,
                },
                d,
                DATA_SEED,
            )
        },
    )
}
