//! Figure 16: the proportion of leaves accessed per query vs
//! dimensionality — the measurement showing that uniform data stops
//! being a meaningful benchmark at 32–64 dimensions (every leaf is
//! touched).

use sr_dataset::{sample_queries, uniform};

use crate::experiments::{DATA_SEED, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig16",
        "fraction of leaves accessed per 21-NN query vs dimensionality (uniform)",
    );
    report.header(["dims", "SS accessed %", "SR accessed %"]);
    let n = scale.dim_sweep_size();
    for &d in &scale.dims() {
        let points = uniform(n, d, DATA_SEED);
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);
        let mut row = vec![d.to_string()];
        for kind in [TreeKind::Ss, TreeKind::Sr] {
            let index = AnyIndex::build(kind, &points);
            let leaves = index.num_leaves() as f64;
            let cost = measure_knn(&index, &queries, K);
            row.push(f(100.0 * cost.leaf_reads / leaves));
        }
        report.row(row);
    }
    report.emit()
}
