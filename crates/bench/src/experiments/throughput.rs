//! Batch-query throughput scaling (beyond the paper's figures): queries
//! per second and speedup over one thread when a k-NN batch is fanned
//! across T ∈ {1, 2, 4, 8} workers by `sr-exec`, for every structure on
//! the uniform 16-d workload.
//!
//! The paper measures single-query cost (§5); this experiment measures
//! what the ROADMAP's serving scenario cares about — how far the shared
//! read path (lock-striped buffer pool, `&self` queries) scales before
//! shard contention bites. Every run asserts the parallel results are
//! identical to the single-threaded ones, so the table can't silently
//! trade correctness for speed.

use std::time::Instant;

use sr_dataset::sample_queries;

use crate::experiments::{uniform_data, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{Scale, K};
use crate::report::{f, Report};

/// Thread counts swept, first entry is the baseline.
pub const THREADS: &[usize] = &[1, 2, 4, 8];

/// Buffer pool during the sweep, in pages. Large enough that the hot
/// upper levels stay resident (a serving pool, not the paper's
/// cold-cache accounting pool), small enough that leaves still churn
/// through the sharded LRU under every thread count.
const POOL_PAGES: usize = 256;

/// Snapshot file accumulating the perf trajectory PR over PR: the
/// committed copy records the numbers this PR shipped with, and every
/// rerun overwrites it so a regression shows up as a diff.
const SNAPSHOT: &str = "BENCH_PR5.json";

pub fn run(scale: &Scale) -> Result<(), String> {
    let n = if scale.paper { 100_000 } else { 10_000 };
    let batch = if scale.paper { 2_000 } else { 800 };
    let points = uniform_data(n);
    let queries: Vec<Vec<f32>> = sample_queries(&points, batch, QUERY_SEED)
        .into_iter()
        .map(|p| p.coords().to_vec())
        .collect();

    let mut report = Report::new(
        "throughput",
        format!("batch k-NN throughput vs threads (uniform, n = {n}, batch = {batch})").as_str(),
    );
    report.header([
        "tree", "T=1 q/s", "T=2 q/s", "T=4 q/s", "T=8 q/s", "x2", "x4", "x8",
    ]);
    let mut snapshot = Vec::new();
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries_at(POOL_PAGES);

        let mut qps = Vec::with_capacity(THREADS.len());
        let mut baseline_results = None;
        for &t in THREADS {
            // One untimed warm-up pass fills the pool so every thread
            // count sees the same cache state.
            let warm =
                sr_exec::run_knn_batch(index.index(), &queries, K, t).map_err(|e| e.to_string())?;
            let t0 = Instant::now();
            let out =
                sr_exec::run_knn_batch(index.index(), &queries, K, t).map_err(|e| e.to_string())?;
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&warm);
            match &baseline_results {
                None => baseline_results = Some(out.results),
                Some(base) => {
                    if *base != out.results {
                        return Err(format!(
                            "{}: results at T={t} diverged from T=1",
                            kind.label()
                        ));
                    }
                }
            }
            qps.push(queries.len() as f64 / secs);
        }

        let base = qps.first().copied().unwrap_or(1.0);
        report.row([
            kind.label().to_string(),
            f(qps[0]),
            f(qps[1]),
            f(qps[2]),
            f(qps[3]),
            f(qps[1] / base),
            f(qps[2] / base),
            f(qps[3] / base),
        ]);
        snapshot.push((kind.label().to_string(), qps));
    }
    write_snapshot(n, batch, &snapshot)?;
    report.emit()
}

/// Write the machine-readable `BENCH_PR5.json` snapshot next to the
/// working directory (the workspace root under `cargo run`).
fn write_snapshot(n: usize, batch: usize, trees: &[(String, Vec<f64>)]) -> Result<(), String> {
    let mut s = String::from("{\n");
    s.push_str("  \"pr\": 5,\n  \"experiment\": \"throughput\",\n");
    s.push_str(&format!("  \"n\": {n},\n  \"batch\": {batch},\n"));
    s.push_str(&format!(
        "  \"threads\": [{}],\n  \"trees\": {{\n",
        THREADS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (i, (label, qps)) in trees.iter().enumerate() {
        let base = qps.first().copied().unwrap_or(1.0);
        let fmt_list = |vals: &[f64]| {
            vals.iter()
                .map(|v| format!("{v:.1}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let speedups: Vec<f64> = qps.iter().map(|q| q / base).collect();
        s.push_str(&format!(
            "    \"{label}\": {{\"qps\": [{}], \"speedup\": [{}]}}{}\n",
            fmt_list(qps),
            fmt_list(&speedups),
            if i + 1 < trees.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    std::fs::write(SNAPSHOT, s).map_err(|e| format!("write {SNAPSHOT}: {e}"))
}
