//! Batch-query throughput scaling (beyond the paper's figures): queries
//! per second and speedup over one thread when a k-NN batch is fanned
//! across T ∈ {1, 2, 4, 8} workers by `sr-exec`, for every structure on
//! the uniform 16-d workload — plus a single-thread kernel ablation
//! (scalar vs columnar vs columnar-with-early-abandon leaf scans).
//!
//! The paper measures single-query cost (§5); this experiment measures
//! what the ROADMAP's serving scenario cares about — how far the shared
//! read path (lock-striped buffer pool, `&self` queries) scales before
//! shard contention bites, and how much of the single-thread budget the
//! leaf-scan kernel is responsible for. Every run asserts the parallel
//! results are identical to the single-threaded ones, and every ablation
//! mode asserts bit-identical answers, so the table can't silently trade
//! correctness for speed.

use std::time::Instant;

use sr_dataset::sample_queries;
use sr_query::LeafScan;

use crate::experiments::{uniform_data, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{Scale, K};
use crate::report::{f, Report};

/// Thread counts swept, first entry is the baseline.
pub const THREADS: &[usize] = &[1, 2, 4, 8];

/// Floor on the serving buffer pool, in pages. The pool is sized to
/// hold the whole index (see [`serving_pool_pages`]): this experiment
/// measures the query engine on a warm serving pool, not the paper's
/// cold-cache accounting (the `obs` experiment covers that). The old
/// fixed 256-page pool was smaller than the n = 10k leaf set, so with
/// the ~87% leaf visit rate of uniform 16-d k-NN the LRU thrashed and
/// every logical read became a physical read — the sweep was measuring
/// the miss path, not the index.
const POOL_PAGES_MIN: usize = 256;

/// Pool size that keeps the whole index resident after the warm-up pass.
fn serving_pool_pages(index: &AnyIndex) -> usize {
    usize::try_from(index.pager().num_pages())
        .unwrap_or(usize::MAX)
        .max(POOL_PAGES_MIN)
}

/// Snapshot file accumulating the perf trajectory PR over PR: the
/// committed copy records the numbers this PR shipped with, and every
/// rerun overwrites it so a regression shows up as a diff.
const SNAPSHOT: &str = "BENCH_PR8.json";

/// Leaf-scan kernels ablated single-threaded, snapshot key per mode.
const KERNELS: &[(LeafScan, &str)] = &[
    (LeafScan::Scalar, "scalar"),
    (LeafScan::Columnar, "columnar"),
    (LeafScan::EarlyAbandon, "early_abandon"),
];

pub fn run(scale: &Scale) -> Result<(), String> {
    let n = if scale.paper { 100_000 } else { 10_000 };
    let batch = if scale.paper { 2_000 } else { 800 };
    let points = uniform_data(n);
    let queries: Vec<Vec<f32>> = sample_queries(&points, batch, QUERY_SEED)
        .into_iter()
        .map(|p| p.coords().to_vec())
        .collect();

    let mut report = Report::new(
        "throughput",
        format!("batch k-NN throughput vs threads (uniform, n = {n}, batch = {batch})").as_str(),
    );
    report.header([
        "tree", "T=1 q/s", "T=2 q/s", "T=4 q/s", "T=8 q/s", "x2", "x4", "x8",
    ]);
    let mut ablation = Report::new(
        "kernel-ablation",
        format!("single-thread leaf-scan kernel ablation (uniform, n = {n}, batch = {batch})")
            .as_str(),
    );
    ablation.header([
        "tree",
        "scalar q/s",
        "columnar q/s",
        "abandon q/s",
        "col/scal",
        "ab/scal",
    ]);
    let mut snapshot = Vec::new();
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries_at(serving_pool_pages(&index));

        let mut qps = Vec::with_capacity(THREADS.len());
        let mut baseline_results = None;
        for &t in THREADS {
            // One untimed warm-up pass fills the pool so every thread
            // count sees the same cache state.
            let warm =
                sr_exec::run_knn_batch(index.index(), &queries, K, t).map_err(|e| e.to_string())?;
            let t0 = Instant::now();
            let out =
                sr_exec::run_knn_batch(index.index(), &queries, K, t).map_err(|e| e.to_string())?;
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&warm);
            match &baseline_results {
                None => baseline_results = Some(out.results),
                Some(base) => {
                    if *base != out.results {
                        return Err(format!(
                            "{}: results at T={t} diverged from T=1",
                            kind.label()
                        ));
                    }
                }
            }
            qps.push(queries.len() as f64 / secs);
        }

        let kernels = kernel_ablation(&index, &queries, kind.label())?;
        ablation.row([
            kind.label().to_string(),
            f(kernels[0]),
            f(kernels[1]),
            f(kernels[2]),
            f(kernels[1] / kernels[0]),
            f(kernels[2] / kernels[0]),
        ]);

        let base = qps.first().copied().unwrap_or(1.0);
        report.row([
            kind.label().to_string(),
            f(qps[0]),
            f(qps[1]),
            f(qps[2]),
            f(qps[3]),
            f(qps[1] / base),
            f(qps[2] / base),
            f(qps[3] / base),
        ]);
        snapshot.push((kind.label().to_string(), qps, kernels));
    }
    write_snapshot(n, batch, &snapshot)?;
    report.emit()?;
    ablation.emit()
}

/// Time one single-threaded pass of the whole batch per leaf-scan
/// kernel, asserting every mode returns bit-identical neighbors. The
/// default `knn_with` path (what the threads sweep above measures) uses
/// the columnar kernel, so this is the ablation isolating kernel cost
/// from traversal cost.
fn kernel_ablation(
    index: &AnyIndex,
    queries: &[Vec<f32>],
    label: &str,
) -> Result<Vec<f64>, String> {
    let ix = index.index();
    let mut qps = Vec::with_capacity(KERNELS.len());
    let mut baseline: Option<Vec<Vec<(u64, u64)>>> = None;
    for &(scan, key) in KERNELS {
        // Untimed warm-up pass so every mode sees the same cache state.
        for q in queries {
            let spec = sr_query::QuerySpec::knn(q, K).with_scan(scan);
            let warm = ix
                .query(&spec, &sr_obs::Noop)
                .map_err(|e| e.to_string())?
                .rows;
            std::hint::black_box(&warm);
        }
        let t0 = Instant::now();
        let mut results = Vec::with_capacity(queries.len());
        for q in queries {
            let spec = sr_query::QuerySpec::knn(q, K).with_scan(scan);
            let out = ix
                .query(&spec, &sr_obs::Noop)
                .map_err(|e| e.to_string())?
                .rows;
            results.push(
                out.iter()
                    .map(|n| (n.dist2.to_bits(), n.data))
                    .collect::<Vec<_>>(),
            );
        }
        let secs = t0.elapsed().as_secs_f64();
        match &baseline {
            None => baseline = Some(results),
            Some(base) => {
                if *base != results {
                    return Err(format!("{label}: {key} kernel diverged from scalar"));
                }
            }
        }
        qps.push(queries.len() as f64 / secs);
    }
    Ok(qps)
}

/// Write the machine-readable `BENCH_PR8.json` snapshot next to the
/// working directory (the workspace root under `cargo run`).
fn write_snapshot(
    n: usize,
    batch: usize,
    trees: &[(String, Vec<f64>, Vec<f64>)],
) -> Result<(), String> {
    let fmt_list = |vals: &[f64]| {
        vals.iter()
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  {},\n", sr_obs::schema_version_field()));
    s.push_str("  \"pr\": 8,\n  \"experiment\": \"throughput\",\n");
    s.push_str(&format!("  \"n\": {n},\n  \"batch\": {batch},\n"));
    s.push_str(&format!(
        "  \"threads\": [{}],\n  \"trees\": {{\n",
        THREADS
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (i, (label, qps, kernels)) in trees.iter().enumerate() {
        let base = qps.first().copied().unwrap_or(1.0);
        let speedups: Vec<f64> = qps.iter().map(|q| q / base).collect();
        let kernel_fields = KERNELS
            .iter()
            .zip(kernels.iter())
            .map(|((_, key), v)| format!("\"{key}\": {v:.1}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    \"{label}\": {{\"qps\": [{}], \"speedup\": [{}], \"kernels\": {{{kernel_fields}}}}}{}\n",
            fmt_list(qps),
            fmt_list(&speedups),
            if i + 1 < trees.len() { "," } else { "" }
        ));
    }
    s.push_str("  }\n}\n");
    std::fs::write(SNAPSHOT, s).map_err(|e| format!("write {SNAPSHOT}: {e}"))
}
