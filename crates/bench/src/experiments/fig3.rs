//! Figure 3: CPU time and disk reads per 21-NN query — K-D-B-tree,
//! R*-tree, SS-tree, VAMSplit R-tree on the uniform data set.

use crate::experiments::{query_perf_table, uniform_data};
use crate::index::TreeKind;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    query_perf_table(
        "fig3",
        "21-NN query cost vs size (uniform data set)",
        &[TreeKind::Kdb, TreeKind::Rstar, TreeKind::Ss, TreeKind::Vam],
        &scale.uniform_sizes(),
        uniform_data,
        scale,
    )
}
