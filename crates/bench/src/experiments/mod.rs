//! One module per table/figure of the paper. Each exposes
//! `run(&Scale) -> Result<(), String>` and prints the rows the paper
//! plots, plus a CSV copy.

pub mod ablation;
pub mod bulkload;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig9;
pub mod obs;
pub mod serve_load;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod throughput;

use sr_dataset::{real_sim, sample_queries, uniform};
use sr_geometry::Point;

use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

/// Dimensionality of the paper's §3/§5 size-sweep experiments.
pub const DIM: usize = 16;

/// Deterministic seeds, fixed so every experiment is reproducible.
pub const DATA_SEED: u64 = 0xDA7A;
/// Seed for query sampling.
pub const QUERY_SEED: u64 = 0x9E37;

/// The uniform data set at a given size.
pub fn uniform_data(n: usize) -> Vec<Point> {
    uniform(n, DIM, DATA_SEED)
}

/// The simulated real data set at a given size.
pub fn real_data(n: usize) -> Vec<Point> {
    real_sim(n, DIM, DATA_SEED)
}

/// Shared shape of Figures 3, 4, 10, 11: query CPU time and disk reads
/// vs data-set size for a set of structures.
pub fn query_perf_table(
    id: &str,
    title: &str,
    kinds: &[TreeKind],
    sizes: &[usize],
    gen: impl Fn(usize) -> Vec<Point>,
    scale: &Scale,
) -> Result<(), String> {
    let mut report = Report::new(id, title);
    let mut header = vec!["size".to_string()];
    for k in kinds {
        header.push(format!("{} cpu_ms", k.label()));
        header.push(format!("{} reads", k.label()));
    }
    report.header(header);
    for &n in sizes {
        let points = gen(n);
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);
        let mut row = vec![n.to_string()];
        for &kind in kinds {
            let index = AnyIndex::build(kind, &points);
            let cost = measure_knn(&index, &queries, K);
            row.push(f(cost.cpu_ms));
            row.push(f(cost.reads));
        }
        report.row(row);
    }
    report.emit()
}
