//! Figure 12: average volume and diameter of the leaf-level regions of
//! R*-trees, SS-trees, and SR-trees (uniform data set). For the SR-tree
//! the sphere and rectangle are measured separately — each is an upper
//! bound on the true intersection region, exactly as the paper reports.

use sr_geometry::Point;

use crate::experiments::fig5::mean;
use crate::experiments::uniform_data;
use crate::index::{build_rstar, build_sr, build_ss};
use crate::measure::Scale;
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    region_table(
        "fig12",
        "leaf-region volume & diameter incl. SR-tree (uniform)",
        &scale.uniform_sizes(),
        uniform_data,
    )
}

pub(crate) fn region_table(
    id: &str,
    title: &str,
    sizes: &[usize],
    gen: impl Fn(usize) -> Vec<Point>,
) -> Result<(), String> {
    let mut report = Report::new(id, title);
    report.header([
        "size",
        "R* vol",
        "R* diam",
        "SS vol",
        "SS diam",
        "SR rect vol",
        "SR sphere diam",
    ]);
    for &n in sizes {
        let points = gen(n);
        let rs = build_rstar(&points);
        let rects = rs.leaf_regions().map_err(|e| e.to_string())?;
        let rs_vol = mean(rects.iter().map(|r| r.volume()));
        let rs_diam = mean(rects.iter().map(|r| r.diagonal()));

        let ss = build_ss(&points);
        let spheres = ss.leaf_regions().map_err(|e| e.to_string())?;
        let ss_vol = mean(spheres.iter().map(|s| s.volume()));
        let ss_diam = mean(spheres.iter().map(|s| s.diameter()));

        let sr = build_sr(&points);
        let pairs = sr.leaf_regions().map_err(|e| e.to_string())?;
        // Volume upper bound: the bounding rectangle; diameter upper
        // bound: the bounding sphere (the paper's Figure 12/13 markers).
        let sr_vol = mean(pairs.iter().map(|(_, r)| r.volume()));
        let sr_diam = mean(pairs.iter().map(|(s, _)| s.diameter()));

        report.row([
            n.to_string(),
            f(rs_vol),
            f(rs_diam),
            f(ss_vol),
            f(ss_diam),
            f(sr_vol),
            f(sr_diam),
        ]);
    }
    report.emit()
}
