//! Figure 4: CPU time and disk reads per 21-NN query — K-D-B-tree,
//! R*-tree, SS-tree, VAMSplit R-tree on the real data set.

use crate::experiments::{query_perf_table, real_data};
use crate::index::TreeKind;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    query_perf_table(
        "fig4",
        "21-NN query cost vs size (real data set)",
        &[TreeKind::Kdb, TreeKind::Rstar, TreeKind::Ss, TreeKind::Vam],
        &scale.real_sizes(),
        real_data,
        scale,
    )
}
