//! Ablation study (beyond the paper's figures): how much does each of
//! the SR-tree's two design choices contribute?
//!
//! 1. **Query bound** (§4.4): prune with `max(d_s, d_r)` vs each shape
//!    alone, on the same tree.
//! 2. **Radius rule** (§4.2): build with `min(d_s, d_r)` vs the SS-tree's
//!    `d_s`-only radius.
//! 3. **Forced reinsertion**: the SS-tree-style aggressive reinsertion
//!    vs always splitting.

use sr_dataset::sample_queries;
use sr_obs::{Counter, StatsRecorder};
use sr_pager::PageFile;
use sr_tree::{DistanceBound, RadiusRule, SrOptions, SrTree};

use crate::experiments::{real_data, QUERY_SEED};
use crate::index::{DATA_AREA, PAGE_SIZE};
use crate::measure::{Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let n = if scale.paper { 20_000 } else { 10_000 };
    let points = real_data(n);
    let queries = sample_queries(&points, scale.trials(), QUERY_SEED);

    let build = |options: SrOptions| -> Result<SrTree, String> {
        let mut t = SrTree::create_with_options(
            PageFile::create_in_memory(PAGE_SIZE).expect("in-memory page file"),
            points[0].dim(),
            DATA_AREA,
            options,
        )
        .map_err(|e| e.to_string())?;
        for (i, p) in points.iter().enumerate() {
            t.insert(p.clone(), i as u64).map_err(|e| e.to_string())?;
        }
        Ok(t)
    };
    // Per-query means: tree reads plus the sr-obs prune breakdown, which
    // quantifies §4.4 directly — how many of the prunes each bounding
    // shape would have delivered on its own.
    let measure = |t: &SrTree, bound: DistanceBound| -> Result<[f64; 4], String> {
        t.pager().set_cache_capacity(0).map_err(|e| e.to_string())?;
        t.pager().reset_stats();
        let rec = StatsRecorder::new();
        for q in &queries {
            t.knn_bounded_with(q.coords(), K, bound, &rec)
                .map_err(|e| e.to_string())?;
        }
        let m = rec.snapshot();
        let n = queries.len() as f64;
        Ok([
            t.pager().stats().tree_reads() as f64 / n,
            m.counter(Counter::PruneEvents) as f64 / n,
            m.counter(Counter::PruneSphere) as f64 / n,
            m.counter(Counter::PruneRect) as f64 / n,
        ])
    };

    let mut report = Report::new(
        "ablation",
        format!("SR-tree design-choice ablation (real data set, n = {n})").as_str(),
    );
    report.header([
        "variant",
        "reads/query",
        "prunes/query",
        "by sphere",
        "by rect",
    ]);
    let mut add_row = |label: &str, cost: [f64; 4]| {
        report.row([
            label.to_string(),
            f(cost[0]),
            f(cost[1]),
            f(cost[2]),
            f(cost[3]),
        ]);
    };

    let full = build(SrOptions::default())?;
    add_row("SR-tree (paper)", measure(&full, DistanceBound::Both)?);
    add_row(
        "  query bound: sphere only",
        measure(&full, DistanceBound::SphereOnly)?,
    );
    add_row(
        "  query bound: rect only",
        measure(&full, DistanceBound::RectOnly)?,
    );

    let no_rule = build(SrOptions {
        radius_rule: RadiusRule::SphereOnly,
        ..Default::default()
    })?;
    add_row(
        "  radius rule: d_s only (SS radius)",
        measure(&no_rule, DistanceBound::Both)?,
    );

    let no_reinsert = build(SrOptions {
        disable_reinsertion: true,
        ..Default::default()
    })?;
    add_row(
        "  forced reinsertion disabled",
        measure(&no_reinsert, DistanceBound::Both)?,
    );

    report.emit()
}
