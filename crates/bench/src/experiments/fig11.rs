//! Figure 11: SR-tree query performance on the real data set.

use crate::experiments::{query_perf_table, real_data};
use crate::index::TreeKind;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    query_perf_table(
        "fig11",
        "21-NN query cost vs size incl. SR-tree (real data set)",
        &[TreeKind::Rstar, TreeKind::Ss, TreeKind::Vam, TreeKind::Sr],
        &scale.real_sizes(),
        real_data,
        scale,
    )
}
