//! Figure 17: minimum, average, and maximum pairwise distance within the
//! uniform data set vs dimensionality — the concentration-of-distances
//! effect that makes high-dimensional uniform data degenerate.

use sr_dataset::uniform;
use sr_query::pairwise_distance_stats;

use crate::experiments::DATA_SEED;
use crate::measure::Scale;
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig17",
        "pairwise distances in the uniform data set vs dimensionality",
    );
    report.header(["dims", "min", "avg", "max", "min/max %"]);
    let n = scale.dim_sweep_size();
    // O(n^2) scan; subsample like the paper's trend requires.
    let cap = if scale.paper { 3000 } else { 1500 };
    for &d in &scale.dims() {
        let points = uniform(n, d, DATA_SEED);
        let refs: Vec<&[f32]> = points.iter().map(|p| p.coords()).collect();
        let stats = pairwise_distance_stats(&refs, cap);
        report.row([
            d.to_string(),
            f(stats.min),
            f(stats.avg),
            f(stats.max),
            f(100.0 * stats.min / stats.max),
        ]);
    }
    report.emit()
}
