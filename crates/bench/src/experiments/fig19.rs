//! Figure 19: SR-tree vs SS-tree query cost with varying the number of
//! clusters (the uniformity sweep) at 16 dimensions: 1 cluster = one
//! sphere, #clusters = #points ≈ uniform.

use sr_dataset::{cluster, sample_queries, uniform, ClusterSpec};

use crate::experiments::{DATA_SEED, DIM, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig19",
        "21-NN cost vs number of clusters (16-d, fixed total points)",
    );
    report.header(["clusters", "SS cpu_ms", "SS reads", "SR cpu_ms", "SR reads"]);
    let total = scale.cluster_total();
    for &c in &scale.cluster_counts() {
        let points = if c >= total {
            // one point per cluster degenerates to uniform data
            uniform(total, DIM, DATA_SEED)
        } else {
            cluster(
                ClusterSpec {
                    clusters: c,
                    points_per_cluster: total / c,
                    max_radius: 0.1,
                },
                DIM,
                DATA_SEED,
            )
        };
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);
        let mut row = vec![c.to_string()];
        for kind in [TreeKind::Ss, TreeKind::Sr] {
            let index = AnyIndex::build(kind, &points);
            let cost = measure_knn(&index, &queries, K);
            row.push(f(cost.cpu_ms));
            row.push(f(cost.reads));
        }
        report.row(row);
    }
    report.emit()
}
