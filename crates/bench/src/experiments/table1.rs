//! Table 1: the maximum number of entries in a node and in a leaf, per
//! structure, derived from the 8 KiB page size.

use sr_kdbtree::KdbParams;
use sr_rstar::RstarParams;
use sr_sstree::SsParams;
use sr_tree::SrParams;
use sr_vamsplit::VamParams;

use crate::index::{DATA_AREA, PAGE_SIZE};
use crate::measure::Scale;
use crate::report::Report;

/// Usable payload per page (page header is 5 bytes).
fn page_capacity() -> usize {
    PAGE_SIZE - 5
}

pub fn run(_scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "table1",
        "maximum entries per node / leaf (8 KiB pages, 512 B data areas)",
    );
    report.header(["dims", "index", "node", "leaf"]);
    for dim in [8usize, 16, 32, 64] {
        let cap = page_capacity();
        let kdb = KdbParams::derive(cap, dim, DATA_AREA);
        report.row([
            dim.to_string(),
            "K-D-B-tree".into(),
            kdb.max_node.to_string(),
            kdb.max_leaf.to_string(),
        ]);
        let rs = RstarParams::derive(cap, dim, DATA_AREA);
        report.row([
            dim.to_string(),
            "R*-tree".into(),
            rs.max_node.to_string(),
            rs.max_leaf.to_string(),
        ]);
        let vam = VamParams::derive(cap, dim, DATA_AREA);
        report.row([
            dim.to_string(),
            "VAMSplit R-tree".into(),
            vam.max_node.to_string(),
            vam.max_leaf.to_string(),
        ]);
        let ss = SsParams::derive(cap, dim, DATA_AREA);
        report.row([
            dim.to_string(),
            "SS-tree".into(),
            ss.max_node.to_string(),
            ss.max_leaf.to_string(),
        ]);
        let sr = SrParams::derive(cap, dim, DATA_AREA);
        report.row([
            dim.to_string(),
            "SR-tree".into(),
            sr.max_node.to_string(),
            sr.max_leaf.to_string(),
        ]);
    }
    report.emit()
}
