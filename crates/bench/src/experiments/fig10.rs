//! Figure 10: SR-tree query performance on the uniform data set,
//! compared with the R*-tree, SS-tree, and VAMSplit R-tree.

use crate::experiments::{query_perf_table, uniform_data};
use crate::index::TreeKind;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    query_perf_table(
        "fig10",
        "21-NN query cost vs size incl. SR-tree (uniform data set)",
        &[TreeKind::Rstar, TreeKind::Ss, TreeKind::Vam, TreeKind::Sr],
        &scale.uniform_sizes(),
        uniform_data,
        scale,
    )
}
