//! Figure 13: leaf-region volume & diameter for R*-, SS-, and SR-trees
//! on the real data set.

use crate::experiments::fig12::region_table;
use crate::experiments::real_data;
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    region_table(
        "fig13",
        "leaf-region volume & diameter incl. SR-tree (real data set)",
        &scale.real_sizes(),
        real_data,
    )
}
