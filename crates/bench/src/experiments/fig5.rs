//! Figure 5: average volume and average diameter of the leaf-level
//! regions of SS-trees and R*-trees (uniform data set). This is the
//! paper's §3 motivation: rectangles are small but long-diagonal,
//! spheres are short-diameter but huge.

use crate::experiments::uniform_data;
use crate::index::{build_rstar, build_ss};
use crate::measure::Scale;
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig5",
        "avg leaf-region volume & diameter: SS-tree vs R*-tree (uniform)",
    );
    report.header([
        "size",
        "SS volume",
        "SS diameter",
        "R* volume",
        "R* diameter",
    ]);
    for &n in &scale.uniform_sizes() {
        let points = uniform_data(n);

        let ss = build_ss(&points);
        let spheres = ss.leaf_regions().map_err(|e| e.to_string())?;
        let ss_vol = mean(spheres.iter().map(|s| s.volume()));
        let ss_diam = mean(spheres.iter().map(|s| s.diameter()));

        let rs = build_rstar(&points);
        let rects = rs.leaf_regions().map_err(|e| e.to_string())?;
        let rs_vol = mean(rects.iter().map(|r| r.volume()));
        let rs_diam = mean(rects.iter().map(|r| r.diagonal()));

        report.row([n.to_string(), f(ss_vol), f(ss_diam), f(rs_vol), f(rs_diam)]);
    }
    report.emit()
}

pub(crate) fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0u64;
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}
