//! Observability breakdown (beyond the paper's figures): the sr-obs
//! per-query counters for every structure on the real data set — node
//! expansions, prune events split by which bounding shape delivered them
//! (§4.4), and the buffer-pool hit rate under a modest warm pool.
//!
//! The prune attribution credits every shape whose bound alone would
//! have pruned, so for the SR-tree `prunes >= max(by sphere, by rect)`
//! and the two shape columns show how often each one is the winner.

use sr_dataset::sample_queries;

use crate::experiments::{real_data, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, measure_knn_at_capacity, Scale, K};
use crate::report::{f, Report};

/// Warm buffer pool used for the hit-rate column, in pages.
const WARM_POOL: usize = 128;

pub fn run(scale: &Scale) -> Result<(), String> {
    let n = if scale.paper { 20_000 } else { 10_000 };
    let points = real_data(n);
    let queries = sample_queries(&points, scale.trials(), QUERY_SEED);

    let mut report = Report::new(
        "obs",
        format!("per-query observability counters (real data set, n = {n})").as_str(),
    );
    report.header([
        "tree",
        "reads/query",
        "expansions",
        "prunes",
        "by sphere",
        "by rect",
        "warm hit%",
    ]);
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        let cold = measure_knn(&index, &queries, K);
        let warm = measure_knn_at_capacity(&index, &queries, K, WARM_POOL);
        report.row([
            kind.label().to_string(),
            f(cold.reads),
            f(cold.expansions),
            f(cold.prune_events),
            f(cold.prune_sphere),
            f(cold.prune_rect),
            f(warm.cache_hit_rate * 100.0),
        ]);
    }
    report.emit()
}
