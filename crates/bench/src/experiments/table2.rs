//! Table 2: tree heights for the uniform data set.

use crate::experiments::uniform_data;
use crate::index::{AnyIndex, TreeKind};
use crate::measure::Scale;
use crate::report::Report;

pub fn run(scale: &Scale) -> Result<(), String> {
    heights_table(
        "table2",
        "tree heights (uniform data set)",
        scale.uniform_sizes(),
        uniform_data,
    )
}

pub(crate) fn heights_table(
    id: &str,
    title: &str,
    sizes: Vec<usize>,
    gen: impl Fn(usize) -> Vec<sr_geometry::Point>,
) -> Result<(), String> {
    let mut report = Report::new(id, title);
    let mut header = vec!["index".to_string()];
    for &n in &sizes {
        header.push(format!("{}k", n / 1000));
    }
    report.header(header);
    // Build every structure at every size; heights are cheap to record
    // alongside.
    for &kind in TreeKind::ALL {
        let mut row = vec![kind.label().to_string()];
        for &n in &sizes {
            let points = gen(n);
            let index = AnyIndex::build(kind, &points);
            row.push(index.height().to_string());
        }
        report.row(row);
    }
    report.emit()
}
