//! Table 3: tree heights for the real (simulated color-histogram) data
//! set.

use crate::experiments::{real_data, table2::heights_table};
use crate::measure::Scale;

pub fn run(scale: &Scale) -> Result<(), String> {
    heights_table(
        "table3",
        "tree heights (real data set)",
        scale.real_sizes(),
        real_data,
    )
}
