//! Figure 6: the average volume of SS-tree leaf regions when measured by
//! their bounding spheres vs by their (hypothetical) bounding
//! rectangles, with the R*-tree leaf rectangles for comparison — the
//! measurement that motivated adding rectangles to the SS-tree.

use crate::experiments::fig5::mean;
use crate::experiments::uniform_data;
use crate::index::{build_rstar, build_ss};
use crate::measure::Scale;
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "fig6",
        "SS-tree leaf volume: bounding spheres vs bounding rectangles (uniform)",
    );
    report.header(["size", "SS sphere vol", "SS rect vol", "R* rect vol"]);
    for &n in &scale.uniform_sizes() {
        let points = uniform_data(n);
        let ss = build_ss(&points);
        let sphere_vol = mean(
            ss.leaf_regions()
                .map_err(|e| e.to_string())?
                .iter()
                .map(|s| s.volume()),
        );
        let rect_vol = mean(
            ss.leaf_bounding_rects()
                .map_err(|e| e.to_string())?
                .iter()
                .map(|r| r.volume()),
        );
        let rs = build_rstar(&points);
        let rs_vol = mean(
            rs.leaf_regions()
                .map_err(|e| e.to_string())?
                .iter()
                .map(|r| r.volume()),
        );
        report.row([n.to_string(), f(sphere_vol), f(rect_vol), f(rs_vol)]);
    }
    report.emit()
}
