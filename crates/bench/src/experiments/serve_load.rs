//! Service-level throughput (beyond the paper's figures): the same
//! k-NN batch the `throughput` experiment fans out in-process, driven
//! through the `sr-serve` TCP loop over loopback by C ∈ {1, 2, 4, 8}
//! pipelining clients.
//!
//! The in-process `sr-exec` number is the ceiling; the gap to it is the
//! whole serving stack — framing, checksums, socket hops, per-batch
//! lock acquisition — which is exactly what the ROADMAP's serving
//! scenario pays on top of the query engine. Every response is checked
//! against the in-process answers, so the table can't trade
//! correctness for speed.

use std::time::Instant;

use sr_dataset::sample_queries;
use sr_serve::{Client, ServeConfig, Server};
use sr_wire::{Request, Response};

use crate::experiments::{uniform_data, QUERY_SEED};
use crate::index::{build_sr, AnyIndex, TreeKind};
use crate::measure::{Scale, K};
use crate::report::{f, Report};

/// Concurrent client connections swept, first entry is the baseline.
pub const CLIENTS: &[usize] = &[1, 2, 4, 8];

/// Adjacent k-NN frames written per pipeline burst — the shape the
/// server coalesces into one `sr-exec` batch.
const PIPELINE: usize = 64;

pub fn run(scale: &Scale) -> Result<(), String> {
    let n = if scale.paper { 100_000 } else { 10_000 };
    let batch = if scale.paper { 2_000 } else { 800 };
    let points = uniform_data(n);
    let queries: Vec<Vec<f32>> = sample_queries(&points, batch, QUERY_SEED)
        .into_iter()
        .map(|p| p.coords().to_vec())
        .collect();

    // In-process ceiling: the same batch through sr-exec directly, on a
    // warm pool sized to hold the whole index.
    let index = AnyIndex::build(TreeKind::Sr, &points);
    let pool = usize::try_from(index.pager().num_pages()).unwrap_or(usize::MAX);
    index.reset_for_queries_at(pool);
    let warm = sr_exec::run_knn_batch(index.index(), &queries, K, 4).map_err(|e| e.to_string())?;
    std::hint::black_box(&warm);
    let t0 = Instant::now();
    let inproc =
        sr_exec::run_knn_batch(index.index(), &queries, K, 4).map_err(|e| e.to_string())?;
    let inproc_qps = queries.len() as f64 / t0.elapsed().as_secs_f64();
    let expected: Vec<Vec<u64>> = inproc
        .results
        .iter()
        .map(|rows| rows.iter().map(|n| n.data).collect())
        .collect();

    // The served copy of the same index, warm for the same reason.
    let tree = build_sr(&points);
    tree.pager()
        .set_cache_capacity(pool)
        .map_err(|e| e.to_string())?;
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        max_conns: CLIENTS.iter().copied().max().unwrap_or(8) * 2,
        ..ServeConfig::default()
    };
    let server = Server::start(Box::new(tree), cfg).map_err(|e| e.to_string())?;
    let addr = server.local_addr().to_string();

    let mut report = Report::new(
        "serve-load",
        format!("served k-NN throughput vs clients (SR-tree, uniform, n = {n}, batch = {batch})")
            .as_str(),
    );
    report.header(["clients", "q/s", "speedup", "of in-proc"]);

    let mut qps = Vec::with_capacity(CLIENTS.len());
    for &c in CLIENTS {
        // One untimed pass per sweep point warms the server's pool and
        // the connections' TCP state out of the measurement.
        for timed in [false, true] {
            let t0 = Instant::now();
            std::thread::scope(|scope| -> Result<(), String> {
                let mut handles = Vec::new();
                for (shard, chunk) in queries.chunks(queries.len().div_ceil(c)).enumerate() {
                    let addr = addr.clone();
                    let expected = &expected;
                    let base = shard * queries.len().div_ceil(c);
                    handles.push(scope.spawn(move || -> Result<(), String> {
                        let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
                        for (off, burst) in chunk.chunks(PIPELINE).enumerate() {
                            let reqs: Vec<Request> = burst
                                .iter()
                                .map(|q| Request::Knn {
                                    query: q.clone(),
                                    k: K as u32,
                                })
                                .collect();
                            let resps = client.pipeline(&reqs).map_err(|e| e.to_string())?;
                            for (i, resp) in resps.iter().enumerate() {
                                let qi = base + off * PIPELINE + i;
                                let Response::Rows(rows) = resp else {
                                    return Err(format!("query {qi}: non-rows response"));
                                };
                                let got: Vec<u64> = rows.iter().map(|r| r.data).collect();
                                if expected.get(qi) != Some(&got) {
                                    return Err(format!("query {qi}: served answer diverged"));
                                }
                            }
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join()
                        .map_err(|_| "client thread panicked".to_string())??;
                }
                Ok(())
            })?;
            if timed {
                qps.push(queries.len() as f64 / t0.elapsed().as_secs_f64());
            }
        }
    }

    server.stop();
    server.wait().map_err(|e| e.to_string())?;

    let base = qps.first().copied().unwrap_or(1.0);
    for (i, &c) in CLIENTS.iter().enumerate() {
        report.row([
            c.to_string(),
            f(qps[i]),
            f(qps[i] / base),
            f(qps[i] / inproc_qps),
        ]);
    }
    report.emit()
}
