//! Figure 15: SR-tree vs SS-tree query cost with varying dimensionality
//! on the uniform data set (fixed size).

use sr_dataset::{sample_queries, uniform};
use sr_geometry::Point;

use crate::experiments::{DATA_SEED, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    dim_sweep(
        "fig15",
        "21-NN cost vs dimensionality (uniform data set)",
        scale,
        |d, n| uniform(n, d, DATA_SEED),
    )
}

pub(crate) fn dim_sweep(
    id: &str,
    title: &str,
    scale: &Scale,
    gen: impl Fn(usize, usize) -> Vec<Point>,
) -> Result<(), String> {
    let mut report = Report::new(id, title);
    report.header(["dims", "SS cpu_ms", "SS reads", "SR cpu_ms", "SR reads"]);
    let n = scale.dim_sweep_size();
    for &d in &scale.dims() {
        let points = gen(d, n);
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);
        let mut row = vec![d.to_string()];
        for kind in [TreeKind::Ss, TreeKind::Sr] {
            let index = AnyIndex::build(kind, &points);
            let cost = measure_knn(&index, &queries, K);
            row.push(f(cost.cpu_ms));
            row.push(f(cost.reads));
        }
        report.row(row);
    }
    report.emit()
}
