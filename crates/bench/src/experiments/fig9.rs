//! Figure 9: insertion cost (CPU time and disk accesses per insertion)
//! of R*-trees, SS-trees, and SR-trees on the uniform data set.

use crate::experiments::uniform_data;
use crate::index::TreeKind;
use crate::measure::{measure_build, Scale};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new("fig9", "insertion cost per point (uniform data set)");
    report.header([
        "size",
        "R* cpu_ms",
        "R* accesses",
        "SS cpu_ms",
        "SS accesses",
        "SR cpu_ms",
        "SR accesses",
    ]);
    for &n in &scale.uniform_sizes() {
        let points = uniform_data(n);
        let mut row = vec![n.to_string()];
        for kind in [TreeKind::Rstar, TreeKind::Ss, TreeKind::Sr] {
            let (_, cost) = measure_build(kind, &points);
            row.push(f(cost.cpu_ms));
            row.push(f(cost.accesses));
        }
        report.row(row);
    }
    report.emit()
}
