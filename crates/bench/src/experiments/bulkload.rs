//! Extension experiment (beyond the paper): the bulk-loaded SR-tree vs
//! the incrementally built SR-tree and the static VAMSplit R-tree —
//! does static packing close the VAMSplit gap on uniform data while
//! keeping the SR-tree's real-data advantage?

use sr_dataset::sample_queries;
use sr_pager::PageFile;
use sr_tree::SrTree;

use crate::experiments::{real_data, uniform_data, QUERY_SEED};
use crate::index::{AnyIndex, TreeKind, DATA_AREA, PAGE_SIZE};
use crate::measure::{measure_knn, Scale, K};
use crate::report::{f, Report};

pub fn run(scale: &Scale) -> Result<(), String> {
    let mut report = Report::new(
        "bulkload",
        "bulk-loaded SR-tree vs dynamic SR-tree vs VAMSplit R-tree (reads/query)",
    );
    report.header(["data", "size", "SR dynamic", "SR bulk", "VAMSplit"]);
    let n_uniform = if scale.paper { 100_000 } else { 20_000 };
    let n_real = if scale.paper { 20_000 } else { 10_000 };
    for (label, points) in [
        ("uniform", uniform_data(n_uniform)),
        ("real", real_data(n_real)),
    ] {
        let queries = sample_queries(&points, scale.trials(), QUERY_SEED);

        let dynamic = AnyIndex::build(TreeKind::Sr, &points);
        let dyn_cost = measure_knn(&dynamic, &queries, K);

        let mut bulk = SrTree::create_from(
            PageFile::create_in_memory(PAGE_SIZE).expect("in-memory page file"),
            points[0].dim(),
            DATA_AREA,
        )
        .map_err(|e| e.to_string())?;
        bulk.bulk_load(
            points
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i as u64))
                .collect(),
        )
        .map_err(|e| e.to_string())?;
        let bulk_idx = AnyIndex::from_sr(bulk);
        let bulk_cost = measure_knn(&bulk_idx, &queries, K);

        let vam = AnyIndex::build(TreeKind::Vam, &points);
        let vam_cost = measure_knn(&vam, &queries, K);

        report.row([
            label.to_string(),
            points.len().to_string(),
            f(dyn_cost.reads),
            f(bulk_cost.reads),
            f(vam_cost.reads),
        ]);
    }
    report.emit()
}
