//! Micro-bench: range-query latency per structure on clustered data
//! (complements the k-NN bench). Plain timing harness; see `insert.rs`
//! for the rationale.

use std::time::Instant;

use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::{cluster, sample_queries, ClusterSpec};

fn main() {
    let points = cluster(
        ClusterSpec {
            clusters: 50,
            points_per_cluster: 200,
            max_radius: 0.05,
        },
        16,
        42,
    );
    let queries = sample_queries(&points, 64, 7);
    println!(
        "range_r0.05_10k_16d_cluster (mean over {} queries x 5 rounds)",
        queries.len()
    );
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries();
        for q in &queries {
            std::hint::black_box(index.range(q.coords(), 0.05));
        }
        let t = Instant::now();
        let rounds = 5;
        for _ in 0..rounds {
            for q in &queries {
                std::hint::black_box(index.range(q.coords(), 0.05));
            }
        }
        let per_query = t.elapsed().as_secs_f64() / (rounds * queries.len()) as f64;
        println!("  {:<12} {:>10.1} us", kind.label(), per_query * 1e6);
    }
}
