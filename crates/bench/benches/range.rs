//! Criterion micro-bench: range-query latency per structure on
//! clustered data (complements the k-NN bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::{cluster, sample_queries, ClusterSpec};

fn bench_range(c: &mut Criterion) {
    let points = cluster(
        ClusterSpec {
            clusters: 50,
            points_per_cluster: 200,
            max_radius: 0.05,
        },
        16,
        42,
    );
    let queries = sample_queries(&points, 64, 7);
    let mut group = c.benchmark_group("range_r0.05_10k_16d_cluster");
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries();
        let mut qi = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(index.range(q.coords(), 0.05))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range);
criterion_main!(benches);
