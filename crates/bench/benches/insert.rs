//! Micro-bench: insertion throughput per structure (Figure 9's CPU
//! panel). A plain timing harness (`harness = false`): the workspace
//! carries no registry dependencies, so statistical machinery is
//! replaced by warmup + median-of-samples, which is stable enough for
//! the relative comparisons these benches exist for.

use std::time::Instant;

use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::uniform;

fn main() {
    let points = uniform(2_000, 16, 42);
    println!("insert_2k_16d (median of 10 builds)");
    for &kind in TreeKind::ALL {
        // Warmup build.
        std::hint::black_box(AnyIndex::build(kind, &points));
        let mut samples: Vec<f64> = (0..10)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(AnyIndex::build(kind, &points));
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "  {:<12} {:>10.3} ms",
            kind.label(),
            samples[samples.len() / 2] * 1e3
        );
    }
}
