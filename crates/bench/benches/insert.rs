//! Criterion micro-bench: insertion throughput per structure
//! (Figure 9's CPU panel, as a statistically sound micro-benchmark).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::uniform;

fn bench_insert(c: &mut Criterion) {
    let points = uniform(2_000, 16, 42);
    let mut group = c.benchmark_group("insert_2k_16d");
    group.sample_size(10);
    for &kind in TreeKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            b.iter(|| AnyIndex::build(kind, std::hint::black_box(&points)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
