//! Micro-bench: 21-NN query latency per structure on the simulated real
//! data set (Figures 4/11's CPU panels). Plain timing harness; see
//! `insert.rs` for the rationale.

use std::time::Instant;

use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::{real_sim, sample_queries};

fn main() {
    let points = real_sim(10_000, 16, 42);
    let queries = sample_queries(&points, 64, 7);
    println!(
        "knn21_10k_16d_real (mean over {} queries x 5 rounds)",
        queries.len()
    );
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries();
        // Warmup round.
        for q in &queries {
            std::hint::black_box(index.knn(q.coords(), 21));
        }
        let t = Instant::now();
        let rounds = 5;
        for _ in 0..rounds {
            for q in &queries {
                std::hint::black_box(index.knn(q.coords(), 21));
            }
        }
        let per_query = t.elapsed().as_secs_f64() / (rounds * queries.len()) as f64;
        println!("  {:<12} {:>10.1} us", kind.label(), per_query * 1e6);
    }
}
