//! Criterion micro-bench: 21-NN query latency per structure on the
//! simulated real data set (Figures 4/11's CPU panels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{AnyIndex, TreeKind};
use sr_dataset::{real_sim, sample_queries};

fn bench_query(c: &mut Criterion) {
    let points = real_sim(10_000, 16, 42);
    let queries = sample_queries(&points, 64, 7);
    let mut group = c.benchmark_group("knn21_10k_16d_real");
    for &kind in TreeKind::ALL {
        let index = AnyIndex::build(kind, &points);
        index.reset_for_queries();
        let mut qi = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                std::hint::black_box(index.knn(q.coords(), 21))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
