//! Exact linear-scan queries — the ground truth every index is tested
//! against — and the pairwise-distance statistics of Figure 17.

use crate::heap::{CandidateSet, Neighbor};

fn dist2(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x as f64 - y as f64;
        acc += d * d;
    }
    acc
}

/// Exact k-NN by linear scan, sorted by ascending distance (ties broken by
/// payload, matching the tree engines).
pub fn brute_force_knn<'a, I>(points: I, query: &[f32], k: usize) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (&'a [f32], u64)>,
{
    let mut cands = CandidateSet::new(k);
    for (p, id) in points {
        cands.offer(dist2(p, query), id);
    }
    cands.into_sorted()
}

/// Exact range search by linear scan, sorted by ascending distance.
pub fn brute_force_range<'a, I>(points: I, query: &[f32], radius: f64) -> Vec<Neighbor>
where
    I: IntoIterator<Item = (&'a [f32], u64)>,
{
    let r2 = radius * radius;
    let mut out: Vec<Neighbor> = points
        .into_iter()
        .map(|(p, id)| Neighbor {
            dist2: dist2(p, query),
            data: id,
        })
        .filter(|n| n.dist2 <= r2)
        .collect();
    out.sort_by(|a, b| {
        a.dist2
            .partial_cmp(&b.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.data.cmp(&b.data))
    });
    out
}

/// Minimum, average, and maximum pairwise distance within a point set —
/// the quantities of Figure 17, which explain why uniform data becomes
/// useless as a nearest-neighbor benchmark in high dimensions (distances
/// concentrate; min/max → 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceStats {
    /// Smallest pairwise distance.
    pub min: f64,
    /// Mean pairwise distance.
    pub avg: f64,
    /// Largest pairwise distance.
    pub max: f64,
}

/// Compute pairwise distance statistics over `points`, optionally on a
/// subsample: if `points.len() > sample_cap`, only the first `sample_cap`
/// points enter the O(n²) scan (the paper's Figure 17 trend is insensitive
/// to sampling).
///
/// # Panics
/// Panics if fewer than two points are supplied.
pub fn pairwise_distance_stats(points: &[&[f32]], sample_cap: usize) -> DistanceStats {
    let n = points.len().min(sample_cap.max(2));
    // srlint: allow(assert) -- documented `# Panics` contract of a
    // ground-truth statistics helper fed by benchmark configuration.
    assert!(n >= 2, "need at least two points for pairwise distances");
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for (i, a) in points.iter().take(n).enumerate() {
        for b in points.iter().take(n).skip(i + 1) {
            let d = dist2(a, b).sqrt();
            min = min.min(d);
            max = max.max(d);
            sum += d;
            count += 1;
        }
    }
    DistanceStats {
        min,
        avg: sum / count as f64,
        max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_orders_and_truncates() {
        let pts: Vec<Vec<f32>> = vec![vec![0.0], vec![10.0], vec![3.0], vec![-1.0]];
        let refs: Vec<(&[f32], u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_slice(), i as u64))
            .collect();
        let got = brute_force_knn(refs.iter().copied(), &[0.5], 2);
        assert_eq!(got.iter().map(|n| n.data).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn range_includes_boundary() {
        let pts: Vec<Vec<f32>> = vec![vec![0.0], vec![5.0], vec![5.1]];
        let refs: Vec<(&[f32], u64)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_slice(), i as u64))
            .collect();
        let got = brute_force_range(refs.iter().copied(), &[0.0], 5.0);
        assert_eq!(got.iter().map(|n| n.data).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn distance_stats_triangle() {
        // 3-4-5 right triangle
        let a: &[f32] = &[0.0, 0.0];
        let b: &[f32] = &[3.0, 0.0];
        let c: &[f32] = &[3.0, 4.0];
        let s = pairwise_distance_stats(&[a, b, c], 100);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 5.0);
        assert!((s.avg - 4.0).abs() < 1e-12);
    }

    #[test]
    fn distance_stats_respects_sample_cap() {
        let pts: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let refs: Vec<&[f32]> = pts.iter().map(|p| p.as_slice()).collect();
        let s = pairwise_distance_stats(&refs, 10);
        // only points 0..10 scanned, so max distance is 9
        assert_eq!(s.max, 9.0);
    }
}
