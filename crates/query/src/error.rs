//! Typed query errors.

use std::fmt;

/// Error of the [`crate::range`] engine.
///
/// A range query can fail for two reasons: the query itself is invalid
/// (negative or NaN radius — previously an `assert!`, which violated the
/// workspace's no-panic policy for library crates), or the underlying
/// tree failed while fetching nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum QueryError<E> {
    /// The range radius was negative or NaN.
    InvalidRadius(f64),
    /// The underlying tree failed.
    Source(E),
}

impl<E: fmt::Display> fmt::Display for QueryError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidRadius(r) => {
                write!(f, "invalid range radius {r}: must be non-negative")
            }
            QueryError::Source(e) => e.fmt(f),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for QueryError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::InvalidRadius(_) => None,
            QueryError::Source(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e: QueryError<std::io::Error> = QueryError::InvalidRadius(-2.0);
        assert_eq!(
            e.to_string(),
            "invalid range radius -2: must be non-negative"
        );
    }
}
