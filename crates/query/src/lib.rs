//! Query engines for the SR-tree reproduction.
//!
//! All four tree structures in this workspace answer k-nearest-neighbor
//! queries with the *same* algorithm — the depth-first branch-and-bound
//! search of Roussopoulos, Kelley & Vincent (SIGMOD 1995), exactly as the
//! paper states ("the nearest neighbor search ... is performed by applying
//! the algorithm presented in \[14\]", §4.4). What differs between trees is
//! only the *distance from a query point to a region*:
//!
//! * R\*-tree: `MINDIST` to the bounding rectangle;
//! * SS-tree: distance to the bounding sphere surface;
//! * SR-tree: `max` of the two — the better lower bound that is the whole
//!   point of the paper.
//!
//! To keep that distinction in one place per tree, the engine is generic
//! over [`KnnSource`]: a tree exposes its root and a way to *expand* a node
//! into scored child branches or leaf points, and [`knn`] / [`range`] do
//! the rest. Branches carry their bound's provenance ([`RegionBound`]), so
//! the `_with` engine variants (which take any `sr-obs` recorder; the
//! plain forms are `Noop` conveniences) can attribute every prune event to
//! the shape whose bound achieved it — the measurement behind the paper's
//! Figure 8–10 series.
//!
//! [`SpatialIndex`] is the unified, object-safe API all five tree crates
//! implement on top of these engines — the single dispatch surface the
//! CLI, the benchmark harness, and the `sr-exec` batch executor use.
//!
//! [`brute_force_knn`] provides exact linear-scan answers used as ground
//! truth by every correctness test in the workspace.

#![forbid(unsafe_code)]

mod best_first;
mod bruteforce;
mod error;
mod heap;
mod index;
mod knn;
mod leaf_scan;
mod range;

pub use best_first::{knn_best_first, knn_best_first_with};
pub use bruteforce::{brute_force_knn, brute_force_range, pairwise_distance_stats, DistanceStats};
pub use error::QueryError;
pub use heap::{CandidateSet, Neighbor};
pub use index::{IndexError, QueryOutput, QueryShape, QuerySpec, SpatialIndex};
pub use knn::{knn, knn_with, Branch, Expansion, KnnSource, LeafScan, RegionBound};
pub use leaf_scan::scan_leaf_columns;
pub use range::{range, range_with};
