//! The unified index API: one trait all five tree structures implement.
//!
//! Everything downstream of the tree crates — the CLI, the benchmark
//! harness, the batch-query executor — used to dispatch over the concrete
//! tree types with five-arm `match` blocks. [`SpatialIndex`] replaces
//! that: a `Box<dyn SpatialIndex>` (or a generic bound) gives callers the
//! whole read/write surface, and [`IndexError`] folds the per-crate
//! `TreeError` enums into one type they can actually handle.
//!
//! The trait is deliberately object-safe (recorders are passed as
//! `&dyn Recorder`) and its query methods take `&self`: with the sharded
//! pager underneath, a `dyn SpatialIndex + Sync` is what the parallel
//! batch executor in `sr-exec` fans out over.

use std::fmt;

use sr_obs::{Noop, Recorder};
use sr_pager::{IoStats, PageFile, PagerError};

use crate::heap::Neighbor;
use crate::LeafScan;

/// What a query wants back: the `k` nearest neighbors, or every point
/// within a radius. Carried by [`QuerySpec`] so one [`SpatialIndex::query`]
/// entry point serves both shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// The `k` nearest neighbors, ascending by distance.
    Knn {
        /// Number of neighbors requested.
        k: usize,
    },
    /// Every point within `radius`, ascending by distance.
    Range {
        /// Inclusive search radius (must be non-negative and non-NaN).
        radius: f64,
    },
}

/// A fully-specified query: the point, the shape (kNN or range), and the
/// leaf-scan kernel to use. This is the one argument of
/// [`SpatialIndex::query`], replacing the old `knn_with` / `range_with` /
/// `knn_scan_with` method sprawl — callers that used to pick a method now
/// build a value, which is what lets the wire layer, the CLI, and the
/// batch executor share a single dispatch path.
///
/// The query point is borrowed, so building a spec is free: batch drivers
/// can construct one per query without cloning coordinate buffers.
#[derive(Debug, Clone, Copy)]
pub struct QuerySpec<'q> {
    /// The query point.
    pub point: &'q [f32],
    /// What to return: kNN or range.
    pub shape: QueryShape,
    /// Leaf-scan kernel (the columnar/early-abandon ablation knob).
    /// Ignored by indexes without a paged columnar leaf path.
    pub scan: LeafScan,
}

impl<'q> QuerySpec<'q> {
    /// A k-nearest-neighbor spec with the default leaf-scan kernel.
    pub fn knn(point: &'q [f32], k: usize) -> Self {
        QuerySpec {
            point,
            shape: QueryShape::Knn { k },
            scan: LeafScan::default(),
        }
    }

    /// A range spec with the default leaf-scan kernel.
    pub fn range(point: &'q [f32], radius: f64) -> Self {
        QuerySpec {
            point,
            shape: QueryShape::Range { radius },
            scan: LeafScan::default(),
        }
    }

    /// Same spec with an explicit leaf-scan kernel.
    pub fn with_scan(mut self, scan: LeafScan) -> Self {
        self.scan = scan;
        self
    }
}

/// What a query returns. A struct rather than a bare `Vec` so the result
/// surface can grow (e.g. truncation or timing markers) without touching
/// every [`SpatialIndex`] implementation again.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Matching neighbors, ascending by distance (ties by payload id).
    pub rows: Vec<Neighbor>,
}

impl QueryOutput {
    /// Wrap a sorted neighbor list.
    pub fn from_rows(rows: Vec<Neighbor>) -> Self {
        QueryOutput { rows }
    }
}

/// Errors from operations on a [`SpatialIndex`], folding each tree
/// crate's own error enum into one API-level type.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying page I/O failed.
    Pager(PagerError),
    /// A point or query of the wrong dimensionality was offered.
    DimensionMismatch {
        /// Dimensionality the index was created with.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
    /// The page file does not contain this kind of index.
    NotThisIndex(String),
    /// A range query was asked with a negative or NaN radius.
    InvalidRadius(f64),
    /// The operation is not supported by this index structure (e.g.
    /// inserting into the bulk-load-only VAMSplit R-tree).
    Unsupported(&'static str),
    /// A structural invariant of the index does not hold — on-disk
    /// corruption or an internal bug, never well-formed input.
    Corrupt(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Pager(e) => write!(f, "page I/O failed: {e}"),
            IndexError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: index is {expected}-d, point is {got}-d"
                )
            }
            IndexError::NotThisIndex(msg) => write!(f, "not a valid index file: {msg}"),
            IndexError::InvalidRadius(r) => {
                write!(f, "invalid range radius {r}: must be non-negative")
            }
            IndexError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            IndexError::Corrupt(msg) => write!(f, "index structure corrupt: {msg}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PagerError> for IndexError {
    fn from(e: PagerError) -> Self {
        IndexError::Pager(e)
    }
}

/// A disk-resident spatial index over `f32` points with `u64` payloads.
///
/// Implemented by all five tree structures in the workspace (SR-tree,
/// SS-tree, R\*-tree, K-D-B-tree, VAMSplit R-tree). Queries take `&self`
/// and are safe to call from many threads at once (`Send + Sync` is a
/// supertrait); mutation (`insert`) takes `&mut self` and is therefore
/// exclusive by construction.
pub trait SpatialIndex: Send + Sync {
    /// Short stable name of the index structure (e.g. `"sr"`, `"rstar"`).
    fn kind_name(&self) -> &'static str;

    /// Dimensionality of the indexed points.
    fn dim(&self) -> usize;

    /// Number of stored entries.
    fn len(&self) -> u64;

    /// Whether the index holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Height of the tree (0 = empty).
    fn height(&self) -> u32;

    /// Total number of leaf pages.
    fn num_leaves(&self) -> Result<u64, IndexError>;

    /// Insert one point. Structures that only support bulk construction
    /// return [`IndexError::Unsupported`].
    fn insert(&mut self, point: &[f32], data: u64) -> Result<(), IndexError>;

    /// Remove one `(point, data)` entry, reporting whether it was
    /// present. Structures without a delete path return
    /// [`IndexError::Unsupported`].
    fn delete(&mut self, point: &[f32], data: u64) -> Result<bool, IndexError> {
        let _ = (point, data);
        Err(IndexError::Unsupported("delete"))
    }

    /// Answer one query. This is the single query entry point: the spec
    /// carries the point, the shape (kNN or range), and the leaf-scan
    /// kernel, so every caller — CLI, wire dispatch, batch executor,
    /// fuzzer — goes through the same method. Results are sorted by
    /// ascending distance (ties broken by payload id); every
    /// [`LeafScan`] mode returns bit-identical neighbors.
    fn query(&self, spec: &QuerySpec<'_>, rec: &dyn Recorder) -> Result<QueryOutput, IndexError>;

    /// The `k` nearest neighbors of `query` with a metrics recorder.
    #[deprecated(note = "build a QuerySpec and call query()")]
    // srlint: allow(stale-deprecated) -- deprecated this PR (unified query()); shim and hatch both go next PR
    fn knn_with(
        &self,
        query: &[f32],
        k: usize,
        rec: &dyn Recorder,
    ) -> Result<Vec<Neighbor>, IndexError> {
        self.query(&QuerySpec::knn(query, k), rec).map(|o| o.rows)
    }

    /// kNN with an explicit leaf-scan kernel.
    #[deprecated(note = "build a QuerySpec with .with_scan() and call query()")]
    // srlint: allow(stale-deprecated) -- deprecated this PR (unified query()); shim and hatch both go next PR
    fn knn_scan_with(
        &self,
        query: &[f32],
        k: usize,
        scan: LeafScan,
        rec: &dyn Recorder,
    ) -> Result<Vec<Neighbor>, IndexError> {
        self.query(&QuerySpec::knn(query, k).with_scan(scan), rec)
            .map(|o| o.rows)
    }

    /// Every point within `radius` of `query` with a metrics recorder.
    #[deprecated(note = "build a QuerySpec and call query()")]
    // srlint: allow(stale-deprecated) -- deprecated this PR (unified query()); shim and hatch both go next PR
    fn range_with(
        &self,
        query: &[f32],
        radius: f64,
        rec: &dyn Recorder,
    ) -> Result<Vec<Neighbor>, IndexError> {
        self.query(&QuerySpec::range(query, radius), rec)
            .map(|o| o.rows)
    }

    /// kNN without instrumentation.
    fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        self.query(&QuerySpec::knn(query, k), &Noop).map(|o| o.rows)
    }

    /// Range query without instrumentation.
    fn range(&self, query: &[f32], radius: f64) -> Result<Vec<Neighbor>, IndexError> {
        self.query(&QuerySpec::range(query, radius), &Noop)
            .map(|o| o.rows)
    }

    /// The pager underneath — for cache-capacity control and I/O
    /// accounting.
    fn pager(&self) -> &PageFile;

    /// Snapshot of the pager's I/O counters.
    fn io_stats(&self) -> IoStats {
        self.pager().stats()
    }

    /// Write back dirty pages and metadata.
    fn flush(&self) -> Result<(), IndexError>;

    /// Check the structure's invariants, returning a one-line summary on
    /// success. Structures without a checker report
    /// [`IndexError::Unsupported`].
    fn verify(&self) -> Result<String, IndexError> {
        Err(IndexError::Unsupported("no invariant checker"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal in-memory implementation to exercise the trait's default
    /// methods and object safety.
    struct BruteIndex {
        pager: PageFile,
        dim: usize,
        points: Vec<(Vec<f32>, u64)>,
    }

    impl SpatialIndex for BruteIndex {
        fn kind_name(&self) -> &'static str {
            "brute"
        }
        fn dim(&self) -> usize {
            self.dim
        }
        fn len(&self) -> u64 {
            self.points.len() as u64
        }
        fn height(&self) -> u32 {
            1
        }
        fn num_leaves(&self) -> Result<u64, IndexError> {
            Ok(1)
        }
        fn insert(&mut self, point: &[f32], data: u64) -> Result<(), IndexError> {
            if point.len() != self.dim {
                return Err(IndexError::DimensionMismatch {
                    expected: self.dim,
                    got: point.len(),
                });
            }
            self.points.push((point.to_vec(), data));
            Ok(())
        }
        fn query(
            &self,
            spec: &QuerySpec<'_>,
            _rec: &dyn Recorder,
        ) -> Result<QueryOutput, IndexError> {
            let flat = self.points.iter().map(|(p, id)| (p.as_slice(), *id));
            let rows = match spec.shape {
                QueryShape::Knn { k } => crate::brute_force_knn(flat, spec.point, k),
                QueryShape::Range { radius } => {
                    if radius.is_nan() || radius < 0.0 {
                        return Err(IndexError::InvalidRadius(radius));
                    }
                    crate::brute_force_range(flat, spec.point, radius)
                }
            };
            Ok(QueryOutput::from_rows(rows))
        }
        fn pager(&self) -> &PageFile {
            &self.pager
        }
        fn flush(&self) -> Result<(), IndexError> {
            Ok(self.pager.flush()?)
        }
    }

    fn sample() -> BruteIndex {
        let mut ix = BruteIndex {
            pager: PageFile::create_in_memory(512).expect("in-memory pager"),
            dim: 2,
            points: Vec::new(),
        };
        for (i, p) in [[0.0f32, 0.0], [1.0, 0.0], [0.0, 2.0], [3.0, 3.0]]
            .iter()
            .enumerate()
        {
            ix.insert(p, i as u64).expect("insert");
        }
        ix
    }

    #[test]
    fn trait_object_queries_work() {
        let ix = sample();
        let dynix: &dyn SpatialIndex = &ix;
        assert_eq!(dynix.kind_name(), "brute");
        assert_eq!(dynix.len(), 4);
        assert!(!dynix.is_empty());
        let nn = dynix.knn(&[0.1, 0.1], 2).expect("knn");
        assert_eq!(nn[0].data, 0);
        assert_eq!(nn.len(), 2);
        let within = dynix.range(&[0.0, 0.0], 2.0).expect("range");
        assert_eq!(
            within.iter().map(|n| n.data).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(matches!(
            dynix.range(&[0.0, 0.0], -1.0),
            Err(IndexError::InvalidRadius(_))
        ));
        // default verify is a typed refusal, not a panic
        assert!(matches!(dynix.verify(), Err(IndexError::Unsupported(_))));
        // io_stats default goes through the pager
        let _ = dynix.io_stats();
    }

    #[test]
    fn index_error_display_and_source() {
        let e = IndexError::DimensionMismatch {
            expected: 16,
            got: 2,
        };
        assert!(e.to_string().contains("16"));
        let e: IndexError = PagerError::Corrupt("boom".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(IndexError::Unsupported("x").to_string().contains('x'));
    }
}
