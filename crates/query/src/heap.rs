//! The bounded candidate set of the k-NN search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One answer of a k-NN or range query: a squared distance plus the opaque
/// 64-bit payload the tree stored alongside the point (typically a row id).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance from the query point.
    pub dist2: f64,
    /// The data payload stored with the point.
    pub data: u64,
}

/// Max-heap entry ordered by distance (largest on top), so the worst
/// candidate is always ready for replacement.
#[derive(Clone, Copy, Debug)]
struct HeapEntry(Neighbor);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.dist2 == other.0.dist2 && self.0.data == other.0.data
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Distances are produced by our own geometry kernel and are never
        // NaN; enforce that in debug builds and order totally.
        debug_assert!(!self.0.dist2.is_nan() && !other.0.dist2.is_nan());
        self.0
            .dist2
            .partial_cmp(&other.0.dist2)
            .unwrap_or(Ordering::Equal)
            // Deterministic tie order keeps query results reproducible.
            .then_with(|| self.0.data.cmp(&other.0.data))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The candidate set of the Roussopoulos et al. search: the best `k`
/// points seen so far, with O(log k) replacement of the current worst.
///
/// [`CandidateSet::prune_dist2`] is the branch-pruning bound: `+inf` until
/// the set is full, then the k-th best squared distance.
pub struct CandidateSet {
    k: usize,
    heap: BinaryHeap<HeapEntry>,
}

impl CandidateSet {
    /// A candidate set for the `k` nearest neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        // srlint: allow(assert) -- contract panic on an internal engine
        // type; both public engines resolve k == 0 to an empty result
        // before ever constructing a CandidateSet.
        assert!(k > 0, "k-NN with k = 0 is meaningless");
        CandidateSet {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer a candidate; it is kept only if it beats the current worst
    /// (or the set is not yet full).
    ///
    /// **Tie-break contract.** Candidates are ordered by the lexicographic
    /// pair `(dist2, data)`: a candidate at exactly the k-th distance but
    /// with a smaller data id *replaces* the current worst. Two
    /// consequences every scan kernel must respect:
    ///
    /// 1. `dist2` must be computed in the pinned accumulation order
    ///    (ascending dimension, one f64 accumulator — see
    ///    `sr_geometry::dist2`) so equal points produce bit-equal
    ///    distances in every scan mode.
    /// 2. Early-abandon may drop an entry only when its *partial* distance
    ///    strictly exceeds [`CandidateSet::prune_dist2`]. An entry whose
    ///    full distance ties the threshold must complete, because the data
    ///    tie-break can still admit it.
    pub fn offer(&mut self, dist2: f64, data: u64) {
        if self.heap.len() < self.k {
            self.heap.push(HeapEntry(Neighbor { dist2, data }));
        } else if let Some(worst) = self.heap.peek() {
            // The payload tie-break keeps results deterministic even when
            // several points sit at exactly the k-th distance.
            if (dist2, data) < (worst.0.dist2, worst.0.data) {
                self.heap.pop();
                self.heap.push(HeapEntry(Neighbor { dist2, data }));
            }
        }
    }

    /// The pruning bound: squared distance beyond which no branch or point
    /// can improve the result.
    pub fn prune_dist2(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map(|e| e.0.dist2).unwrap_or(f64::INFINITY)
        }
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidate has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consume the set, returning neighbors sorted by ascending distance
    /// (ties broken by payload for determinism).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = self.heap.into_iter().map(|e| e.0).collect();
        v.sort_by(|a, b| {
            a.dist2
                .partial_cmp(&b.dist2)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.data.cmp(&b.data))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_best() {
        let mut c = CandidateSet::new(3);
        for (d, id) in [(5.0, 5), (1.0, 1), (4.0, 4), (2.0, 2), (3.0, 3)] {
            c.offer(d, id);
        }
        let got = c.into_sorted();
        assert_eq!(
            got.iter().map(|n| n.data).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn prune_bound_is_infinite_until_full() {
        let mut c = CandidateSet::new(2);
        assert_eq!(c.prune_dist2(), f64::INFINITY);
        c.offer(1.0, 1);
        assert_eq!(c.prune_dist2(), f64::INFINITY);
        c.offer(9.0, 2);
        assert_eq!(c.prune_dist2(), 9.0);
        c.offer(4.0, 3); // replaces the 9.0
        assert_eq!(c.prune_dist2(), 4.0);
    }

    #[test]
    fn worse_candidate_rejected_when_full() {
        let mut c = CandidateSet::new(1);
        c.offer(1.0, 1);
        c.offer(2.0, 2);
        let got = c.into_sorted();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].data, 1);
    }

    #[test]
    fn ties_break_by_payload() {
        let mut c = CandidateSet::new(2);
        c.offer(1.0, 9);
        c.offer(1.0, 3);
        c.offer(1.0, 7); // same distance, lowest ids win deterministically
        let got = c.into_sorted();
        assert_eq!(got.iter().map(|n| n.data).collect::<Vec<_>>(), vec![3, 7]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut c = CandidateSet::new(10);
        c.offer(2.0, 2);
        c.offer(1.0, 1);
        let got = c.into_sorted();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].data, 1);
    }

    #[test]
    #[should_panic(expected = "k = 0")]
    fn zero_k_rejected() {
        let _ = CandidateSet::new(0);
    }
}
