//! Sphere range search over the same [`KnnSource`] abstraction as the
//! k-NN engine.

use crate::heap::Neighbor;
use crate::knn::{Expansion, KnnSource};

/// Find every point within `radius` of `query`, sorted by ascending
/// distance (ties broken by payload).
///
/// A branch is visited iff its region distance is `<= radius^2`; a point
/// is reported iff its exact distance is. Boundary points (distance
/// exactly `radius`) are included.
pub fn range<S: KnnSource>(src: &S, query: &[f32], radius: f64) -> Result<Vec<Neighbor>, S::Error> {
    assert!(radius >= 0.0, "range radius must be non-negative");
    let r2 = radius * radius;
    let mut out = Vec::new();
    if let Some(root) = src.root()? {
        visit(src, &root, query, r2, &mut out)?;
    }
    out.sort_by(|a, b| {
        a.dist2
            .partial_cmp(&b.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.data.cmp(&b.data))
    });
    Ok(out)
}

fn visit<S: KnnSource>(
    src: &S,
    node: &S::Node,
    query: &[f32],
    r2: f64,
    out: &mut Vec<Neighbor>,
) -> Result<(), S::Error> {
    let mut exp = Expansion::default();
    src.expand(node, query, &mut exp)?;
    for n in &exp.points {
        if n.dist2 <= r2 {
            out.push(*n);
        }
    }
    for (d, child) in &exp.branches {
        if *d <= r2 {
            visit(src, child, query, r2, out)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_range;
    use crate::knn::mock::MockTree;

    fn grid_points() -> Vec<(Vec<f32>, u64)> {
        let mut pts = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                pts.push((vec![x as f32, y as f32], (x * 10 + y) as u64));
            }
        }
        pts
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = grid_points();
        let tree = MockTree::build(pts.clone(), 7);
        let flat: Vec<(&[f32], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
        for radius in [0.0, 1.0, 1.5, 3.7, 100.0] {
            let q = [4.5f32, 4.5];
            let got = range(&tree, &q, radius).unwrap();
            let want = brute_force_range(flat.iter().copied(), &q, radius);
            assert_eq!(
                got.iter().map(|n| n.data).collect::<Vec<_>>(),
                want.iter().map(|n| n.data).collect::<Vec<_>>(),
                "radius {radius}"
            );
        }
    }

    #[test]
    fn boundary_point_included() {
        let pts = grid_points();
        let tree = MockTree::build(pts.clone(), 7);
        // query at (0,0); point (3,4) is at distance exactly 5
        let got = range(&tree, &[0.0, 0.0], 5.0).unwrap();
        assert!(got.iter().any(|n| n.data == 34));
    }

    #[test]
    fn empty_result_for_far_query() {
        let pts = grid_points();
        let tree = MockTree::build(pts, 7);
        let got = range(&tree, &[1000.0, 1000.0], 1.0).unwrap();
        assert!(got.is_empty());
    }
}
