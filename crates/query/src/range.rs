//! Sphere range search over the same [`KnnSource`] abstraction as the
//! k-NN engine.

use sr_obs::{Hist, Noop, Recorder, SpanTimer};

use crate::error::QueryError;
use crate::heap::Neighbor;
use crate::knn::{record_expansion, record_prune, Expansion, KnnSource};

/// Find every point within `radius` of `query`, sorted by ascending
/// distance (ties broken by payload).
///
/// A branch is visited iff its region distance is `<= radius^2`; a point
/// is reported iff its exact distance is. Boundary points (distance
/// exactly `radius`) are included.
///
/// A negative or NaN radius is rejected with
/// [`QueryError::InvalidRadius`] — never a panic.
pub fn range<S: KnnSource>(
    src: &S,
    query: &[f32],
    radius: f64,
) -> Result<Vec<Neighbor>, QueryError<S::Error>> {
    range_with(src, query, radius, &Noop)
}

/// [`range`] with a metrics recorder. With [`Noop`] this monomorphizes to
/// exactly the uninstrumented search.
pub fn range_with<S: KnnSource, R: Recorder + ?Sized>(
    src: &S,
    query: &[f32],
    radius: f64,
    rec: &R,
) -> Result<Vec<Neighbor>, QueryError<S::Error>> {
    if radius.is_nan() || radius < 0.0 {
        return Err(QueryError::InvalidRadius(radius));
    }
    let _span = SpanTimer::start(rec, Hist::QueryNs);
    let r2 = radius * radius;
    let mut out = Vec::new();
    let mut pool = Vec::new();
    if let Some(root) = src.root().map_err(QueryError::Source)? {
        visit(src, &root, query, r2, &mut out, rec, &mut pool).map_err(QueryError::Source)?;
    }
    out.sort_by(|a, b| {
        a.dist2
            .partial_cmp(&b.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.data.cmp(&b.data))
    });
    Ok(out)
}

fn visit<S: KnnSource, R: Recorder + ?Sized>(
    src: &S,
    node: &S::Node,
    query: &[f32],
    r2: f64,
    out: &mut Vec<Neighbor>,
    rec: &R,
    pool: &mut Vec<Expansion<S::Node>>,
) -> Result<(), S::Error> {
    let mut exp = pool.pop().unwrap_or_default();
    exp.clear();
    // A range query's pruning threshold is fixed at r²: an entry whose
    // partial distance strictly exceeds r² can never be `<= r2`, so the
    // early-abandon scan is exact here too (boundary points complete).
    src.expand(node, query, r2, &mut exp)?;
    record_expansion(rec, &exp);
    for n in &exp.points {
        if n.dist2 <= r2 {
            out.push(*n);
        }
    }
    for b in &exp.branches {
        if b.dist2 <= r2 {
            visit(src, &b.node, query, r2, out, rec, pool)?;
        } else {
            record_prune(rec, b.bound, |c| c > r2);
        }
    }
    pool.push(exp);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_range;
    use crate::knn::mock::MockTree;
    use sr_obs::{Counter, StatsRecorder};

    fn grid_points() -> Vec<(Vec<f32>, u64)> {
        let mut pts = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                pts.push((vec![x as f32, y as f32], (x * 10 + y) as u64));
            }
        }
        pts
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = grid_points();
        let tree = MockTree::build(pts.clone(), 7);
        let flat: Vec<(&[f32], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
        for radius in [0.0, 1.0, 1.5, 3.7, 100.0] {
            let q = [4.5f32, 4.5];
            let got = range(&tree, &q, radius).unwrap();
            let want = brute_force_range(flat.iter().copied(), &q, radius);
            assert_eq!(
                got.iter().map(|n| n.data).collect::<Vec<_>>(),
                want.iter().map(|n| n.data).collect::<Vec<_>>(),
                "radius {radius}"
            );
        }
    }

    #[test]
    fn boundary_point_included() {
        let pts = grid_points();
        let tree = MockTree::build(pts.clone(), 7);
        // query at (0,0); point (3,4) is at distance exactly 5
        let got = range(&tree, &[0.0, 0.0], 5.0).unwrap();
        assert!(got.iter().any(|n| n.data == 34));
    }

    #[test]
    fn empty_result_for_far_query() {
        let pts = grid_points();
        let tree = MockTree::build(pts, 7);
        let got = range(&tree, &[1000.0, 1000.0], 1.0).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn negative_radius_is_a_typed_error_not_a_panic() {
        let pts = grid_points();
        let tree = MockTree::build(pts, 7);
        match range(&tree, &[0.0, 0.0], -1.0) {
            Err(QueryError::InvalidRadius(r)) => assert_eq!(r, -1.0),
            other => panic!("expected InvalidRadius, got {other:?}"),
        }
        assert!(matches!(
            range(&tree, &[0.0, 0.0], f64::NAN),
            Err(QueryError::InvalidRadius(_))
        ));
        // Zero stays valid: it returns exact matches only.
        assert!(range(&tree, &[0.0, 0.0], 0.0).is_ok());
    }

    #[test]
    fn traced_range_counts_prunes() {
        let pts = grid_points();
        let tree = MockTree::build(pts, 7);
        let rec = StatsRecorder::new();
        let got = range_with(&tree, &[4.5, 4.5], 1.5, &rec).unwrap();
        assert!(!got.is_empty());
        let s = rec.snapshot();
        assert!(s.counter(Counter::LeafExpansions) > 0);
        // A 1.5-radius ball over a 10x10 grid skips most of the tree.
        assert!(s.counter(Counter::PruneEvents) > 0);
        assert_eq!(
            s.counter(Counter::PruneEvents),
            s.counter(Counter::PruneRect)
        );
    }
}
