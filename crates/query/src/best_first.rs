//! Best-first ("distance browsing") k-NN — an extension beyond the
//! paper.
//!
//! The paper uses the depth-first branch-and-bound search of
//! Roussopoulos et al. (1995). A year later, Hjaltason & Samet's
//! best-first traversal became the standard: a single global priority
//! queue holds unexpanded regions *and* pending points, always expanding
//! the nearest item. Best-first is **I/O-optimal** for a given tree — it
//! reads exactly the pages whose regions intersect the final k-NN ball —
//! so it lower-bounds what any traversal order can achieve and makes a
//! useful comparison point for the DFS the paper ran (see the
//! `knn_best_first` methods and the equality tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use sr_obs::{Gauge, Hist, Noop, Recorder, SpanTimer};

use crate::heap::{CandidateSet, Neighbor};
use crate::knn::{record_expansion, record_prune, Expansion, KnnSource, RegionBound};

enum Item<N> {
    /// An unexpanded region and the provenance of its lower bound (kept
    /// so regions still queued when the search stops can be attributed as
    /// prune events).
    Node(N, RegionBound),
    Point(Neighbor),
}

struct QueueEntry<N> {
    dist2: f64,
    /// Tie-break so points at distance d are surfaced before regions at
    /// distance d (a region can only contain points at ≥ its own
    /// distance, so draining equal-distance points first is safe and
    /// keeps results deterministic).
    point_first: bool,
    seq: u64,
    item: Item<N>,
}

impl<N> PartialEq for QueueEntry<N> {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.point_first == other.point_first && self.seq == other.seq
    }
}
impl<N> Eq for QueueEntry<N> {}
impl<N> Ord for QueueEntry<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; the entry that should pop first must
        // compare greatest: smaller distance wins, then points before
        // regions, then insertion order.
        debug_assert!(!self.dist2.is_nan() && !other.dist2.is_nan());
        other
            .dist2
            .partial_cmp(&self.dist2)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.point_first.cmp(&other.point_first))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<N> PartialOrd for QueueEntry<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Best-first k-NN over the same [`KnnSource`] the depth-first engine
/// uses. Returns exactly the same neighbors as [`crate::knn`] (both are
/// exact); only the page-access pattern differs.
pub fn knn_best_first<S: KnnSource>(
    src: &S,
    query: &[f32],
    k: usize,
) -> Result<Vec<Neighbor>, S::Error> {
    knn_best_first_with(src, query, k, &Noop)
}

/// [`knn_best_first`] with a metrics recorder. With [`Noop`] this
/// monomorphizes to exactly the uninstrumented search.
pub fn knn_best_first_with<S: KnnSource, R: Recorder + ?Sized>(
    src: &S,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>, S::Error> {
    let _span = SpanTimer::start(rec, Hist::QueryNs);
    let mut cands = CandidateSet::new(k);
    let mut heap: BinaryHeap<QueueEntry<S::Node>> = BinaryHeap::new();
    let mut seq = 0u64;
    if let Some(root) = src.root()? {
        heap.push(QueueEntry {
            dist2: 0.0,
            point_first: false,
            seq,
            // The root's provenance never matters: at distance 0 it is
            // expanded before anything can prune it.
            item: Item::Node(root, RegionBound::Rect),
        });
    }
    let mut exp = Expansion::default();
    while let Some(entry) = heap.pop() {
        if entry.dist2 >= cands.prune_dist2() {
            // Nothing closer can ever surface. Every region still queued
            // is a prune event: best-first skips it exactly the way DFS
            // skips a branch that cannot beat the k-th candidate.
            if rec.enabled() {
                let thr = cands.prune_dist2();
                for e in std::iter::once(entry).chain(heap.drain()) {
                    if let Item::Node(_, bound) = e.item {
                        record_prune(rec, bound, |c| c >= thr);
                    }
                }
            }
            break;
        }
        match entry.item {
            Item::Point(n) => cands.offer(n.dist2, n.data),
            Item::Node(node, _) => {
                exp.clear();
                src.expand(&node, query, cands.prune_dist2(), &mut exp)?;
                record_expansion(rec, &exp);
                for n in exp.points.drain(..) {
                    seq += 1;
                    heap.push(QueueEntry {
                        dist2: n.dist2,
                        point_first: true,
                        seq,
                        item: Item::Point(n),
                    });
                }
                for b in exp.branches.drain(..) {
                    let thr = cands.prune_dist2();
                    if b.dist2 < thr {
                        seq += 1;
                        heap.push(QueueEntry {
                            dist2: b.dist2,
                            point_first: false,
                            seq,
                            item: Item::Node(b.node, b.bound),
                        });
                    } else {
                        record_prune(rec, b.bound, |c| c >= thr);
                    }
                }
                rec.gauge_max(Gauge::HeapHighWater, heap.len() as u64);
            }
        }
    }
    Ok(cands.into_sorted())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_knn;
    use crate::knn::mock::MockTree;
    use sr_obs::{Counter, StatsRecorder};

    fn pseudo_points(n: usize, d: usize, seed: u64) -> Vec<(Vec<f32>, u64)> {
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f32 / (1u64 << 53) as f32 * 2.0
        };
        (0..n)
            .map(|i| ((0..d).map(|_| next()).collect(), i as u64))
            .collect()
    }

    #[test]
    fn best_first_matches_brute_force() {
        for d in [2usize, 8] {
            let pts = pseudo_points(400, d, 17 + d as u64);
            let tree = MockTree::build(pts.clone(), 16);
            let flat: Vec<(&[f32], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
            for (qi, k) in [(0usize, 1usize), (11, 5), (200, 21)] {
                let q = &pts[qi].0;
                let got = knn_best_first(&tree, q, k).unwrap();
                let want = brute_force_knn(flat.iter().copied(), q, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!((g.dist2 - w.dist2).abs() < 1e-9, "d={d} k={k}");
                }
            }
        }
    }

    #[test]
    fn best_first_equals_depth_first() {
        let pts = pseudo_points(500, 4, 99);
        let tree = MockTree::build(pts.clone(), 12);
        for k in [1usize, 7, 30] {
            let q = &pts[k].0;
            let bf = knn_best_first(&tree, q, k).unwrap();
            let df = crate::knn(&tree, q, k).unwrap();
            assert_eq!(
                bf.iter().map(|n| n.data).collect::<Vec<_>>(),
                df.iter().map(|n| n.data).collect::<Vec<_>>(),
                "k={k}"
            );
        }
    }

    #[test]
    fn k_larger_than_dataset() {
        let pts = pseudo_points(9, 3, 7);
        let tree = MockTree::build(pts.clone(), 4);
        let got = knn_best_first(&tree, &pts[0].0, 100).unwrap();
        assert_eq!(got.len(), 9);
        for w in got.windows(2) {
            assert!(w[0].dist2 <= w[1].dist2);
        }
    }

    #[test]
    fn traced_best_first_tracks_heap_high_water() {
        let pts = pseudo_points(500, 8, 321);
        let tree = MockTree::build(pts.clone(), 16);
        let rec = StatsRecorder::new();
        let got = knn_best_first_with(&tree, &pts[3].0, 5, &rec).unwrap();
        let plain = knn_best_first(&tree, &pts[3].0, 5).unwrap();
        assert_eq!(got, plain, "tracing must not change results");
        let s = rec.snapshot();
        assert!(s.gauge(Gauge::HeapHighWater) > 0);
        assert!(s.counter(Counter::LeafExpansions) > 0);
        // Best-first reads no more pages than DFS on the same tree.
        let df_rec = StatsRecorder::new();
        let _ = crate::knn_with(&tree, &pts[3].0, 5, &df_rec).unwrap();
        let df = df_rec.snapshot();
        assert!(
            s.counter(Counter::NodeExpansions) + s.counter(Counter::LeafExpansions)
                <= df.counter(Counter::NodeExpansions) + df.counter(Counter::LeafExpansions)
        );
    }
}
