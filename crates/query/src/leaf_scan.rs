//! The shared columnar leaf scan — one hot loop for all five trees.
//!
//! Every index crate stores its leaves in the same dimension-major layout
//! ([`sr_pager::LeafColumns`]), so the kernel dispatch lives here once
//! instead of five times. The tree's `KnnSource::expand` parses the leaf
//! payload straight off the page buffer and hands the view to
//! [`scan_leaf_columns`], which scores every entry with the columnar
//! kernels from `sr-geometry` and pushes survivors into the expansion.

use sr_geometry::{dist2_columnar, dist2_columnar_early_abandon, GeometryError};
use sr_pager::LeafColumns;

use crate::heap::Neighbor;
use crate::knn::{Expansion, LeafScan};

/// Score one leaf's entries against `query`, pushing scored points into
/// `out.points` and crediting early-abandoned entries to `out.abandoned`.
///
/// `prune2` is the engine's current pruning threshold (the running k-th
/// candidate's squared distance, or a range query's squared radius); only
/// [`LeafScan::EarlyAbandon`] consults it, and only with the strict `>`
/// comparison the [`crate::CandidateSet::offer`] tie-break contract
/// requires. [`LeafScan::Scalar`] is handled by the trees themselves
/// (they score through their node codec); if it reaches this function it
/// degrades to the full columnar scan, which is bit-identical anyway.
///
/// The scratch vectors inside `out` are reused across calls, so a whole
/// query's leaf scans allocate at most once.
// srlint: hot
pub fn scan_leaf_columns<N>(
    cols: &LeafColumns<'_>,
    query: &[f32],
    prune2: f64,
    scan: LeafScan,
    out: &mut Expansion<N>,
) -> Result<(), GeometryError> {
    let n = cols.len();
    let coords = cols.coords();
    match scan {
        LeafScan::Scalar | LeafScan::Columnar => {
            dist2_columnar(coords, n, query, &mut out.dist_scratch)?;
            for (d, data) in out.dist_scratch.iter().zip(cols.data_ids()) {
                out.points.push(Neighbor { dist2: *d, data });
            }
        }
        LeafScan::EarlyAbandon => {
            let abandoned = dist2_columnar_early_abandon(
                coords,
                n,
                query,
                prune2,
                &mut out.dist_scratch,
                &mut out.alive_scratch,
            )?;
            out.abandoned += abandoned;
            for ((d, alive), data) in out
                .dist_scratch
                .iter()
                .zip(out.alive_scratch.iter())
                .zip(cols.data_ids())
            {
                if *alive {
                    out.points.push(Neighbor { dist2: *d, data });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_pager::{put_leaf_columns, PageCodec};

    fn leaf_payload(dim: usize, entries: &[(Vec<f32>, u64)]) -> Vec<u8> {
        let data_area = 16usize;
        let mut buf = vec![0u8; 4 + entries.len() * (dim * 8 + data_area)];
        let refs: Vec<(&[f32], u64)> = entries.iter().map(|(c, d)| (c.as_slice(), *d)).collect();
        let mut c = PageCodec::new(&mut buf);
        put_leaf_columns(&mut c, dim, data_area, &refs).unwrap();
        buf
    }

    #[test]
    fn columnar_scan_scores_every_entry() {
        let entries = vec![
            (vec![0.0f32, 0.0], 1u64),
            (vec![3.0, 4.0], 2),
            (vec![-1.0, 1.0], 3),
        ];
        let payload = leaf_payload(2, &entries);
        let cols = LeafColumns::parse(&payload, 2).unwrap();
        let mut out: Expansion<()> = Expansion::default();
        scan_leaf_columns(
            &cols,
            &[0.0, 0.0],
            f64::INFINITY,
            LeafScan::Columnar,
            &mut out,
        )
        .unwrap();
        assert_eq!(out.abandoned, 0);
        let got: Vec<(f64, u64)> = out.points.iter().map(|n| (n.dist2, n.data)).collect();
        assert_eq!(got, vec![(0.0, 1), (25.0, 2), (2.0, 3)]);
    }

    #[test]
    fn early_abandon_drops_only_strictly_worse_entries() {
        // 16 dims so the per-point tail (dims past the columnar head) is
        // exercised; the far entry's head distance already exceeds the
        // threshold, the tied entry must survive.
        let dim = 16;
        let near: Vec<f32> = vec![0.0; dim];
        let far: Vec<f32> = vec![10.0; dim];
        let mut tied: Vec<f32> = vec![0.0; dim];
        tied[dim - 1] = 2.0; // dist2 exactly 4.0
        let entries = vec![(near, 1u64), (far, 2), (tied, 3)];
        let payload = leaf_payload(dim, &entries);
        let cols = LeafColumns::parse(&payload, dim).unwrap();
        let mut out: Expansion<()> = Expansion::default();
        let q = vec![0.0f32; dim];
        scan_leaf_columns(&cols, &q, 4.0, LeafScan::EarlyAbandon, &mut out).unwrap();
        assert_eq!(out.abandoned, 1, "only the far entry is abandoned");
        let got: Vec<(f64, u64)> = out.points.iter().map(|n| (n.dist2, n.data)).collect();
        assert_eq!(got, vec![(0.0, 1), (4.0, 3)], "the tied entry completes");
    }
}
