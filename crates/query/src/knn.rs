//! The depth-first branch-and-bound k-NN search of Roussopoulos, Kelley &
//! Vincent (SIGMOD 1995), generic over the tree it runs on.

use sr_obs::{Counter, Gauge, Hist, Noop, Recorder, SpanTimer};

use crate::heap::{CandidateSet, Neighbor};

/// Which region shape produced a branch's lower bound — the provenance
/// the prune-breakdown metrics attribute skipped branches to.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RegionBound {
    /// Rectangle `MINDIST` alone (R\*-tree, K-D-B-tree, VAMSplit R-tree).
    Rect,
    /// Sphere surface distance alone (SS-tree).
    Sphere,
    /// The SR-tree's §4.4 combined bound `max(d_sphere, d_rect)`. Both
    /// squared components are kept so a prune event can be credited to
    /// every shape whose bound would have sufficed on its own — which is
    /// what quantifies the combined bound's advantage: per query,
    /// `PruneEvents >= max(PruneSphere, PruneRect)` by construction, and
    /// any excess over a single shape's count is pruning only the
    /// combination achieves.
    Max {
        /// Squared sphere-surface distance from the query to the region.
        sphere2: f64,
        /// Squared rectangle `MINDIST` from the query to the region.
        rect2: f64,
    },
}

/// A scored child branch: the child's region lower bound, its provenance,
/// and the opaque node handle to expand it with.
#[derive(Clone, Copy, Debug)]
pub struct Branch<N> {
    /// Squared lower bound on the distance from the query point to any
    /// point stored under this branch.
    pub dist2: f64,
    /// Which shape(s) produced `dist2`.
    pub bound: RegionBound,
    /// The tree's node handle.
    pub node: N,
}

/// How a tree scans leaf entries during a query.
///
/// The on-disk leaves are columnar (dimension-major); the scan mode picks
/// the kernel that scores them. All three modes produce bit-identical
/// result sets — the ablation difference is time, not answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LeafScan {
    /// Materialise every entry through the node codec and score it with
    /// the scalar kernel. The ablation baseline and differential-fuzz
    /// reference.
    Scalar,
    /// Score the whole leaf with the columnar kernel straight off the
    /// page buffer; every entry's full distance is computed.
    Columnar,
    /// Columnar kernel with early-abandon partial-distance pruning
    /// against the engine's current threshold (the running k-th candidate
    /// distance, or a range query's squared radius).
    #[default]
    EarlyAbandon,
}

/// What a node expands into: scored child branches (internal node) or
/// scored points (leaf). A tree fills exactly one of the two vectors per
/// call; the metrics layer classifies an expansion with no branches as a
/// leaf expansion.
pub struct Expansion<N> {
    /// Child branches with their region lower bounds.
    pub branches: Vec<Branch<N>>,
    /// Leaf points with their exact squared distance from the query.
    pub points: Vec<Neighbor>,
    /// Leaf entries the early-abandon kernel dropped before their full
    /// distance was accumulated. They still count as scanned — the
    /// metrics layer adds them to `PointsScored` so the counter is
    /// identical across scan modes — and are also credited to their own
    /// `EarlyAbandons` counter.
    pub abandoned: u64,
    /// Scratch distances for the columnar kernels, owned here so a
    /// query's leaf scans reuse one allocation.
    pub dist_scratch: Vec<f64>,
    /// Scratch survivor mask for the early-abandon kernel.
    pub alive_scratch: Vec<bool>,
}

impl<N> Default for Expansion<N> {
    fn default() -> Self {
        Expansion {
            branches: Vec::new(),
            points: Vec::new(),
            abandoned: 0,
            dist_scratch: Vec::new(),
            alive_scratch: Vec::new(),
        }
    }
}

impl<N> Expansion<N> {
    /// Clear the per-expansion state, keeping capacity (the engines reuse
    /// `Expansion`s across visits). The kernel scratch buffers are
    /// managed by the kernels themselves.
    pub fn clear(&mut self) {
        self.branches.clear();
        self.points.clear();
        self.abandoned = 0;
    }

    /// Push a leaf point with its exact squared distance.
    pub fn push_point(&mut self, dist2: f64, data: u64) {
        self.points.push(Neighbor { dist2, data });
    }

    /// Push a branch bounded by a rectangle `MINDIST` alone.
    pub fn push_rect_branch(&mut self, rect2: f64, node: N) {
        self.branches.push(Branch {
            dist2: rect2,
            bound: RegionBound::Rect,
            node,
        });
    }

    /// Push a branch bounded by a sphere surface distance alone.
    pub fn push_sphere_branch(&mut self, sphere2: f64, node: N) {
        self.branches.push(Branch {
            dist2: sphere2,
            bound: RegionBound::Sphere,
            node,
        });
    }

    /// Push a branch bounded by the SR-tree's `max(d_sphere, d_rect)`.
    pub fn push_max_branch(&mut self, sphere2: f64, rect2: f64, node: N) {
        self.branches.push(Branch {
            dist2: sphere2.max(rect2),
            bound: RegionBound::Max { sphere2, rect2 },
            node,
        });
    }
}

/// A tree that the generic k-NN / range engines can traverse.
pub trait KnnSource {
    /// Opaque node handle (typically a page id plus a leaf flag).
    type Node;
    /// Error produced while fetching nodes (typically a pager error).
    type Error;

    /// The root node, or `None` for an empty tree.
    fn root(&self) -> Result<Option<Self::Node>, Self::Error>;

    /// Expand `node`: push scored children (internal node) or scored
    /// points (leaf) into `out`. `out` arrives cleared.
    ///
    /// `prune2` is the engine's current pruning threshold — the running
    /// k-th candidate's squared distance (`+inf` until `k` candidates
    /// exist) or a range query's squared radius. A leaf scan may use it
    /// to abandon entries whose partial distance already exceeds it
    /// *strictly*; abandoned entries are counted in `out.abandoned`, not
    /// pushed as points.
    fn expand(
        &self,
        node: &Self::Node,
        query: &[f32],
        prune2: f64,
        out: &mut Expansion<Self::Node>,
    ) -> Result<(), Self::Error>;
}

/// Count one node expansion: node-vs-leaf split, points scored, branches
/// considered, fan-out histogram.
pub(crate) fn record_expansion<N, R: Recorder + ?Sized>(rec: &R, exp: &Expansion<N>) {
    if exp.branches.is_empty() {
        rec.incr(Counter::LeafExpansions, 1);
    } else {
        rec.incr(Counter::NodeExpansions, 1);
        rec.incr(Counter::BranchesConsidered, exp.branches.len() as u64);
        rec.observe(Hist::NodeFanout, exp.branches.len() as u64);
    }
    // Abandoned entries were visited by the scan — only their distance
    // accumulation stopped early — so they stay in `PointsScored`,
    // keeping the counter identical across scan modes, and are credited
    // to their own counter on top.
    rec.incr(
        Counter::PointsScored,
        exp.points.len() as u64 + exp.abandoned,
    );
    rec.incr(Counter::EarlyAbandons, exp.abandoned);
}

/// Count one pruned branch, attributing the event to every shape whose
/// bound would have pruned on its own (`would_prune` applies the engine's
/// prune comparison — `>= thr` for k-NN, `> r²` for range).
pub(crate) fn record_prune<R: Recorder + ?Sized>(
    rec: &R,
    bound: RegionBound,
    would_prune: impl Fn(f64) -> bool,
) {
    rec.incr(Counter::PruneEvents, 1);
    match bound {
        RegionBound::Rect => rec.incr(Counter::PruneRect, 1),
        RegionBound::Sphere => rec.incr(Counter::PruneSphere, 1),
        RegionBound::Max { sphere2, rect2 } => {
            if would_prune(sphere2) {
                rec.incr(Counter::PruneSphere, 1);
            }
            if would_prune(rect2) {
                rec.incr(Counter::PruneRect, 1);
            }
        }
    }
}

/// Find the `k` nearest neighbors of `query`, sorted by ascending
/// distance.
///
/// This is the algorithm the paper's §4.4 describes: a depth-first
/// traversal that visits children in order of their region distance and
/// prunes every branch whose region distance cannot beat the current k-th
/// candidate. The quality of the region distance is the only thing a tree
/// controls — the SR-tree's `max(d_sphere, d_rect)` bound prunes strictly
/// more than either bound alone.
pub fn knn<S: KnnSource>(src: &S, query: &[f32], k: usize) -> Result<Vec<Neighbor>, S::Error> {
    knn_with(src, query, k, &Noop)
}

/// [`knn`] with a metrics recorder. With [`Noop`] this monomorphizes to
/// exactly the uninstrumented search.
pub fn knn_with<S: KnnSource, R: Recorder + ?Sized>(
    src: &S,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>, S::Error> {
    let _span = SpanTimer::start(rec, Hist::QueryNs);
    if k == 0 {
        // A 0-NN query has exactly one right answer; resolving it here
        // keeps `CandidateSet::new`'s k > 0 contract intact.
        return Ok(Vec::new());
    }
    let mut cands = CandidateSet::new(k);
    let mut pool = Vec::new();
    if let Some(root) = src.root()? {
        visit(src, &root, query, &mut cands, rec, &mut pool)?;
    }
    rec.gauge_max(Gauge::HeapHighWater, cands.len() as u64);
    Ok(cands.into_sorted())
}

fn visit<S: KnnSource, R: Recorder + ?Sized>(
    src: &S,
    node: &S::Node,
    query: &[f32],
    cands: &mut CandidateSet,
    rec: &R,
    pool: &mut Vec<Expansion<S::Node>>,
) -> Result<(), S::Error> {
    // Recycle an expansion from the pool: the depth-first walk would
    // otherwise allocate fresh vectors at every level of every path.
    let mut exp = pool.pop().unwrap_or_default();
    exp.clear();
    src.expand(node, query, cands.prune_dist2(), &mut exp)?;
    record_expansion(rec, &exp);
    for n in &exp.points {
        cands.offer(n.dist2, n.data);
    }
    // Visit nearer regions first: they tighten the pruning bound fastest,
    // which is what lets the later, farther siblings be skipped.
    exp.branches.sort_by(|a, b| {
        a.dist2
            .partial_cmp(&b.dist2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for b in &exp.branches {
        // A region at exactly the k-th distance cannot contain a strictly
        // better point, so strict inequality is the correct prune.
        let thr = cands.prune_dist2();
        if b.dist2 < thr {
            visit(src, &b.node, query, cands, rec, pool)?;
        } else {
            record_prune(rec, b.bound, |c| c >= thr);
        }
    }
    pool.push(exp);
    Ok(())
}

#[cfg(test)]
pub(crate) mod mock {
    //! A tiny in-memory binary "index" over points, used to test the
    //! engine without dragging a real tree in: splits points in half on
    //! the widest dimension and bounds each half with a rectangle. Nodes
    //! live in an arena and node handles are arena indices, so the mock
    //! stays within `#![forbid(unsafe_code)]`.

    use super::*;

    pub enum MockNode {
        Inner {
            lo: Vec<f32>,
            hi: Vec<f32>,
            children: Vec<usize>,
        },
        Leaf {
            lo: Vec<f32>,
            hi: Vec<f32>,
            points: Vec<(Vec<f32>, u64)>,
        },
    }

    impl MockNode {
        fn bounds(points: &[(Vec<f32>, u64)]) -> (Vec<f32>, Vec<f32>) {
            let d = points[0].0.len();
            let mut lo = vec![f32::INFINITY; d];
            let mut hi = vec![f32::NEG_INFINITY; d];
            for (p, _) in points {
                for i in 0..d {
                    lo[i] = lo[i].min(p[i]);
                    hi[i] = hi[i].max(p[i]);
                }
            }
            (lo, hi)
        }

        fn min_dist2(&self, q: &[f32]) -> f64 {
            let (lo, hi) = match self {
                MockNode::Inner { lo, hi, .. } => (lo, hi),
                MockNode::Leaf { lo, hi, .. } => (lo, hi),
            };
            let mut acc = 0.0f64;
            for i in 0..q.len() {
                let d = if q[i] < lo[i] {
                    (lo[i] - q[i]) as f64
                } else if q[i] > hi[i] {
                    (q[i] - hi[i]) as f64
                } else {
                    0.0
                };
                acc += d * d;
            }
            acc
        }
    }

    /// Node arena; index 0 is the root.
    pub struct MockTree {
        nodes: Vec<MockNode>,
    }

    impl MockTree {
        pub fn build(points: Vec<(Vec<f32>, u64)>, leaf_cap: usize) -> MockTree {
            let mut tree = MockTree { nodes: Vec::new() };
            tree.build_node(points, leaf_cap);
            tree
        }

        /// Append the subtree over `points` to the arena, returning its
        /// root's index.
        fn build_node(&mut self, mut points: Vec<(Vec<f32>, u64)>, leaf_cap: usize) -> usize {
            let (lo, hi) = MockNode::bounds(&points);
            let id = self.nodes.len();
            if points.len() <= leaf_cap {
                self.nodes.push(MockNode::Leaf { lo, hi, points });
                return id;
            }
            let d = lo.len();
            let dim = (0..d)
                .max_by(|&a, &b| (hi[a] - lo[a]).total_cmp(&(hi[b] - lo[b])))
                .unwrap_or(0);
            points.sort_by(|a, b| a.0[dim].total_cmp(&b.0[dim]));
            let right = points.split_off(points.len() / 2);
            // Reserve the inner node's slot before recursing so the root
            // of the whole tree stays at index 0.
            self.nodes.push(MockNode::Inner {
                lo,
                hi,
                children: Vec::new(),
            });
            let left_id = self.build_node(points, leaf_cap);
            let right_id = self.build_node(right, leaf_cap);
            if let MockNode::Inner { children, .. } = &mut self.nodes[id] {
                *children = vec![left_id, right_id];
            }
            id
        }
    }

    impl KnnSource for MockTree {
        type Node = usize;
        type Error = std::convert::Infallible;

        fn root(&self) -> Result<Option<Self::Node>, Self::Error> {
            Ok((!self.nodes.is_empty()).then_some(0))
        }

        fn expand(
            &self,
            node: &Self::Node,
            query: &[f32],
            _prune2: f64,
            out: &mut Expansion<Self::Node>,
        ) -> Result<(), Self::Error> {
            match &self.nodes[*node] {
                MockNode::Inner { children, .. } => {
                    for &c in children {
                        out.push_rect_branch(self.nodes[c].min_dist2(query), c);
                    }
                }
                MockNode::Leaf { points, .. } => {
                    for (p, id) in points {
                        let mut d = 0.0f64;
                        for i in 0..p.len() {
                            // Widen before subtracting, matching the
                            // geometry kernel's rounding exactly.
                            let t = p[i] as f64 - query[i] as f64;
                            d += t * t;
                        }
                        out.push_point(d, *id);
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::mock::MockTree;
    use super::*;
    use crate::bruteforce::brute_force_knn;
    use sr_obs::StatsRecorder;

    fn pseudo_points(n: usize, d: usize, seed: u64) -> Vec<(Vec<f32>, u64)> {
        // Deterministic xorshift so the test needs no external RNG.
        let mut s = seed.max(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f32 / (1u64 << 53) as f32 * 2.0
        };
        (0..n)
            .map(|i| ((0..d).map(|_| next()).collect(), i as u64))
            .collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        for d in [2usize, 8, 16] {
            let pts = pseudo_points(500, d, 42 + d as u64);
            let tree = MockTree::build(pts.clone(), 16);
            let flat: Vec<(&[f32], u64)> = pts.iter().map(|(p, id)| (p.as_slice(), *id)).collect();
            for (qi, k) in [(0usize, 1usize), (13, 5), (77, 21)] {
                let q = &pts[qi].0;
                let got = knn(&tree, q, k).unwrap();
                let want = brute_force_knn(flat.iter().copied(), q, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want.iter()) {
                    assert!(
                        (g.dist2 - w.dist2).abs() < 1e-9,
                        "d={d} k={k}: {} vs {}",
                        g.dist2,
                        w.dist2
                    );
                }
            }
        }
    }

    #[test]
    fn knn_with_k_larger_than_dataset() {
        let pts = pseudo_points(10, 4, 7);
        let tree = MockTree::build(pts.clone(), 4);
        let got = knn(&tree, &pts[0].0, 50).unwrap();
        assert_eq!(got.len(), 10);
        // sorted ascending
        for w in got.windows(2) {
            assert!(w[0].dist2 <= w[1].dist2);
        }
    }

    #[test]
    fn self_query_returns_self_first() {
        let pts = pseudo_points(100, 8, 99);
        let tree = MockTree::build(pts.clone(), 8);
        let got = knn(&tree, &pts[42].0, 1).unwrap();
        assert_eq!(got[0].dist2, 0.0);
    }

    #[test]
    fn traced_knn_counts_expansions_and_prunes() {
        let pts = pseudo_points(500, 8, 1234);
        let tree = MockTree::build(pts.clone(), 16);
        let rec = StatsRecorder::new();
        let got = knn_with(&tree, &pts[7].0, 5, &rec).unwrap();
        let plain = knn(&tree, &pts[7].0, 5).unwrap();
        assert_eq!(got, plain, "tracing must not change results");
        let s = rec.snapshot();
        assert!(s.counter(Counter::NodeExpansions) > 0);
        assert!(s.counter(Counter::LeafExpansions) > 0);
        assert!(s.counter(Counter::PointsScored) >= 5);
        // Every branch either got expanded (as a node or leaf) or pruned;
        // the root is expanded without ever being a branch.
        let expanded = s.counter(Counter::NodeExpansions) + s.counter(Counter::LeafExpansions) - 1;
        assert_eq!(
            s.counter(Counter::BranchesConsidered),
            expanded + s.counter(Counter::PruneEvents)
        );
        // The mock scores branches with rectangles only.
        assert_eq!(
            s.counter(Counter::PruneEvents),
            s.counter(Counter::PruneRect)
        );
        assert_eq!(s.counter(Counter::PruneSphere), 0);
        assert_eq!(s.gauge(Gauge::HeapHighWater), 5);
        assert_eq!(s.hist(Hist::QueryNs).count, 1);
    }

    #[test]
    fn max_bound_prune_attribution_credits_each_sufficient_shape() {
        let rec = StatsRecorder::new();
        let thr = 10.0;
        // Sphere alone suffices.
        record_prune(
            &rec,
            RegionBound::Max {
                sphere2: 12.0,
                rect2: 5.0,
            },
            |c| c >= thr,
        );
        // Both suffice.
        record_prune(
            &rec,
            RegionBound::Max {
                sphere2: 11.0,
                rect2: 13.0,
            },
            |c| c >= thr,
        );
        let s = rec.snapshot();
        assert_eq!(s.counter(Counter::PruneEvents), 2);
        assert_eq!(s.counter(Counter::PruneSphere), 2);
        assert_eq!(s.counter(Counter::PruneRect), 1);
    }
}
