//! The accept loop, per-connection workers, admission control, and
//! graceful shutdown.
//!
//! One [`Server`] owns one index behind a reader-writer lock. Reads
//! (k-NN, range, stats) run under the shared lock — concurrently
//! across connections — while inserts and deletes take the exclusive
//! lock. Adjacent read requests pipelined on one connection are
//! coalesced into a single [`sr_exec::run_query_batch`] fan-out, whose
//! merged metrics snapshot is folded into the service-lifetime
//! recorder.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use sr_obs::StatsRecorder;
use sr_query::{QuerySpec, SpatialIndex};
use sr_wire::{Decoded, RemoteError, Request, Response, WireError};

use crate::error::ServeError;

// srlint: ordering -- serve-wide control plane: `shutdown` is a SeqCst flag so a Shutdown observed by any connection thread is seen by the accept loop and every poll loop at their next check; `active` is a SeqCst admission counter whose increment must not reorder around the capacity test. No data is published through these atomics — the index itself is behind the RwLock.

/// How long a connection thread blocks in `read` before re-checking
/// the shutdown flag. Bounds shutdown latency, not throughput: bytes
/// arriving earlier wake the read immediately.
const POLL: Duration = Duration::from_millis(50);

/// Upper bound on one response write. A peer that stops draining its
/// socket loses the connection instead of pinning a worker forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// Tunables for [`Server::start`]. The CLI maps `srtool serve` flags
/// onto this one-to-one.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (port 0 picks one).
    pub addr: String,
    /// Worker threads for one coalesced query batch.
    pub threads: usize,
    /// Admission cap: connections beyond this are answered with a
    /// typed `Overloaded` error and closed.
    pub max_conns: usize,
    /// Most requests coalesced into one batch per connection round.
    pub max_batch: usize,
    /// Largest accepted frame body in bytes.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_conns: 64,
            max_batch: 128,
            max_body: sr_wire::DEFAULT_MAX_BODY,
        }
    }
}

/// State shared between the accept loop and every connection thread.
// srlint: send-sync -- shared across the accept loop and per-connection workers behind an Arc; the index is serialized by the RwLock, counters are atomics, the recorder is internally atomic, and cfg/local are fixed at construction and only read afterwards
struct Shared {
    index: sr_pager::RwLock<Box<dyn SpatialIndex>>,
    recorder: StatsRecorder,
    shutdown: AtomicBool,
    active: AtomicU64,
    cfg: ServeConfig,  // srlint: guarded-by(owner)
    local: SocketAddr, // srlint: guarded-by(owner)
}

/// A running query service. Dropping the handle does not stop it; call
/// [`Server::wait`] to block until a `Shutdown` request (or
/// [`Server::stop`]) has drained it.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<thread::JoinHandle<Result<(), ServeError>>>,
}

impl Server {
    /// Bind `cfg.addr` and start serving `index`. Returns once the
    /// listener is live; queries are answered on background threads.
    pub fn start(index: Box<dyn SpatialIndex>, cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|source| ServeError::Bind {
            addr: cfg.addr.clone(),
            source,
        })?;
        let local = listener.local_addr().map_err(ServeError::Io)?;
        let shared = Arc::new(Shared {
            index: sr_pager::RwLock::new(index),
            recorder: StatsRecorder::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            cfg,
            local,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local
    }

    /// Request shutdown from the owning side, as if a `Shutdown` frame
    /// had arrived: stop admitting, drain, flush. Pair with
    /// [`Server::wait`].
    pub fn stop(&self) {
        begin_shutdown(&self.shared);
    }

    /// Block until the service has shut down and the index is flushed.
    /// After an error-free `wait`, reopening the index replays zero
    /// WAL frames.
    pub fn wait(mut self) -> Result<(), ServeError> {
        match self.accept.take() {
            Some(handle) => match handle.join() {
                Ok(result) => result,
                Err(_) => Err(ServeError::Protocol("accept loop panicked".to_string())),
            },
            None => Ok(()),
        }
    }
}

/// Accept until shutdown, then drain workers and flush the index.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) -> Result<(), ServeError> {
    let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up self-connect, or a client racing shutdown:
            // either way admissions are closed.
            drop(stream);
            break;
        }
        reap(&mut workers);
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        let max = shared.cfg.max_conns as u64;
        if active > max {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            refuse(stream, active, max);
            continue;
        }
        let conn_shared = Arc::clone(shared);
        workers.push(thread::spawn(move || {
            serve_conn(&conn_shared, stream);
            conn_shared.active.fetch_sub(1, Ordering::SeqCst);
        }));
    }
    for handle in workers {
        let _ = handle.join();
    }
    // All workers are gone, so the exclusive lock is immediate; flush
    // checkpoints the pager and truncates the WAL, making the
    // subsequent open replay-free.
    let guard = shared.index.write();
    guard.flush().map_err(ServeError::Index)
}

/// Join finished workers so the handle list stays bounded under churn.
fn reap(workers: &mut Vec<thread::JoinHandle<()>>) {
    let mut live = Vec::with_capacity(workers.len());
    for handle in workers.drain(..) {
        if handle.is_finished() {
            let _ = handle.join();
        } else {
            live.push(handle);
        }
    }
    *workers = live;
}

/// Answer an over-capacity connection with a typed `Overloaded` frame
/// and close it. Best-effort: the refusal itself must never block the
/// accept loop.
fn refuse(mut stream: TcpStream, active: u64, max: u64) {
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let resp = Response::Error(RemoteError::Overloaded { active, max });
    if let Ok(bytes) = sr_wire::encode_response(&resp) {
        let _ = stream.write_all(&bytes);
    }
}

/// Flip the shutdown flag and wake the accept loop out of `accept()`
/// with a throwaway self-connection.
fn begin_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(shared.local);
}

/// What the connection loop should do after a processed batch.
enum Flow {
    Continue,
    Close,
    Shutdown,
}

/// Serve one connection until EOF, error, or shutdown. Every complete
/// frame is answered in order; buffered requests are drained before
/// the shutdown flag closes the connection.
fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let mut batch: Vec<Request> = Vec::new();
        loop {
            if batch.len() >= shared.cfg.max_batch.max(1) {
                break;
            }
            match sr_wire::decode_request(&buf, shared.cfg.max_body) {
                Ok(Decoded::Frame { msg, consumed }) => {
                    buf.drain(..consumed);
                    batch.push(msg);
                }
                Ok(Decoded::Incomplete) => break,
                Err(WireError::TooLarge { len, max }) => {
                    let resp = Response::Error(RemoteError::TooLarge { len, max });
                    let _ = write_response(&mut stream, &resp);
                    return;
                }
                Err(WireError::Corrupt { detail }) => {
                    let resp = Response::Error(RemoteError::BadRequest(format!(
                        "corrupt frame: {detail}"
                    )));
                    let _ = write_response(&mut stream, &resp);
                    return;
                }
            }
        }
        if !batch.is_empty() {
            match process_batch(shared, &mut stream, &batch) {
                Flow::Continue => continue,
                Flow::Close => return,
                Flow::Shutdown => {
                    begin_shutdown(shared);
                    return;
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(chunk.get(..n).unwrap_or(&[])),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Answer one decoded batch in request order. Maximal runs of k-NN and
/// range requests are coalesced into a single `sr-exec` fan-out;
/// writes and stats are answered individually.
fn process_batch(shared: &Shared, stream: &mut TcpStream, batch: &[Request]) -> Flow {
    let mut i = 0usize;
    while i < batch.len() {
        let Some(req) = batch.get(i) else { break };
        if matches!(req, Request::Knn { .. } | Request::Range { .. }) {
            let mut j = i;
            let mut specs: Vec<QuerySpec<'_>> = Vec::new();
            while let Some(run) = batch.get(j) {
                match run {
                    Request::Knn { query, k } => specs.push(QuerySpec::knn(query, *k as usize)),
                    Request::Range { query, radius } => {
                        specs.push(QuerySpec::range(query, *radius));
                    }
                    _ => break,
                }
                j += 1;
            }
            for resp in run_reads(shared, &specs, batch, i, j) {
                if write_response(stream, &resp).is_err() {
                    return Flow::Close;
                }
            }
            i = j;
            continue;
        }
        let resp = match req {
            Request::Insert { .. } | Request::Delete { .. } => {
                let mut guard = shared.index.write();
                sr_wire::execute(req, guard.as_mut(), &shared.recorder)
            }
            Request::Stats => {
                let guard = shared.index.read();
                Response::Stats {
                    json: sr_wire::stats_json_with(guard.as_ref(), &shared.recorder.snapshot()),
                }
            }
            Request::Shutdown => Response::Ack { n: 0 },
            other => {
                let guard = shared.index.read();
                sr_wire::execute_read(other, guard.as_ref(), &shared.recorder)
            }
        };
        let closing = matches!(req, Request::Shutdown);
        if write_response(stream, &resp).is_err() {
            return Flow::Close;
        }
        if closing {
            return Flow::Shutdown;
        }
        i += 1;
    }
    Flow::Continue
}

/// Answer `batch[start..end]` (all k-NN/range, pre-lowered to `specs`)
/// under one shared read lock. Two or more queries go through the
/// `sr-exec` pool as one batch; if the pool rejects the batch, fall
/// back to per-request execution so each request still gets its own
/// typed answer.
fn run_reads(
    shared: &Shared,
    specs: &[QuerySpec<'_>],
    batch: &[Request],
    start: usize,
    end: usize,
) -> Vec<Response> {
    let guard = shared.index.read();
    if specs.len() > 1 {
        if let Ok(out) = sr_exec::run_query_batch(guard.as_ref(), specs, shared.cfg.threads) {
            shared.recorder.absorb(&out.metrics);
            return out
                .results
                .iter()
                .map(|rows| sr_wire::rows_response(rows))
                .collect();
        }
    }
    batch
        .get(start..end)
        .unwrap_or(&[])
        .iter()
        .map(|req| sr_wire::execute_read(req, guard.as_ref(), &shared.recorder))
        .collect()
}

/// Encode and send one response. An unencodable payload (e.g. a rows
/// body past the frame size limit) degrades to an in-band `TooLarge`
/// error so the client always sees one response per request.
fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let bytes = match sr_wire::encode_response(resp) {
        Ok(bytes) => bytes,
        Err(WireError::TooLarge { len, max }) => {
            let fallback = Response::Error(RemoteError::TooLarge { len, max });
            sr_wire::encode_response(&fallback)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
        }
        Err(e) => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            ))
        }
    };
    stream.write_all(&bytes)
}
