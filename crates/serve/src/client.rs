//! Blocking client for the query service: one TCP connection, typed
//! calls, and a pipelining helper that lets the server coalesce.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;

use sr_wire::{Decoded, Request, Response, Row};

use crate::error::ServeError;

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

/// A blocking connection to a [`Server`](crate::Server).
///
/// The typed helpers ([`Client::knn`], [`Client::insert`], ...) send
/// one request and demand the matching response kind; a typed server
/// error comes back as [`ServeError::Remote`]. [`Client::pipeline`]
/// writes a whole batch before reading any response — the shape the
/// server coalesces into one `sr-exec` fan-out.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    max_body: usize,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:7878`).
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            buf: Vec::new(),
            max_body: sr_wire::DEFAULT_MAX_BODY,
        })
    }

    /// Send one request frame without waiting for the response.
    pub fn send(&mut self, req: &Request) -> Result<(), ServeError> {
        let bytes = sr_wire::encode_request(req)?;
        self.stream.write_all(&bytes).map_err(ServeError::Io)
    }

    /// Read the next response frame, blocking until it is complete.
    pub fn recv(&mut self) -> Result<Response, ServeError> {
        let mut chunk = vec![0u8; READ_CHUNK];
        loop {
            match sr_wire::decode_response(&self.buf, self.max_body)? {
                Decoded::Frame { msg, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(msg);
                }
                Decoded::Incomplete => {}
            }
            let n = self.stream.read(&mut chunk).map_err(ServeError::Io)?;
            if n == 0 {
                return Err(ServeError::Closed);
            }
            self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
        }
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServeError> {
        self.send(req)?;
        self.recv()
    }

    /// Send every request before reading any response; responses come
    /// back in request order. Adjacent k-NN/range requests in `reqs`
    /// reach the server as one coalescible run.
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ServeError> {
        let mut bytes = Vec::new();
        for req in reqs {
            bytes.extend_from_slice(&sr_wire::encode_request(req)?);
        }
        self.stream.write_all(&bytes).map_err(ServeError::Io)?;
        reqs.iter().map(|_| self.recv()).collect()
    }

    /// k nearest neighbors of `query`, nearest first.
    pub fn knn(&mut self, query: &[f32], k: u32) -> Result<Vec<Row>, ServeError> {
        let req = Request::Knn {
            query: query.to_vec(),
            k,
        };
        match self.call(&req)? {
            Response::Rows(rows) => Ok(rows),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// All points within `radius` of `query`, nearest first.
    pub fn range(&mut self, query: &[f32], radius: f64) -> Result<Vec<Row>, ServeError> {
        let req = Request::Range {
            query: query.to_vec(),
            radius,
        };
        match self.call(&req)? {
            Response::Rows(rows) => Ok(rows),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// Insert one point.
    pub fn insert(&mut self, point: &[f32], data: u64) -> Result<(), ServeError> {
        let req = Request::Insert {
            point: point.to_vec(),
            data,
        };
        match self.call(&req)? {
            Response::Ack { .. } => Ok(()),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!("expected ack, got {other:?}"))),
        }
    }

    /// Delete one `(point, data)` entry; `Ok(true)` if it existed.
    pub fn delete(&mut self, point: &[f32], data: u64) -> Result<bool, ServeError> {
        let req = Request::Delete {
            point: point.to_vec(),
            data,
        };
        match self.call(&req)? {
            Response::Ack { n } => Ok(n > 0),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!("expected ack, got {other:?}"))),
        }
    }

    /// The service stats document: `srtool stats --json` plus a
    /// `"metrics"` member with service-lifetime query counters.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats { json } => Ok(json),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Ack { .. } => Ok(()),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!("expected ack, got {other:?}"))),
        }
    }

    /// Ask the server to drain, flush, and exit. The acknowledgement
    /// arrives before the listener closes.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Shutdown)? {
            Response::Ack { .. } => Ok(()),
            Response::Error(e) => Err(ServeError::Remote(e)),
            other => Err(ServeError::Protocol(format!("expected ack, got {other:?}"))),
        }
    }
}
