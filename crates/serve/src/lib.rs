//! TCP query service for the SR-tree reproduction.
//!
//! `sr-serve` puts an index behind a socket: a [`Server`] owns one
//! opened [`SpatialIndex`](sr_query::SpatialIndex), accepts framed
//! [`sr_wire`] requests over plain TCP (standard library only — no
//! async runtime, no protocol dependencies), and answers every frame
//! with exactly one typed response. The interpretation of a request is
//! *not* defined here — it is [`sr_wire::execute`], the same entry
//! point the offline CLI uses, so a served answer and an offline
//! answer for the same index state are byte-identical.
//!
//! What this crate adds on top of the wire layer:
//!
//! * **Threading** — one accept loop, one thread per admitted
//!   connection. Adjacent k-NN/range requests pipelined on one
//!   connection are coalesced into a single [`sr_exec::run_query_batch`]
//!   fan-out under one shared read lock.
//! * **Admission control** — at most `max_conns` connections are
//!   served; the next one is answered with a typed
//!   [`RemoteError::Overloaded`](sr_wire::RemoteError::Overloaded)
//!   frame and closed. Overload is always an answer, never a silent
//!   drop or an unbounded queue.
//! * **Graceful shutdown** — a `Shutdown` request acknowledges, stops
//!   admissions, drains in-flight connections, then flushes the index
//!   under the write lock so the WAL checkpoints and a subsequent open
//!   replays zero frames. (Pure-std code cannot catch SIGTERM; abrupt
//!   kills are instead covered by the pager's WAL crash recovery.)
//! * **Service stats** — a `Stats` request answers the same JSON
//!   document as `srtool stats --json` plus a `"metrics"` member
//!   carrying the service-lifetime query counters, folded in from
//!   every batch via [`StatsRecorder::absorb`](sr_obs::StatsRecorder).
//!
//! [`Client`] is the matching blocking connector the CLI `client`
//! subcommand and the benches drive; its [`Client::pipeline`] sends a
//! whole batch before reading any response, which is what lets the
//! server coalesce.

#![forbid(unsafe_code)]

mod client;
mod error;
mod server;

pub use client::Client;
pub use error::ServeError;
pub use server::{ServeConfig, Server};
