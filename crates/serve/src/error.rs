//! Everything that can go wrong starting, running, or talking to a
//! query server. Client-side helpers surface the server's typed
//! [`RemoteError`] answers as [`ServeError::Remote`], so "the server
//! said no" and "the socket broke" stay distinguishable.

use std::fmt;

use sr_query::IndexError;
use sr_wire::{RemoteError, WireError};

/// Error type for [`Server`](crate::Server) and [`Client`](crate::Client).
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listen address failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
    /// A socket read or write failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a frame.
    Wire(WireError),
    /// The server answered with a typed error.
    Remote(RemoteError),
    /// The connection closed before a full response arrived.
    Closed,
    /// The server answered with an unexpected response kind.
    Protocol(String),
    /// Flushing the index during shutdown failed.
    Index(IndexError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "wire error: {e}"),
            ServeError::Remote(e) => write!(f, "server error: {e}"),
            ServeError::Closed => write!(f, "connection closed before a full response arrived"),
            ServeError::Protocol(what) => write!(f, "protocol error: {what}"),
            ServeError::Index(e) => write!(f, "index error during shutdown: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Bind { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::Wire(e) => Some(e),
            ServeError::Remote(e) => Some(e),
            ServeError::Index(e) => Some(e),
            ServeError::Closed | ServeError::Protocol(_) => None,
        }
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> Self {
        ServeError::Wire(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
