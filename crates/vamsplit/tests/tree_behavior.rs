//! Behavioral tests of the VAMSplit R-tree bulk build.

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec};
use sr_geometry::Point;
use sr_pager::PageFile;
use sr_query::brute_force_knn;
use sr_vamsplit::{verify, VamTree};

fn with_ids(points: Vec<Point>) -> Vec<(Point, u64)> {
    points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect()
}

fn build(points: &[Point], page: usize) -> VamTree {
    VamTree::build_from(
        PageFile::create_in_memory(page).unwrap(),
        with_ids(points.to_vec()),
        points[0].dim(),
        64,
    )
    .unwrap()
}

fn assert_knn_matches(tree: &VamTree, points: &[Point], queries: &[Point], k: usize) {
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in queries {
        let got = tree.knn(q.coords(), k).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q.coords(), k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist2 - w.dist2).abs() < 1e-9);
        }
    }
}

#[test]
fn build_produces_valid_packed_tree() {
    let pts = uniform(1000, 4, 11);
    let t = build(&pts, 1024);
    let report = verify::check(&t).unwrap();
    assert_eq!(report.points, 1000);
    // The VAMSplit guarantee: nearly all leaves completely full.
    assert!(
        report.full_leaves * 10 >= report.leaves * 8,
        "only {}/{} leaves full",
        report.full_leaves,
        report.leaves
    );
}

#[test]
fn knn_matches_brute_force_uniform() {
    let pts = uniform(900, 8, 5);
    let t = build(&pts, 2048);
    let queries = sr_dataset::sample_queries(&pts, 20, 3);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn knn_matches_brute_force_clustered() {
    let pts = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 60,
            max_radius: 0.05,
        },
        6,
        9,
    );
    let t = build(&pts, 2048);
    let queries = sr_dataset::sample_queries(&pts, 20, 4);
    assert_knn_matches(&t, &pts, &queries, 10);
}

#[test]
fn knn_matches_brute_force_histograms() {
    let pts = real_sim(600, 16, 21);
    let t = build(&pts, 8192);
    let queries = sr_dataset::sample_queries(&pts, 10, 8);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn range_matches_brute_force() {
    let pts = uniform(700, 4, 23);
    let t = build(&pts, 1024);
    let flat: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for (qi, r) in [(0usize, 0.1f64), (100, 0.3), (250, 0.6)] {
        let q = pts[qi].coords();
        let got = t.range(q, r).unwrap();
        let want = sr_query::brute_force_range(flat.iter().copied(), q, r);
        assert_eq!(
            got.iter().map(|n| n.data).collect::<Vec<_>>(),
            want.iter().map(|n| n.data).collect::<Vec<_>>()
        );
    }
}

#[test]
fn contains_finds_every_point() {
    let pts = uniform(500, 5, 31);
    let t = build(&pts, 1024);
    for (i, p) in pts.iter().enumerate() {
        assert!(t.contains(p, i as u64).unwrap());
    }
}

#[test]
fn empty_build() {
    let t =
        VamTree::build_from(PageFile::create_in_memory(1024).unwrap(), Vec::new(), 3, 64).unwrap();
    assert!(t.is_empty());
    assert!(t.knn(&[0.0, 0.0, 0.0], 5).unwrap().is_empty());
    verify::check(&t).unwrap();
}

#[test]
fn single_point_build() {
    let t = VamTree::build_from(
        PageFile::create_in_memory(1024).unwrap(),
        vec![(Point::new(vec![1.0f32, 2.0]), 7)],
        2,
        64,
    )
    .unwrap();
    assert_eq!(t.len(), 1);
    assert_eq!(t.height(), 1);
    let hits = t.knn(&[0.0, 0.0], 1).unwrap();
    assert_eq!(hits[0].data, 7);
}

#[test]
fn height_is_minimal_for_packed_tree() {
    // 1000 points, max_leaf/max_node from a 1 KiB page: height must be
    // the smallest h with max_leaf * max_node^(h-1) >= 1000.
    let pts = uniform(1000, 4, 37);
    let t = build(&pts, 1024);
    let ml = t.params().max_leaf as u64;
    let mn = t.params().max_node as u64;
    let mut h = 1u32;
    let mut cap = ml;
    while cap < 1000 {
        cap *= mn;
        h += 1;
    }
    assert_eq!(t.height(), h);
}

#[test]
fn persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sr-vam-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.pages");
    let pts = uniform(400, 6, 59);
    {
        let t = VamTree::build_at(&path, with_ids(pts.clone()), 6).unwrap();
        t.flush().unwrap();
    }
    {
        let t = VamTree::open(&path).unwrap();
        assert_eq!(t.len(), 400);
        verify::check(&t).unwrap();
        let queries = sr_dataset::sample_queries(&pts, 5, 61);
        assert_knn_matches(&t, &pts, &queries, 9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dimension_mismatch_is_an_error() {
    let bad = vec![(Point::new(vec![1.0f32, 2.0, 3.0]), 0)];
    assert!(VamTree::build_from(PageFile::create_in_memory(1024).unwrap(), bad, 2, 64).is_err());
    let t =
        VamTree::build_from(PageFile::create_in_memory(1024).unwrap(), Vec::new(), 2, 64).unwrap();
    assert!(t.knn(&[0.0, 0.0, 0.0], 1).is_err());
}

#[test]
fn fewer_leaves_than_dynamic_trees_would_need() {
    // Full packing: leaves == ceil(n / max_leaf).
    let pts = uniform(1000, 4, 71);
    let t = build(&pts, 1024);
    let ml = t.params().max_leaf as u64;
    assert_eq!(t.num_leaves().unwrap(), 1000u64.div_ceil(ml));
}
