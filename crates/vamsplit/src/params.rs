//! Capacity parameters for the VAMSplit R-tree — entry layout identical
//! to the R\*-tree (rectangle + child pointer), 30 node entries and 12
//! leaf entries at `D = 16` with 8 KiB pages.

/// Per-node header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// Capacity parameters of a VAMSplit R-tree. Static bulk build packs
/// pages fully, so no minimum fill is defined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VamParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in an internal node.
    pub max_node: usize,
    /// Maximum entries in a leaf.
    pub max_leaf: usize,
    /// Unused for the static build; present so the shared node codec can
    /// stay identical to the R\*-tree's.
    pub min_node: usize,
    /// See `min_node`.
    pub min_leaf: usize,
}

impl VamParams {
    /// Derive parameters from the usable page payload.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least 2 entries per page kind,
    /// or if `data_area < 8`.
    #[allow(clippy::panic)] // documented contract panic; fallible callers use try_derive
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        match Self::try_derive(page_capacity, dim, data_area) {
            Some(p) => p,
            // srlint: allow(panic) -- documented contract panic on
            // construction-time configuration; fallible callers (the
            // on-disk open path) go through `try_derive`.
            None => panic!(
                "invalid parameters: page_capacity={page_capacity} dim={dim} \
                 data_area={data_area} (need dim > 0, data_area >= 8, and at \
                 least 2 entries per node and leaf)"
            ),
        }
    }

    /// Non-panicking variant of [`VamParams::derive`] for parameters read
    /// back from disk, where every precondition violation is a corruption
    /// symptom rather than a caller bug: returns `None` wherever `derive`
    /// would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(VamParams {
            dim,
            data_area,
            max_node,
            max_leaf,
            min_node: 1,
            min_leaf: 1,
        })
    }

    /// Bytes of one internal-node entry on disk.
    pub fn node_entry_bytes(dim: usize) -> usize {
        2 * 8 * dim + 8
    }

    /// Bytes of one leaf entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_rstar_capacities() {
        let p = VamParams::derive(8187, 16, 512);
        assert_eq!(p.max_node, 30);
        assert_eq!(p.max_leaf, 12);
    }
}
