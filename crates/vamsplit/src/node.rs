//! In-memory node representation and its page codec.

use sr_geometry::{bounding_rect_of_points, Point, Rect};
use sr_pager::{put_leaf_columns, LeafColumns, PageCodec, PageId, PageReader};

use crate::error::{Result, TreeError};
use crate::params::{VamParams, NODE_HEADER};

/// One point stored in a leaf.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub point: Point,
    pub data: u64,
}

/// One child reference stored in an internal node.
#[derive(Clone, Debug)]
pub(crate) struct InnerEntry {
    pub rect: Rect,
    pub child: PageId,
}

/// A materialized node. `level` 0 is the leaf level.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Inner {
        level: u16,
        entries: Vec<InnerEntry>,
    },
}

impl Node {
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// Exact minimum bounding rectangle of this node's entries.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] for an empty node — reachable from a
    /// corrupted page, never from a well-formed tree (the empty-root case
    /// is special-cased in the tree).
    pub fn mbr(&self) -> Result<Rect> {
        match self {
            Node::Leaf(entries) => {
                bounding_rect_of_points(entries.iter().map(|e| e.point.coords()))
                    .ok_or_else(|| TreeError::Corrupt("MBR of an empty leaf".into()))
            }
            Node::Inner { entries, .. } => {
                let mut it = entries.iter();
                let first = it
                    .next()
                    .ok_or_else(|| TreeError::Corrupt("MBR of an empty node".into()))?;
                let mut r = first.rect.clone();
                for e in it {
                    r.expand_to_rect(&e.rect);
                }
                Ok(r)
            }
        }
    }

    /// Serialize into a page payload.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] when the node violates the on-disk format's
    /// field widths or the encoded entries overrun `capacity`.
    pub fn encode(&self, params: &VamParams, capacity: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; capacity];
        let mut c = PageCodec::new(&mut buf);
        match self {
            Node::Leaf(entries) => {
                debug_assert!(entries.len() <= params.max_leaf + 1);
                // Columnar (dimension-major) layout shared by every index
                // crate — same total bytes as the old row-major form, so
                // the fanout arithmetic is untouched.
                let refs: Vec<(&[f32], u64)> =
                    entries.iter().map(|e| (e.point.coords(), e.data)).collect();
                put_leaf_columns(&mut c, params.dim, params.data_area, &refs)?;
            }
            Node::Inner { entries, .. } => {
                debug_assert!(entries.len() <= params.max_node + 1);
                c.put_u16(self.level())?;
                let n = u16::try_from(self.len()).map_err(|_| {
                    TreeError::Corrupt(format!("{} entries overflow the u16 count", self.len()))
                })?;
                c.put_u16(n)?;
                for e in entries {
                    c.put_coords(e.rect.min())?;
                    c.put_coords(e.rect.max())?;
                    c.put_u64(e.child)?;
                }
            }
        }
        let len = c.pos();
        buf.truncate(len);
        Ok(buf)
    }

    /// Deserialize from a page payload, validating every field whose
    /// misvalue would later feed a panicking constructor: coordinates must
    /// be finite, rectangle bounds ordered per axis.
    pub fn decode(payload: &[u8], params: &VamParams) -> Result<Node> {
        if payload.len() < NODE_HEADER {
            return Err(TreeError::NotThisIndex("node page too short".into()));
        }
        let mut c = PageReader::new(payload);
        let level = c.get_u16()?;
        let n = usize::from(c.get_u16()?);
        if level == 0 {
            let need = n * VamParams::leaf_entry_bytes(params.dim, params.data_area);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated leaf page".into()));
            }
            let cols = LeafColumns::parse(payload, params.dim)?;
            let mut entries = Vec::with_capacity(n);
            let mut coords = Vec::with_capacity(params.dim);
            for (i, data) in cols.data_ids().enumerate() {
                cols.point_into(i, &mut coords)?;
                if !all_finite(&coords) {
                    return Err(TreeError::Corrupt("non-finite leaf coordinate".into()));
                }
                // On-disk bytes are untrusted input: the fallible
                // constructor turns a zero-dimensional page into a typed
                // error instead of a panic.
                let point = Point::try_new(coords.as_slice())
                    .map_err(|e| TreeError::Corrupt(e.to_string()))?;
                entries.push(LeafEntry { point, data });
            }
            Ok(Node::Leaf(entries))
        } else {
            let need = n * VamParams::node_entry_bytes(params.dim);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated node page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let min = c.get_coords(params.dim)?;
                let max = c.get_coords(params.dim)?;
                let child = c.get_u64()?;
                if !all_finite(&min) || !all_finite(&max) {
                    return Err(TreeError::Corrupt(
                        "non-finite rectangle bound on disk".into(),
                    ));
                }
                if !min.iter().zip(max.iter()).all(|(lo, hi)| lo <= hi) {
                    return Err(TreeError::Corrupt(
                        "inverted bounding rectangle on disk".into(),
                    ));
                }
                entries.push(InnerEntry {
                    rect: Rect::new(min, max),
                    child,
                });
            }
            Ok(Node::Inner { level, entries })
        }
    }
}

/// True when every coordinate is a finite float (rejects NaN and ±∞, both
/// of which would poison distance arithmetic downstream).
fn all_finite(coords: &[f32]) -> bool {
    coords.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> VamParams {
        VamParams::derive(8187, 4, 512)
    }

    #[test]
    fn leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![1.0, 2.0, 3.0, 4.0]),
                data: 42,
            },
            LeafEntry {
                point: Point::new(vec![-1.0, 0.5, 0.0, 9.0]),
                data: u64::MAX,
            },
        ]);
        let bytes = node.encode(&p, 8187).unwrap();
        let back = Node::decode(&bytes, &p).unwrap();
        assert!(back.is_leaf());
        assert_eq!(back.len(), 2);
        if let Node::Leaf(entries) = back {
            assert_eq!(entries[0].point.coords(), &[1.0, 2.0, 3.0, 4.0]);
            assert_eq!(entries[0].data, 42);
            assert_eq!(entries[1].data, u64::MAX);
        }
    }

    #[test]
    fn inner_roundtrip() {
        let p = params();
        let node = Node::Inner {
            level: 3,
            entries: vec![InnerEntry {
                rect: Rect::new(vec![0.0, 0.0, 0.0, 0.0], vec![1.0, 2.0, 3.0, 4.0]),
                child: 77,
            }],
        };
        let bytes = node.encode(&p, 8187).unwrap();
        let back = Node::decode(&bytes, &p).unwrap();
        assert_eq!(back.level(), 3);
        if let Node::Inner { entries, .. } = back {
            assert_eq!(entries[0].child, 77);
            assert_eq!(entries[0].rect.max(), &[1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![]);
        let bytes = node.encode(&p, 8187).unwrap();
        let back = Node::decode(&bytes, &p).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.is_leaf());
    }

    #[test]
    fn mbr_of_leaf_and_inner() {
        let leaf = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![0.0, 5.0]),
                data: 0,
            },
            LeafEntry {
                point: Point::new(vec![3.0, -1.0]),
                data: 1,
            },
        ]);
        let r = leaf.mbr().unwrap();
        assert_eq!(r.min(), &[0.0, -1.0]);
        assert_eq!(r.max(), &[3.0, 5.0]);

        let inner = Node::Inner {
            level: 1,
            entries: vec![
                InnerEntry {
                    rect: Rect::new(vec![0.0], vec![1.0]),
                    child: 1,
                },
                InnerEntry {
                    rect: Rect::new(vec![5.0], vec![9.0]),
                    child: 2,
                },
            ],
        };
        let r = inner.mbr().unwrap();
        assert_eq!(r.min(), &[0.0]);
        assert_eq!(r.max(), &[9.0]);
    }

    #[test]
    fn decode_rejects_garbage() {
        let p = params();
        assert!(Node::decode(&[1], &p).is_err());
        // claims 100 entries but has no bytes
        let mut junk = vec![0u8; 4];
        junk[0] = 0;
        junk[2] = 100;
        assert!(Node::decode(&junk, &p).is_err());
    }
}
