//! The top-down VAMSplit bulk build.
//!
//! The point set is recursively partitioned on the dimension with the
//! highest **variance** at a split point near the median, rounded to a
//! multiple of the capacity of a full child subtree — so every chunk
//! except the last fills its disk blocks completely, guaranteeing the
//! minimum block count (§2.4 of the paper).

use sr_geometry::Point;
use sr_pager::PageId;

use sr_geometry::{bounding_rect_of_points, Rect};

use crate::error::{Result, TreeError};
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::tree::VamTree;

/// Build the tree structure for `points`, returning the root page id and
/// the height.
pub(crate) fn bulk_build(tree: &VamTree, mut points: Vec<(Point, u64)>) -> Result<(PageId, u32)> {
    let m_l = tree.params.max_leaf;
    let m_n = tree.params.max_node;
    if points.is_empty() {
        let root = tree.allocate_node(&Node::Leaf(Vec::new()))?;
        return Ok((root, 1));
    }
    // Smallest height h with M_l * M_n^(h-1) >= n.
    let mut height = 1u32;
    let mut cap = m_l as u64;
    while cap < points.len() as u64 {
        cap = cap.saturating_mul(m_n as u64);
        height += 1;
    }
    let (root, _) = build_rec(tree, &mut points, height)?;
    Ok((root, height))
}

/// Build a subtree of exactly `height` levels over `points`, returning
/// its page id and exact MBR.
fn build_rec(tree: &VamTree, points: &mut [(Point, u64)], height: u32) -> Result<(PageId, Rect)> {
    if height == 1 {
        debug_assert!(points.len() <= tree.params.max_leaf);
        debug_assert!(!points.is_empty());
        let mbr = bounding_rect_of_points(points.iter().map(|(p, _)| p.coords()))
            .ok_or_else(|| TreeError::Corrupt("bulk build produced an empty leaf chunk".into()))?;
        let entries: Vec<LeafEntry> = points
            .iter()
            .map(|(p, d)| LeafEntry {
                point: p.clone(),
                data: *d,
            })
            .collect();
        let id = tree.allocate_node(&Node::Leaf(entries))?;
        return Ok((id, mbr));
    }
    // Capacity of one full child subtree.
    let child_cap =
        (tree.params.max_leaf as u64 * (tree.params.max_node as u64).pow(height - 2)) as usize;
    let mut entries: Vec<InnerEntry> = Vec::new();
    vam_partition(points, child_cap, &mut |chunk| {
        let (child, rect) = build_rec(tree, chunk, height - 1)?;
        entries.push(InnerEntry { rect, child });
        Ok(())
    })?;
    debug_assert!(
        entries.len() <= tree.params.max_node,
        "chunking overflowed a node"
    );
    let mut it = entries.iter();
    let mut mbr = it
        .next()
        .ok_or_else(|| TreeError::Corrupt("bulk build produced an empty inner node".into()))?
        .rect
        .clone();
    for e in it {
        mbr.expand_to_rect(&e.rect);
    }
    let id = tree.allocate_node(&Node::Inner {
        level: (height - 1) as u16,
        entries,
    })?;
    Ok((id, mbr))
}

/// Recursively split `points` by variance-approximate-median planes until
/// every piece fits in `chunk_cap`, calling `emit` on each piece in
/// coordinate order.
fn vam_partition(
    points: &mut [(Point, u64)],
    chunk_cap: usize,
    emit: &mut impl FnMut(&mut [(Point, u64)]) -> Result<()>,
) -> Result<()> {
    let n = points.len();
    if n <= chunk_cap {
        return emit(points);
    }
    let dim = max_variance_dim(points);
    // Median rounded to a multiple of chunk_cap; both sides non-empty.
    let half = n / 2;
    let mut split = (half + chunk_cap / 2) / chunk_cap * chunk_cap;
    if split == 0 {
        split = chunk_cap;
    }
    if split >= n {
        split = (n - 1) / chunk_cap * chunk_cap;
        if split == 0 {
            split = chunk_cap.min(n - 1);
        }
    }
    points.sort_by(|a, b| a.0[dim].total_cmp(&b.0[dim]));
    let (left, right) = points.split_at_mut(split);
    vam_partition(left, chunk_cap, emit)?;
    vam_partition(right, chunk_cap, emit)
}

/// Dimension with the greatest coordinate variance.
fn max_variance_dim(points: &[(Point, u64)]) -> usize {
    let d = points[0].0.dim();
    let n = points.len() as f64;
    let mut best = 0usize;
    let mut best_var = f64::NEG_INFINITY;
    for i in 0..d {
        let mean: f64 = points.iter().map(|(p, _)| p[i] as f64).sum::<f64>() / n;
        let var: f64 = points
            .iter()
            .map(|(p, _)| {
                let t = p[i] as f64 - mean;
                t * t
            })
            .sum::<f64>();
        if var > best_var {
            best_var = var;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<(Point, u64)> {
        (0..n)
            .map(|i| {
                (
                    Point::new(vec![(i * 37 % 101) as f32, (i * 17 % 89) as f32]),
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn partition_produces_bounded_chunks_mostly_full() {
        let mut p = pts(1000);
        let mut sizes = Vec::new();
        vam_partition(&mut p, 64, &mut |chunk| {
            sizes.push(chunk.len());
            Ok(())
        })
        .unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s <= 64));
        // Full-utilization guarantee: at most one non-full chunk per
        // binary-split branch; for this size, the vast majority are full.
        let full = sizes.iter().filter(|&&s| s == 64).count();
        assert!(full >= sizes.len() - 3, "sizes: {sizes:?}");
    }

    #[test]
    fn partition_handles_tiny_inputs() {
        let mut p = pts(3);
        let mut total = 0;
        vam_partition(&mut p, 64, &mut |chunk| {
            total += chunk.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(total, 3);
    }

    #[test]
    fn max_variance_dim_finds_spread() {
        let p: Vec<(Point, u64)> = (0..10)
            .map(|i| (Point::new(vec![0.5, i as f32 * 10.0]), i as u64))
            .collect();
        assert_eq!(max_variance_dim(&p), 1);
    }
}
