//! Query plumbing for the bulk-built tree: the
//! [`sr_query::KnnSource`] implementation scoring regions with
//! rectangle `MINDIST` (identical to the R-tree family).

use sr_geometry::{dist2, rect_min_dist2_f64le};
use sr_obs::Recorder;
use sr_pager::{LeafColumns, PageId, PageReader};
use sr_query::{scan_leaf_columns, Expansion, KnnSource, LeafScan, Neighbor, QueryError};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::VamTree;

/// The allocation-free leaf fast path: score a parsed columnar view
/// with the shared kernels. The page read and the payload validation
/// stay in the caller — parsing untrusted bytes may fail with a
/// formatted diagnostic, but everything past this boundary must not
/// allocate, lock, or touch the store, and srlint's L10 pass enforces
/// exactly that.
// srlint: hot
fn scan_leaf_fast<N>(
    cols: &LeafColumns<'_>,
    query: &[f32],
    prune2: f64,
    scan: LeafScan,
    out: &mut Expansion<N>,
) -> Result<()> {
    scan_leaf_columns(cols, query, prune2, scan, out).map_err(|e| TreeError::Corrupt(e.to_string()))
}

struct Source<'a> {
    tree: &'a VamTree,
    scan: LeafScan,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        // Guard the `height - 1` below: an empty tree has nothing to
        // search, and a height of 0 (corrupt metadata) would underflow.
        if self.tree.is_empty() || self.tree.height == 0 {
            return Ok(None);
        }
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        prune2: f64,
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        if level > 0 {
            // Zero-copy inner expansion: score each child's bounding
            // rectangle straight off the page buffer instead of decoding
            // a per-expansion entry vector (the stored f64s are exact
            // widenings of the in-memory f32s, so the raw MINDIST is
            // bit-identical and the traversal is unchanged).
            let payload = self.tree.node_payload(id)?;
            let mut r = PageReader::new(&payload);
            let _level = r.get_u16()?;
            let n = r.get_u16()?;
            let dim = self.tree.params.dim;
            // The entry count came off the page: bound it by the bytes
            // actually present before it drives the read loop, so a
            // corrupt header fails here with one clear error instead of
            // partway through the entries.
            let need = usize::from(n) * (dim * 8 * 2 + 8);
            if need > r.remaining() {
                return Err(TreeError::Corrupt(format!(
                    "inner node claims {n} entries but only {} payload bytes remain",
                    r.remaining()
                )));
            }
            for _ in 0..n {
                let lo = r.get_bytes(dim * 8)?;
                let hi = r.get_bytes(dim * 8)?;
                let child = (r.get_u64()?, level - 1);
                let d2 = rect_min_dist2_f64le(lo, hi, query)
                    .map_err(|e| TreeError::Corrupt(e.to_string()))?;
                out.push_rect_branch(d2, child);
            }
            return Ok(());
        }
        if self.scan != LeafScan::Scalar {
            // Columnar fast path: score the leaf straight off the page
            // buffer, never materialising per-entry `Point`s. One
            // `pf.read` per expansion, same as the scalar path, so the
            // `leaf_expansions == leaf_reads` invariant holds unchanged.
            let payload = self.tree.leaf_payload(id)?;
            let cols = LeafColumns::parse(&payload, self.tree.params.dim)?;
            scan_leaf_fast(&cols, query, prune2, self.scan, out)?;
            return Ok(());
        }
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.push_point(dist2(e.point.coords(), query), e.data);
                }
            }
            Node::Inner { .. } => {
                return Err(TreeError::Corrupt("inner node page at leaf level".into()));
            }
        }
        Ok(())
    }
}

pub(crate) fn knn<R: Recorder + ?Sized>(
    tree: &VamTree,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    knn_with_scan(tree, query, k, LeafScan::default(), rec)
}

pub(crate) fn knn_with_scan<R: Recorder + ?Sized>(
    tree: &VamTree,
    query: &[f32],
    k: usize,
    scan: LeafScan,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_with(&Source { tree, scan }, query, k, rec)
}

pub(crate) fn range<R: Recorder + ?Sized>(
    tree: &VamTree,
    query: &[f32],
    radius: f64,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::range_with(
        &Source {
            tree,
            scan: LeafScan::default(),
        },
        query,
        radius,
        rec,
    )
    .map_err(|e| match e {
        QueryError::InvalidRadius(r) => TreeError::InvalidRadius(r),
        QueryError::Source(e) => e,
    })
}
