//! Structural-invariant checker for the VAMSplit R-tree: exact MBRs,
//! uniform leaf depth, fanout within page capacity, full point count,
//! and the static build's near-full block utilization.

use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::VamTree;

/// Summary of a verified tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Internal nodes visited.
    pub nodes: u64,
    /// Leaves visited.
    pub leaves: u64,
    /// Points counted.
    pub points: u64,
    /// Leaves filled to capacity (the VAMSplit guarantee makes this the
    /// overwhelming majority).
    pub full_leaves: u64,
}

/// Walk the whole tree, validating every structural invariant.
///
/// # Errors
/// [`TreeError::Corrupt`] naming the offending page and invariant;
/// [`TreeError::Pager`] when a page cannot be read at all.
pub fn check(tree: &VamTree) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    walk(tree, tree.root, (tree.height - 1) as u16, true, &mut report)?;
    if report.points != tree.len() {
        return Err(TreeError::Corrupt(format!(
            "metadata says {} points, tree holds {}",
            tree.len(),
            report.points
        )));
    }
    Ok(report)
}

fn walk(
    tree: &VamTree,
    id: PageId,
    level: u16,
    is_root: bool,
    report: &mut VerifyReport,
) -> Result<()> {
    let node = tree.read_node(id, level)?;
    let max = if node.is_leaf() {
        tree.params().max_leaf
    } else {
        tree.params().max_node
    };
    if node.len() > max {
        return Err(TreeError::Corrupt(format!(
            "page {id}: {} entries exceed capacity {max}",
            node.len()
        )));
    }
    if !is_root && node.len() == 0 {
        return Err(TreeError::Corrupt(format!(
            "page {id} is an empty non-root page"
        )));
    }
    match node {
        Node::Leaf(ref entries) => {
            report.leaves += 1;
            report.points += entries.len() as u64;
            if entries.len() == tree.params().max_leaf {
                report.full_leaves += 1;
            }
        }
        Node::Inner { entries, .. } => {
            report.nodes += 1;
            for e in &entries {
                let child = tree.read_node(e.child, level - 1)?;
                let mbr = child.mbr()?;
                if mbr != e.rect {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: stored rect {:?} differs from child {} MBR {:?}",
                        e.rect, e.child, mbr
                    )));
                }
                walk(tree, e.child, level - 1, false, report)?;
            }
        }
    }
    Ok(())
}
