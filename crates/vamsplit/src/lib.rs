//! The VAMSplit R-tree (White & Jain, SPIE 1996) — the *static*,
//! optimized baseline of the SR-tree paper (§2.4).
//!
//! Unlike the dynamic trees, the VAMSplit R-tree is bulk-built top-down
//! with full knowledge of the data set, in the style of the optimized
//! k-d tree: the point set is recursively divided by a plane on the
//! dimension with the highest **variance**, at a split point near the
//! median rounded to a multiple of the subtree capacity — the refinement
//! that "guarantees the minimum number of disk blocks to be used" (§2.4).
//! The paper finds it outperforms every dynamic structure on uniform
//! data, while the SR-tree edges it out on the real data set.
//!
//! The built tree answers queries exactly like an R-tree (rectangle
//! MINDIST); it supports no insertion or deletion — rebuild to change the
//! data, which is the honest cost of a static structure.
//!
//! ```
//! use sr_vamsplit::VamTree;
//! use sr_geometry::Point;
//!
//! let points: Vec<(Point, u64)> = (0..100)
//!     .map(|i| (Point::new(vec![i as f32, (i * 7 % 13) as f32]), i as u64))
//!     .collect();
//! let tree = VamTree::build_in_memory(points, 2, 8192).unwrap();
//! let hits = tree.knn(&[0.0, 0.0], 3).unwrap();
//! assert_eq!(hits[0].data, 0);
//! ```

#![forbid(unsafe_code)]
// Tree internals index into child/entry vectors whose bounds are
// maintained as structural invariants (checked by `verify`); the
// clippy index ban applies to the audited geometry/pager hot paths.
#![allow(clippy::indexing_slicing)]

mod build;
mod error;
mod node;
mod params;
mod search;
mod tree;
pub mod verify;

pub use error::{Result, TreeError};
pub use params::VamParams;
pub use tree::VamTree;

pub use sr_query::Neighbor;
