//! The public [`VamTree`] type — bulk-built, read-only.

use std::path::Path;

use sr_geometry::{Point, Rect};
use sr_pager::{PageCodec, PageFile, PageId, PageKind};
use sr_query::Neighbor;

use crate::build;
use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::params::VamParams;
use crate::search;

const META_MAGIC: u32 = 0x5641_4D54; // "VAMT"
/// Version 2: leaves are columnar (dimension-major). Version-1 files
/// are rejected rather than silently misread — the byte totals match,
/// but the entry layout moved.
const META_VERSION: u32 = 2;

/// A static VAMSplit R-tree, bulk-built from a complete data set.
// srlint: send-sync -- queries take &self and go through the internally synchronized PageFile; the tree is bulk-built before sharing, and params/root/height/count never change afterwards
pub struct VamTree {
    pub(crate) pf: PageFile,
    pub(crate) params: VamParams, // srlint: guarded-by(owner)
    pub(crate) root: PageId,      // srlint: guarded-by(owner)
    /// Number of levels; 1 means the root is a leaf.
    pub(crate) height: u32, // srlint: guarded-by(owner)
    pub(crate) count: u64,        // srlint: guarded-by(owner)
}

impl VamTree {
    /// Bulk-build over an in-memory page file.
    pub fn build_in_memory(
        points: Vec<(Point, u64)>,
        dim: usize,
        page_size: usize,
    ) -> Result<Self> {
        Self::build_from(PageFile::create_in_memory(page_size)?, points, dim, 512)
    }

    /// Bulk-build into a page file at `path` (8 KiB pages, 512-byte data
    /// areas, matching the paper).
    pub fn build_at(path: &Path, points: Vec<(Point, u64)>, dim: usize) -> Result<Self> {
        Self::build_from(PageFile::create(path)?, points, dim, 512)
    }

    /// Bulk-build over an empty [`PageFile`].
    pub fn build_from(
        pf: PageFile,
        points: Vec<(Point, u64)>,
        dim: usize,
        data_area: usize,
    ) -> Result<Self> {
        for (p, _) in &points {
            if p.dim() != dim {
                return Err(TreeError::DimensionMismatch {
                    expected: dim,
                    got: p.dim(),
                });
            }
        }
        let params = VamParams::derive(pf.capacity(), dim, data_area);
        let count = points.len() as u64;
        let mut tree = VamTree {
            pf,
            params,
            root: 0,
            height: 1,
            count,
        };
        let (root, height) = build::bulk_build(&tree, points)?;
        tree.root = root;
        tree.height = height;
        tree.save_meta()?;
        Ok(tree)
    }

    /// Reopen a tree previously built with [`VamTree::build_at`].
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_from(PageFile::open(path)?)
    }

    /// Reopen a tree from an already-open page file.
    pub fn open_from(pf: PageFile) -> Result<Self> {
        let mut meta = pf.user_meta();
        if meta.len() < 36 {
            return Err(TreeError::NotThisIndex("metadata too short".into()));
        }
        let mut c = PageCodec::new(&mut meta);
        if c.get_u32()? != META_MAGIC {
            return Err(TreeError::NotThisIndex("not a VAMSplit R-tree file".into()));
        }
        if c.get_u32()? != META_VERSION {
            return Err(TreeError::NotThisIndex(
                "unsupported VAMSplit R-tree version".into(),
            ));
        }
        let dim = c.get_u32()? as usize;
        let data_area = c.get_u32()? as usize;
        let root = c.get_u64()?;
        let height = c.get_u32()?;
        let count = c.get_u64()?;
        let params = VamParams::try_derive(pf.capacity(), dim, data_area).ok_or_else(|| {
            TreeError::NotThisIndex(format!(
                "stored parameters (dim {dim}, data area {data_area}) do not fit a {}-byte page",
                pf.capacity()
            ))
        })?;
        Ok(VamTree {
            pf,
            params,
            root,
            height,
            count,
        })
    }

    fn save_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; 36];
        let mut c = PageCodec::new(&mut buf);
        c.put_u32(META_MAGIC)?;
        c.put_u32(META_VERSION)?;
        c.put_u32(self.params.dim as u32)?;
        c.put_u32(self.params.data_area as u32)?;
        c.put_u64(self.root)?;
        c.put_u32(self.height)?;
        c.put_u64(self.count)?;
        self.pf.set_user_meta(&buf)?;
        Ok(())
    }

    /// Dimensionality of indexed points.
    pub fn dim(&self) -> usize {
        self.params.dim
    }

    /// Number of points in the tree.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Capacity parameters in force (Table 1).
    pub fn params(&self) -> &VamParams {
        &self.params
    }

    /// The underlying page file (I/O statistics, cache control).
    pub fn pager(&self) -> &PageFile {
        &self.pf
    }

    /// Flush all dirty pages and metadata.
    pub fn flush(&self) -> Result<()> {
        self.pf.flush()?;
        Ok(())
    }

    pub(crate) fn check_dim(&self, got: usize) -> Result<()> {
        if got != self.params.dim {
            return Err(TreeError::DimensionMismatch {
                expected: self.params.dim,
                got,
            });
        }
        Ok(())
    }

    /// Read a leaf's raw payload for the columnar scan — a zero-copy view
    /// into the buffer pool ([`sr_pager::PageBuf`]); the kernels score it
    /// without decoding entries.
    pub(crate) fn leaf_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Leaf)?)
    }

    /// Read an inner node's raw payload for the zero-copy bound scan —
    /// same zero-copy view as the leaf path, one logical read per
    /// expansion so `node_expansions == node_reads` holds unchanged.
    pub(crate) fn node_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Node)?)
    }

    pub(crate) fn read_node(&self, id: PageId, level: u16) -> Result<Node> {
        let kind = if level == 0 {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let payload = self.pf.read(id, kind)?;
        let node = Node::decode(&payload, &self.params)?;
        debug_assert_eq!(node.level(), level, "page {id} level mismatch");
        Ok(node)
    }

    pub(crate) fn allocate_node(&self, node: &Node) -> Result<PageId> {
        let kind = if node.is_leaf() {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let id = self.pf.allocate(kind)?;
        let payload = node.encode(&self.params, self.pf.capacity())?;
        self.pf.write(id, kind, &payload)?;
        Ok(id)
    }

    /// Whether an exact entry `(point, data)` is stored.
    pub fn contains(&self, point: &Point, data: u64) -> Result<bool> {
        self.check_dim(point.dim())?;
        fn walk(tree: &VamTree, id: PageId, level: u16, point: &Point, data: u64) -> Result<bool> {
            match tree.read_node(id, level)? {
                Node::Leaf(entries) => {
                    Ok(entries.iter().any(|e| e.point == *point && e.data == data))
                }
                Node::Inner { entries, .. } => {
                    for e in &entries {
                        if e.rect.contains_point(point.coords())
                            && walk(tree, e.child, level - 1, point, data)?
                        {
                            return Ok(true);
                        }
                    }
                    Ok(false)
                }
            }
        }
        if self.is_empty() || self.height == 0 {
            return Ok(false);
        }
        walk(self, self.root, (self.height - 1) as u16, point, data)
    }

    /// The `k` nearest neighbors of `query`, sorted by ascending distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.knn_with(query, k, &sr_obs::Noop)
    }

    /// [`VamTree::knn`] with a metrics recorder (node expansions, prune
    /// events, heap high-water — see `sr-obs`).
    pub fn knn_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn(self, query, k, rec)
    }

    /// [`VamTree::knn_with`] with an explicit leaf-scan kernel — the
    /// ablation knob for the columnar layout. All modes return
    /// bit-identical neighbors; they differ only in scan time (and in the
    /// `EarlyAbandons` counter the pruning mode reports).
    pub fn knn_scan_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        scan: sr_query::LeafScan,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn_with_scan(self, query, k, scan, rec)
    }

    /// Every point within `radius` of `query`. A negative or NaN radius
    /// is rejected with [`TreeError::InvalidRadius`].
    pub fn range(&self, query: &[f32], radius: f64) -> Result<Vec<Neighbor>> {
        self.range_with(query, radius, &sr_obs::Noop)
    }

    /// [`VamTree::range`] with a metrics recorder.
    pub fn range_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        radius: f64,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::range(self, query, radius, rec)
    }

    /// Bounding rectangles of all (non-empty) leaves.
    pub fn leaf_regions(&self) -> Result<Vec<Rect>> {
        let mut out = Vec::new();
        fn walk(tree: &VamTree, id: PageId, level: u16, out: &mut Vec<Rect>) -> Result<()> {
            let node = tree.read_node(id, level)?;
            match node {
                Node::Leaf(ref entries) => {
                    if !entries.is_empty() {
                        out.push(node.mbr()?);
                    }
                }
                Node::Inner { entries, level } => {
                    for e in entries {
                        walk(tree, e.child, level - 1, out)?;
                    }
                }
            }
            Ok(())
        }
        walk(self, self.root, (self.height - 1) as u16, &mut out)?;
        Ok(out)
    }

    /// Total number of leaf pages.
    pub fn num_leaves(&self) -> Result<u64> {
        fn walk(tree: &VamTree, id: PageId, level: u16) -> Result<u64> {
            if level == 0 {
                return Ok(1);
            }
            let node = tree.read_node(id, level)?;
            let mut n = 0;
            if let Node::Inner { entries, .. } = node {
                for e in entries {
                    n += walk(tree, e.child, level - 1)?;
                }
            }
            Ok(n)
        }
        walk(self, self.root, (self.height - 1) as u16)
    }
}

impl sr_query::SpatialIndex for VamTree {
    fn kind_name(&self) -> &'static str {
        "VAMSplit R-tree"
    }

    fn dim(&self) -> usize {
        VamTree::dim(self)
    }

    fn len(&self) -> u64 {
        VamTree::len(self)
    }

    fn height(&self) -> u32 {
        VamTree::height(self)
    }

    fn num_leaves(&self) -> std::result::Result<u64, sr_query::IndexError> {
        Ok(VamTree::num_leaves(self)?)
    }

    fn insert(
        &mut self,
        _point: &[f32],
        _data: u64,
    ) -> std::result::Result<(), sr_query::IndexError> {
        Err(sr_query::IndexError::Unsupported(
            "the VAMSplit R-tree is bulk-load only",
        ))
    }

    fn query(
        &self,
        spec: &sr_query::QuerySpec<'_>,
        rec: &dyn sr_obs::Recorder,
    ) -> std::result::Result<sr_query::QueryOutput, sr_query::IndexError> {
        let rows = match spec.shape {
            sr_query::QueryShape::Knn { k } => {
                VamTree::knn_scan_with(self, spec.point, k, spec.scan, rec)?
            }
            sr_query::QueryShape::Range { radius } => {
                VamTree::range_with(self, spec.point, radius, rec)?
            }
        };
        Ok(sr_query::QueryOutput::from_rows(rows))
    }

    fn pager(&self) -> &PageFile {
        VamTree::pager(self)
    }

    fn flush(&self) -> std::result::Result<(), sr_query::IndexError> {
        Ok(VamTree::flush(self)?)
    }

    fn verify(&self) -> std::result::Result<String, sr_query::IndexError> {
        let r = crate::verify::check(self)?;
        Ok(format!(
            "{} nodes, {} leaves ({} full), {} points",
            r.nodes, r.leaves, r.full_leaves, r.points
        ))
    }
}
