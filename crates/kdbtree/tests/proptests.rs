//! Property-based tests for the K-D-B-tree.

use proptest::prelude::*;
use sr_geometry::Point;
use sr_kdbtree::{verify, KdbTree};
use sr_pager::PageFile;
use sr_query::{brute_force_knn, brute_force_range};

fn arb_points(dim: usize, max_len: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(
        prop::collection::vec(-100.0f32..100.0, dim..=dim),
        1..max_len,
    )
}

fn build(points: &[Vec<f32>]) -> KdbTree {
    let dim = points[0].len();
    let mut t = KdbTree::create_from(PageFile::create_in_memory(1024), dim, 64).unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(Point::new(p.clone()), i as u64).unwrap();
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn knn_agrees_with_brute_force(points in arb_points(3, 120), k in 1usize..25) {
        let t = build(&points);
        verify::check(&t).unwrap();
        let flat: Vec<(&[f32], u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_slice(), i as u64))
            .collect();
        let q = &points[0];
        let got = t.knn(q, k).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g.dist2 - w.dist2).abs() < 1e-6);
        }
    }

    #[test]
    fn range_agrees_with_brute_force(points in arb_points(2, 100), radius in 0.0f64..150.0) {
        let t = build(&points);
        let flat: Vec<(&[f32], u64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.as_slice(), i as u64))
            .collect();
        let q = &points[points.len() / 2];
        let got = t.range(q, radius).unwrap();
        let want = brute_force_range(flat.iter().copied(), q, radius);
        let got_ids: Vec<u64> = got.iter().map(|n| n.data).collect();
        let want_ids: Vec<u64> = want.iter().map(|n| n.data).collect();
        prop_assert_eq!(got_ids, want_ids);
    }

    #[test]
    fn every_point_routes_to_itself(points in arb_points(4, 80)) {
        let t = build(&points);
        verify::check(&t).unwrap();
        for (i, p) in points.iter().enumerate() {
            prop_assert!(t.contains(&Point::new(p.clone()), i as u64).unwrap());
        }
    }
}
