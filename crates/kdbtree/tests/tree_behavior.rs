//! Behavioral tests of the K-D-B-tree.

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec};
use sr_geometry::Point;
use sr_kdbtree::{verify, KdbTree, TreeError};
use sr_pager::PageFile;
use sr_query::brute_force_knn;

const SMALL_PAGE: usize = 1024;

fn build(points: &[Point], page: usize) -> KdbTree {
    let mut t = KdbTree::create_from(
        PageFile::create_in_memory(page).unwrap(),
        points[0].dim(),
        64,
    )
    .unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

fn assert_knn_matches(tree: &KdbTree, points: &[Point], queries: &[Point], k: usize) {
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in queries {
        let got = tree.knn(q.coords(), k).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q.coords(), k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist2 - w.dist2).abs() < 1e-9);
        }
    }
}

#[test]
fn invariants_hold_during_growth() {
    let pts = uniform(600, 4, 11);
    let mut t =
        KdbTree::create_from(PageFile::create_in_memory(SMALL_PAGE).unwrap(), 4, 64).unwrap();
    for (i, p) in pts.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
        if i % 97 == 0 {
            verify::check(&t).unwrap();
        }
    }
    let report = verify::check(&t).unwrap();
    assert_eq!(report.points, 600);
    assert!(t.height() >= 3);
}

#[test]
fn knn_matches_brute_force_uniform() {
    let pts = uniform(800, 8, 5);
    let t = build(&pts, 2048);
    let queries = sr_dataset::sample_queries(&pts, 20, 3);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn knn_matches_brute_force_clustered() {
    // Clustered data maximizes forced splits (many overlapping region
    // boundaries in a small volume).
    let pts = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 60,
            max_radius: 0.05,
        },
        6,
        9,
    );
    let t = build(&pts, 2048);
    verify::check(&t).unwrap();
    let queries = sr_dataset::sample_queries(&pts, 20, 4);
    assert_knn_matches(&t, &pts, &queries, 10);
}

#[test]
fn knn_matches_brute_force_histograms() {
    let pts = real_sim(500, 16, 21);
    let t = build(&pts, 8192);
    let queries = sr_dataset::sample_queries(&pts, 10, 8);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn range_matches_brute_force() {
    let pts = uniform(500, 4, 23);
    let t = build(&pts, 1024);
    let flat: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for (qi, r) in [(0usize, 0.1f64), (100, 0.3), (250, 0.5)] {
        let q = pts[qi].coords();
        let got = t.range(q, r).unwrap();
        let want = sr_query::brute_force_range(flat.iter().copied(), q, r);
        assert_eq!(
            got.iter().map(|n| n.data).collect::<Vec<_>>(),
            want.iter().map(|n| n.data).collect::<Vec<_>>()
        );
    }
}

#[test]
fn contains_finds_every_point_single_path() {
    let pts = uniform(400, 5, 31);
    let t = build(&pts, 1024);
    for (i, p) in pts.iter().enumerate() {
        assert!(t.contains(p, i as u64).unwrap());
        assert!(!t.contains(p, u64::MAX).unwrap());
    }
}

#[test]
fn point_query_reads_one_page_per_level() {
    // The paper's §2.1: disjointness makes the point-query path a single
    // branch, so reads == height.
    let pts = uniform(2000, 4, 37);
    let t = build(&pts, 1024);
    t.pager().set_cache_capacity(0).unwrap();
    t.pager().reset_stats();
    let p = &pts[123];
    assert!(t.contains(p, 123).unwrap());
    let reads = t.pager().stats().tree_reads();
    assert_eq!(reads, t.height() as u64);
}

#[test]
fn coincident_point_overflow_is_reported() {
    let mut t =
        KdbTree::create_from(PageFile::create_in_memory(SMALL_PAGE).unwrap(), 2, 64).unwrap();
    let p = Point::new(vec![0.5f32, 0.5]);
    let mut err = None;
    for i in 0..200 {
        match t.insert(p.clone(), i) {
            Ok(()) => {}
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(
        matches!(err, Some(TreeError::Unsplittable)),
        "expected Unsplittable, got {err:?}"
    );
}

#[test]
fn delete_removes_points() {
    let pts = uniform(300, 4, 41);
    let mut t = build(&pts, SMALL_PAGE);
    for (i, p) in pts.iter().enumerate() {
        if i % 3 == 0 {
            assert!(t.delete(p, i as u64).unwrap());
        }
    }
    verify::check(&t).unwrap();
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(t.contains(p, i as u64).unwrap(), i % 3 != 0);
    }
    let survivors: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 != 0)
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    let q = pts[1].coords();
    let got = t.knn(q, 9).unwrap();
    let want = brute_force_knn(survivors.iter().copied(), q, 9);
    for (g, w) in got.iter().zip(want.iter()) {
        assert!((g.dist2 - w.dist2).abs() < 1e-9);
    }
}

#[test]
fn delete_missing_point_returns_false() {
    let pts = uniform(50, 2, 47);
    let mut t = build(&pts, 1024);
    assert!(!t.delete(&Point::new(vec![42.0f32, 42.0]), 0).unwrap());
    assert_eq!(t.len(), 50);
}

#[test]
fn persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sr-kdb-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.pages");
    let pts = uniform(300, 6, 59);
    {
        let mut t = KdbTree::create(&path, 6).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t.flush().unwrap();
    }
    {
        let t = KdbTree::open(&path).unwrap();
        assert_eq!(t.len(), 300);
        verify::check(&t).unwrap();
        let queries = sr_dataset::sample_queries(&pts, 5, 61);
        assert_knn_matches(&t, &pts, &queries, 9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dimension_mismatch_is_an_error() {
    let mut t = KdbTree::create_from(PageFile::create_in_memory(1024).unwrap(), 4, 64).unwrap();
    let wrong = Point::new(vec![1.0f32, 2.0]);
    assert!(t.insert(wrong.clone(), 0).is_err());
    assert!(t.knn(&[0.0, 0.0], 1).is_err());
}

#[test]
fn empty_tree_queries() {
    let t = KdbTree::create_from(PageFile::create_in_memory(1024).unwrap(), 3, 64).unwrap();
    assert!(t.knn(&[0.0, 0.0, 0.0], 5).unwrap().is_empty());
    assert!(t.range(&[0.0, 0.0, 0.0], 10.0).unwrap().is_empty());
    verify::check(&t).unwrap();
}

#[test]
fn negative_coordinates_are_indexed() {
    // The root region must genuinely cover all of space, not just the
    // unit cube.
    let raw: Vec<Vec<f32>> = (0..200)
        .map(|i| vec![(i as f32 - 100.0) * 7.3, (i as f32).sin() * 1e6])
        .collect();
    let pts: Vec<Point> = raw.into_iter().map(Point::new).collect();
    let t = build(&pts, 1024);
    verify::check(&t).unwrap();
    let queries: Vec<Point> = pts.iter().take(10).cloned().collect();
    assert_knn_matches(&t, &pts, &queries, 5);
}

#[test]
fn forced_splits_leave_measurable_debris() {
    // Clustered data forces splits; the verifier counts (legal) empty
    // leaves, demonstrating the no-minimum-utilization property.
    let pts = cluster(
        ClusterSpec {
            clusters: 30,
            points_per_cluster: 40,
            max_radius: 0.02,
        },
        4,
        77,
    );
    let t = build(&pts, SMALL_PAGE);
    let report = verify::check(&t).unwrap();
    assert_eq!(report.points, 1200);
    // Not asserting empty_leaves > 0 (data-dependent), only that the
    // field is tracked and the structure stays valid.
    assert!(report.leaves > 0);
}
