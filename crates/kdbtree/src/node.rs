//! Page representation: region pages and point pages, with the
//! half-open containment rule that keeps sibling regions disjoint.

use sr_geometry::{Point, Rect};
use sr_pager::{put_leaf_columns, LeafColumns, PageCodec, PageId, PageReader};

use crate::error::{Result, TreeError};
use crate::params::{KdbParams, NODE_HEADER};

/// One point stored in a point page.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub point: Point,
    pub data: u64,
}

/// One subregion stored in a region page.
#[derive(Clone, Debug)]
pub(crate) struct RegionEntry {
    pub rect: Rect,
    pub child: PageId,
}

/// A materialized page. Level 0 is the point-page level.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Region {
        level: u16,
        entries: Vec<RegionEntry>,
    },
}

/// Half-open containment: `min <= x < max` per dimension, except that an
/// infinite upper bound is inclusive. Sibling regions share boundary
/// planes; this rule routes every point to exactly one of them.
pub(crate) fn kdb_contains(rect: &Rect, p: &[f32]) -> bool {
    debug_assert_eq!(p.len(), rect.dim());
    for (i, &x) in p.iter().enumerate() {
        let (lo, hi) = (rect.min()[i], rect.max()[i]);
        if x < lo {
            return false;
        }
        if x >= hi && hi.is_finite() {
            return false;
        }
    }
    true
}

/// The rectangle covering all of `dim`-dimensional space — the region of
/// the root.
pub(crate) fn full_space(dim: usize) -> Rect {
    Rect::new(vec![f32::NEG_INFINITY; dim], vec![f32::INFINITY; dim])
}

/// Clip `rect` to the half below / above the plane `x[dim] = value`.
pub(crate) fn clip_below(rect: &Rect, dim: usize, value: f32) -> Rect {
    let mut max = rect.max().to_vec();
    max[dim] = value;
    Rect::new(rect.min().to_vec(), max)
}

/// See [`clip_below`].
pub(crate) fn clip_above(rect: &Rect, dim: usize, value: f32) -> Rect {
    let mut min = rect.min().to_vec();
    min[dim] = value;
    Rect::new(min, rect.max().to_vec())
}

impl Node {
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 0,
            Node::Region { level, .. } => *level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Region { entries, .. } => entries.len(),
        }
    }

    /// Serialize into a page payload.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] when the node violates the on-disk format's
    /// field widths or the encoded entries overrun `capacity`.
    pub fn encode(&self, params: &KdbParams, capacity: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; capacity];
        let mut c = PageCodec::new(&mut buf);
        match self {
            Node::Leaf(entries) => {
                // Columnar (dimension-major) layout shared by every index
                // crate — same total bytes as the old row-major form, so
                // the fanout arithmetic is untouched.
                let refs: Vec<(&[f32], u64)> =
                    entries.iter().map(|e| (e.point.coords(), e.data)).collect();
                put_leaf_columns(&mut c, params.dim, params.data_area, &refs)?;
            }
            Node::Region { entries, .. } => {
                c.put_u16(self.level())?;
                let n = u16::try_from(self.len()).map_err(|_| {
                    TreeError::Corrupt(format!("{} entries overflow the u16 count", self.len()))
                })?;
                c.put_u16(n)?;
                for e in entries {
                    c.put_coords(e.rect.min())?;
                    c.put_coords(e.rect.max())?;
                    c.put_u64(e.child)?;
                }
            }
        }
        let len = c.pos();
        buf.truncate(len);
        Ok(buf)
    }

    /// Deserialize from a page payload, validating every field whose
    /// misvalue would later feed a panicking constructor. Point
    /// coordinates must be finite; region bounds may be infinite (the
    /// root region covers all of space) but never NaN, and must be
    /// ordered per axis.
    pub fn decode(payload: &[u8], params: &KdbParams) -> Result<Node> {
        if payload.len() < NODE_HEADER {
            return Err(TreeError::NotThisIndex("page too short".into()));
        }
        let mut c = PageReader::new(payload);
        let level = c.get_u16()?;
        let n = usize::from(c.get_u16()?);
        if level == 0 {
            let need = n * KdbParams::leaf_entry_bytes(params.dim, params.data_area);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated point page".into()));
            }
            let cols = LeafColumns::parse(payload, params.dim)?;
            let mut entries = Vec::with_capacity(n);
            let mut coords = Vec::with_capacity(params.dim);
            for (i, data) in cols.data_ids().enumerate() {
                cols.point_into(i, &mut coords)?;
                if !coords.iter().all(|v| v.is_finite()) {
                    return Err(TreeError::Corrupt("non-finite point coordinate".into()));
                }
                // On-disk bytes are untrusted input: the fallible
                // constructor turns a zero-dimensional page into a typed
                // error instead of a panic.
                let point = Point::try_new(coords.as_slice())
                    .map_err(|e| TreeError::Corrupt(e.to_string()))?;
                entries.push(LeafEntry { point, data });
            }
            Ok(Node::Leaf(entries))
        } else {
            let need = n * KdbParams::node_entry_bytes(params.dim);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated region page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let min = c.get_coords(params.dim)?;
                let max = c.get_coords(params.dim)?;
                let child = c.get_u64()?;
                let ordered = min
                    .iter()
                    .zip(max.iter())
                    .all(|(lo, hi)| !lo.is_nan() && !hi.is_nan() && lo <= hi);
                if !ordered {
                    return Err(TreeError::Corrupt(
                        "invalid region rectangle on disk".into(),
                    ));
                }
                entries.push(RegionEntry {
                    rect: Rect::new(min, max),
                    child,
                });
            }
            Ok(Node::Region { level, entries })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_containment() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(kdb_contains(&r, &[0.0, 0.0])); // lower bound inclusive
        assert!(kdb_contains(&r, &[0.5, 0.999]));
        assert!(!kdb_contains(&r, &[1.0, 0.5])); // upper bound exclusive
        assert!(!kdb_contains(&r, &[-0.1, 0.5]));
    }

    #[test]
    fn infinite_upper_bound_is_inclusive() {
        let r = full_space(2);
        assert!(kdb_contains(&r, &[f32::MAX, -1.0e30]));
        assert!(kdb_contains(&r, &[0.0, 0.0]));
    }

    #[test]
    fn boundary_point_belongs_to_exactly_one_side() {
        let whole = Rect::new(vec![0.0], vec![10.0]);
        let left = clip_below(&whole, 0, 5.0);
        let right = clip_above(&whole, 0, 5.0);
        let p = [5.0f32];
        assert!(!kdb_contains(&left, &p));
        assert!(kdb_contains(&right, &p));
    }

    #[test]
    fn clip_preserves_other_dimensions() {
        let r = Rect::new(vec![0.0, -1.0], vec![4.0, 1.0]);
        let lo = clip_below(&r, 0, 2.0);
        let hi = clip_above(&r, 0, 2.0);
        assert_eq!(lo.min(), &[0.0, -1.0]);
        assert_eq!(lo.max(), &[2.0, 1.0]);
        assert_eq!(hi.min(), &[2.0, -1.0]);
        assert_eq!(hi.max(), &[4.0, 1.0]);
    }

    #[test]
    fn codec_roundtrip_with_infinite_bounds() {
        let p = KdbParams::derive(8187, 2, 512);
        let node = Node::Region {
            level: 1,
            entries: vec![RegionEntry {
                rect: full_space(2),
                child: 3,
            }],
        };
        let back = Node::decode(&node.encode(&p, 8187).unwrap(), &p).unwrap();
        if let Node::Region { entries, .. } = back {
            assert_eq!(entries[0].rect, full_space(2));
            assert_eq!(entries[0].child, 3);
        } else {
            panic!("expected region page");
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let p = KdbParams::derive(8187, 2, 512);
        let node = Node::Leaf(vec![LeafEntry {
            point: Point::new(vec![3.5, -1.25]),
            data: 77,
        }]);
        let back = Node::decode(&node.encode(&p, 8187).unwrap(), &p).unwrap();
        if let Node::Leaf(e) = back {
            assert_eq!(e[0].point.coords(), &[3.5, -1.25]);
            assert_eq!(e[0].data, 77);
        } else {
            panic!("expected leaf");
        }
    }
}
