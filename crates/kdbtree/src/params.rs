//! Capacity parameters for the K-D-B-tree.
//!
//! A region-page entry stores the region rectangle (`2·D·8` bytes) plus a
//! child pointer (8) — identical to an R\*-tree node entry, giving 30
//! entries at `D = 16` with 8 KiB pages. Point pages (leaves) match the
//! other structures: point + data area, 12 entries. The K-D-B-tree has no
//! minimum fill (forced splits can empty pages arbitrarily), so only
//! maxima are derived.

/// Per-page header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// Capacity parameters of a K-D-B-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KdbParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in a region page.
    pub max_node: usize,
    /// Maximum entries in a point page.
    pub max_leaf: usize,
}

impl KdbParams {
    /// Derive parameters from the usable page payload.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least 2 entries per page kind,
    /// or if `data_area < 8`.
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(
            data_area >= 8,
            "data area must hold at least the u64 payload"
        );
        let usable = page_capacity - NODE_HEADER;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        assert!(
            max_node >= 2 && max_leaf >= 2,
            "page too small: {max_node} region entries, {max_leaf} point entries"
        );
        KdbParams {
            dim,
            data_area,
            max_node,
            max_leaf,
        }
    }

    /// Non-panicking variant of [`KdbParams::derive`] for parameters read
    /// back from disk, where every precondition violation is a corruption
    /// symptom rather than a caller bug: returns `None` wherever `derive`
    /// would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(KdbParams {
            dim,
            data_area,
            max_node,
            max_leaf,
        })
    }

    /// Bytes of one region-page entry on disk.
    pub fn node_entry_bytes(dim: usize) -> usize {
        2 * 8 * dim + 8
    }

    /// Bytes of one point-page entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_at_16_dimensions() {
        let p = KdbParams::derive(8187, 16, 512);
        assert_eq!(p.max_node, 30); // same entry size as the R*-tree
        assert_eq!(p.max_leaf, 12);
    }

    #[test]
    #[should_panic(expected = "page too small")]
    fn tiny_page_rejected() {
        let _ = KdbParams::derive(300, 64, 512);
    }
}
