//! Capacity parameters for the K-D-B-tree.
//!
//! A region-page entry stores the region rectangle (`2·D·8` bytes) plus a
//! child pointer (8) — identical to an R\*-tree node entry, giving 30
//! entries at `D = 16` with 8 KiB pages. Point pages (leaves) match the
//! other structures: point + data area, 12 entries. The K-D-B-tree has no
//! minimum fill (forced splits can empty pages arbitrarily), so only
//! maxima are derived.

/// Per-page header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// Capacity parameters of a K-D-B-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KdbParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in a region page.
    pub max_node: usize,
    /// Maximum entries in a point page.
    pub max_leaf: usize,
}

impl KdbParams {
    /// Derive parameters from the usable page payload.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least 2 entries per page kind,
    /// or if `data_area < 8`.
    #[allow(clippy::panic)] // documented contract panic; fallible callers use try_derive
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        match Self::try_derive(page_capacity, dim, data_area) {
            Some(p) => p,
            // srlint: allow(panic) -- documented contract panic on
            // construction-time configuration; fallible callers (the
            // on-disk open path) go through `try_derive`.
            None => panic!(
                "invalid parameters: page_capacity={page_capacity} dim={dim} \
                 data_area={data_area} (need dim > 0, data_area >= 8, and at \
                 least 2 entries per node and leaf)"
            ),
        }
    }

    /// Non-panicking variant of [`KdbParams::derive`] for parameters read
    /// back from disk, where every precondition violation is a corruption
    /// symptom rather than a caller bug: returns `None` wherever `derive`
    /// would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(KdbParams {
            dim,
            data_area,
            max_node,
            max_leaf,
        })
    }

    /// Bytes of one region-page entry on disk.
    pub fn node_entry_bytes(dim: usize) -> usize {
        2 * 8 * dim + 8
    }

    /// Bytes of one point-page entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_at_16_dimensions() {
        let p = KdbParams::derive(8187, 16, 512);
        assert_eq!(p.max_node, 30); // same entry size as the R*-tree
        assert_eq!(p.max_leaf, 12);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn tiny_page_rejected() {
        let _ = KdbParams::derive(300, 64, 512);
    }
}
