//! K-D-B-tree insertion with plane splits and forced splits.
//!
//! On overflow a page is divided by a coordinate plane. For point pages
//! the plane passes near the median of the widest dimension (the
//! R+-tree-style choice the paper adopts, §3.1). For region pages the
//! plane is chosen among the children's own boundaries to minimize the
//! number of *forced splits* — children crossing the plane that must be
//! recursively split by it.

use sr_geometry::Rect;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::{clip_above, clip_below, full_space, kdb_contains, LeafEntry, Node, RegionEntry};
use crate::tree::KdbTree;

/// Insert one point.
pub(crate) fn insert_point(tree: &mut KdbTree, point: sr_geometry::Point, data: u64) -> Result<()> {
    // Descend the unique containing path, remembering each page's region
    // (needed to derive the regions of split halves).
    let mut path: Vec<(PageId, Rect)> = Vec::with_capacity(tree.height as usize);
    let mut id = tree.root;
    let mut region = full_space(tree.params.dim);
    let mut level = (tree.height - 1) as u16;
    path.push((id, region.clone()));
    while level > 0 {
        let node = tree.read_node(id, level)?;
        let entries = match &node {
            Node::Region { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "point page found above the leaf level while descending".into(),
                ))
            }
        };
        let e = entries
            .iter()
            .find(|e| kdb_contains(&e.rect, point.coords()))
            .ok_or_else(|| {
                TreeError::Corrupt("coverage hole: no region contains the point".into())
            })?;
        id = e.child;
        region = e.rect.clone();
        path.push((id, region.clone()));
        level -= 1;
    }

    let mut node = tree.read_node(id, 0)?;
    if let Node::Leaf(entries) = &mut node {
        entries.push(LeafEntry { point, data });
    }

    // Resolve overflows bottom-up; splits replace one parent entry with
    // two and may overflow the parent in turn.
    let mut idx = path.len() - 1;
    loop {
        let max = if node.is_leaf() {
            tree.params.max_leaf
        } else {
            tree.params.max_node
        };
        if node.len() <= max {
            tree.write_node(path[idx].0, &node)?;
            break;
        }
        let (dim, value) = choose_plane(&node)?;
        let level = node.level();
        let (left, right) = split_in_memory(tree, node, dim, value)?;
        let region = &path[idx].1;
        let left_rect = clip_below(region, dim, value);
        let right_rect = clip_above(region, dim, value);
        if idx == 0 {
            // Root split: the tree grows one level.
            let left_id = tree.allocate_node(&left)?;
            let right_id = tree.allocate_node(&right)?;
            let new_root = Node::Region {
                level: level + 1,
                entries: vec![
                    RegionEntry {
                        rect: left_rect,
                        child: left_id,
                    },
                    RegionEntry {
                        rect: right_rect,
                        child: right_id,
                    },
                ],
            };
            tree.pf.free(tree.root)?;
            tree.root = tree.allocate_node(&new_root)?;
            tree.height += 1;
            break;
        }
        tree.write_node(path[idx].0, &left)?;
        let right_id = tree.allocate_node(&right)?;
        let parent_level = level + 1;
        let mut parent = tree.read_node(path[idx - 1].0, parent_level)?;
        if let Node::Region { entries, .. } = &mut parent {
            let pos = entries
                .iter()
                .position(|e| e.child == path[idx].0)
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            entries[pos] = RegionEntry {
                rect: left_rect,
                child: path[idx].0,
            };
            entries.push(RegionEntry {
                rect: right_rect,
                child: right_id,
            });
        }
        node = parent;
        idx -= 1;
    }

    tree.count += 1;
    tree.save_meta()?;
    Ok(())
}

/// Choose the split plane for an overflowing page.
fn choose_plane(node: &Node) -> Result<(usize, f32)> {
    match node {
        Node::Leaf(entries) => choose_point_plane(entries),
        Node::Region { entries, .. } => choose_region_plane(entries),
    }
}

/// Point pages: widest dimension, split at the median coordinate,
/// nudged so both half-open sides are non-empty.
fn choose_point_plane(entries: &[LeafEntry]) -> Result<(usize, f32)> {
    let dim = entries[0].point.dim();
    let mut best: Option<(f32, usize, f32)> = None; // (spread, dim, value)
    for d in 0..dim {
        let mut coords: Vec<f32> = entries.iter().map(|e| e.point[d]).collect();
        coords.sort_by(|a, b| a.total_cmp(b));
        let spread = coords[coords.len() - 1] - coords[0];
        if spread <= 0.0 {
            continue; // all coincident on this dimension
        }
        // Median, adjusted upward until it separates (left side is
        // strictly-less under the half-open rule).
        let mut value = coords[coords.len() / 2];
        if value == coords[0] {
            match coords.iter().find(|&&c| c > coords[0]) {
                Some(&c) => value = c,
                // Unreachable when spread > 0; treat it as degenerate
                // rather than asserting on it.
                None => continue,
            }
        }
        match best {
            Some((s, _, _)) if s >= spread => {}
            _ => best = Some((spread, d, value)),
        }
    }
    best.map(|(_, d, v)| (d, v)).ok_or(TreeError::Unsplittable)
}

/// Region pages: consider every child boundary on every dimension; pick
/// the plane minimizing forced splits (crossing children), requiring at
/// least one child fully on each side so the split makes progress; break
/// ties by balance.
fn choose_region_plane(entries: &[RegionEntry]) -> Result<(usize, f32)> {
    let dim = entries[0].rect.dim();
    let mut best: Option<((usize, i64), usize, f32)> = None; // ((crossings, imbalance), dim, value)
    for d in 0..dim {
        let mut candidates: Vec<f32> = Vec::new();
        for e in entries {
            if e.rect.min()[d].is_finite() {
                candidates.push(e.rect.min()[d]);
            }
            if e.rect.max()[d].is_finite() {
                candidates.push(e.rect.max()[d]);
            }
        }
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup();
        for &v in &candidates {
            let mut left = 0usize;
            let mut right = 0usize;
            let mut cross = 0usize;
            for e in entries {
                if e.rect.max()[d] <= v {
                    left += 1;
                } else if e.rect.min()[d] >= v {
                    right += 1;
                } else {
                    cross += 1;
                }
            }
            if left == 0 || right == 0 {
                continue; // no progress: one side would keep everything
            }
            let key = (cross, (left as i64 - right as i64).abs());
            match &best {
                Some((bk, _, _)) if *bk <= key => {}
                _ => best = Some((key, d, v)),
            }
        }
    }
    best.map(|(_, d, v)| (d, v)).ok_or(TreeError::Unsplittable)
}

/// Split a materialized page by the plane `x[dim] = value`, recursively
/// force-splitting children that cross it. Returns the two halves (the
/// caller assigns page ids).
fn split_in_memory(tree: &KdbTree, node: Node, dim: usize, value: f32) -> Result<(Node, Node)> {
    match node {
        Node::Leaf(entries) => {
            let (l, r): (Vec<LeafEntry>, Vec<LeafEntry>) =
                entries.into_iter().partition(|e| e.point[dim] < value);
            Ok((Node::Leaf(l), Node::Leaf(r)))
        }
        Node::Region { level, entries } => {
            let mut left = Vec::new();
            let mut right = Vec::new();
            for e in entries {
                if e.rect.max()[dim] <= value {
                    left.push(e);
                } else if e.rect.min()[dim] >= value {
                    right.push(e);
                } else {
                    // Forced split: the child page itself is divided by
                    // the same plane, all the way down.
                    let (l_id, r_id) = force_split_page(tree, e.child, level - 1, dim, value)?;
                    left.push(RegionEntry {
                        rect: clip_below(&e.rect, dim, value),
                        child: l_id,
                    });
                    right.push(RegionEntry {
                        rect: clip_above(&e.rect, dim, value),
                        child: r_id,
                    });
                }
            }
            Ok((
                Node::Region {
                    level,
                    entries: left,
                },
                Node::Region {
                    level,
                    entries: right,
                },
            ))
        }
    }
}

/// Force-split the on-disk page `id` by the plane; the left half reuses
/// `id`, the right half gets a fresh page. Either half may come out empty
/// or oversized-but-legal — forced splits are exactly why the K-D-B-tree
/// cannot guarantee minimum utilization.
fn force_split_page(
    tree: &KdbTree,
    id: PageId,
    level: u16,
    dim: usize,
    value: f32,
) -> Result<(PageId, PageId)> {
    let node = tree.read_node(id, level)?;
    let (left, right) = split_in_memory(tree, node, dim, value)?;
    tree.write_node(id, &left)?;
    let right_id = tree.allocate_node(&right)?;
    Ok((id, right_id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_geometry::Point;

    fn leaf_entries(coords: &[[f32; 2]]) -> Vec<LeafEntry> {
        coords
            .iter()
            .enumerate()
            .map(|(i, c)| LeafEntry {
                point: Point::new(c.to_vec()),
                data: i as u64,
            })
            .collect()
    }

    #[test]
    fn point_plane_picks_widest_dimension() {
        let entries = leaf_entries(&[[0.0, 0.0], [0.1, 10.0], [0.2, 20.0], [0.05, 30.0]]);
        let (dim, value) = choose_point_plane(&entries).unwrap();
        assert_eq!(dim, 1);
        // both half-open sides non-empty
        let left = entries.iter().filter(|e| e.point[dim] < value).count();
        assert!(left > 0 && left < entries.len());
    }

    #[test]
    fn point_plane_skips_degenerate_dimension() {
        // All x identical: must split on y.
        let entries = leaf_entries(&[[1.0, 0.0], [1.0, 5.0], [1.0, 9.0]]);
        let (dim, _) = choose_point_plane(&entries).unwrap();
        assert_eq!(dim, 1);
    }

    #[test]
    fn point_plane_duplicate_median_is_adjusted() {
        // Median coordinate equals the minimum; the plane must move up
        // so the left side is non-empty... the rule requires a value
        // strictly above the minimum.
        let entries = leaf_entries(&[[0.0, 0.0], [0.0, 0.0], [0.0, 0.0], [0.0, 7.0]]);
        let (dim, value) = choose_point_plane(&entries).unwrap();
        assert_eq!(dim, 1);
        assert!(value > 0.0);
        let left = entries.iter().filter(|e| e.point[dim] < value).count();
        assert!(left > 0 && left < entries.len());
    }

    #[test]
    fn fully_coincident_points_are_unsplittable() {
        let entries = leaf_entries(&[[0.5, 0.5], [0.5, 0.5], [0.5, 0.5]]);
        assert!(matches!(
            choose_point_plane(&entries),
            Err(TreeError::Unsplittable)
        ));
    }

    #[test]
    fn region_plane_prefers_no_crossings() {
        // Three regions: two separable on x without crossing, and a
        // plane on y would cross all of them.
        let mk = |x0: f32, x1: f32| RegionEntry {
            rect: Rect::new(vec![x0, 0.0], vec![x1, 10.0]),
            child: 0,
        };
        let entries = vec![mk(0.0, 1.0), mk(1.0, 2.0), mk(2.0, 3.0)];
        let (dim, value) = choose_region_plane(&entries).unwrap();
        assert_eq!(dim, 0);
        let crossings = entries
            .iter()
            .filter(|e| e.rect.min()[dim] < value && value < e.rect.max()[dim])
            .count();
        assert_eq!(crossings, 0);
    }
}
