//! The K-D-B-tree (Robinson, SIGMOD 1981) — the disjoint-partition
//! baseline of the SR-tree paper (§2.1).
//!
//! A height-balanced disk tree built by recursively dividing the search
//! space with coordinate planes. Its defining property is **disjointness**:
//! sibling regions on the same level never overlap, so a point query
//! follows exactly one root-to-leaf path. The price is the **forced
//! split**: when a region page is divided by a plane that crosses child
//! regions, those children must be split by the same plane all the way
//! down, which can create nearly-empty pages — the K-D-B-tree "cannot
//! ensure the minimum storage utilization" (§2.1), hurting range and
//! nearest-neighbor queries.
//!
//! Following the paper's methodology (§3.1), the split planes are chosen
//! in the style of the R+-tree rather than [Robinson's] cyclic
//! dimensions, which were reported to cause excessive forced splits:
//! the dimension with the greatest spread is cut near the median.
//!
//! ```
//! use sr_kdbtree::KdbTree;
//! use sr_geometry::Point;
//!
//! let mut tree = KdbTree::create_in_memory(2, 8192).unwrap();
//! for (i, xy) in [[0.0f32, 0.0], [1.0, 1.0], [0.2, 0.1]].iter().enumerate() {
//!     tree.insert(Point::new(xy.to_vec()), i as u64).unwrap();
//! }
//! let hits = tree.knn(&[0.0, 0.0], 2).unwrap();
//! assert_eq!(hits[0].data, 0);
//! ```

#![forbid(unsafe_code)]
// Tree internals index into child/entry vectors whose bounds are
// maintained as structural invariants (checked by `verify`); the
// clippy index ban applies to the audited geometry/pager hot paths.
#![allow(clippy::indexing_slicing)]

mod error;
mod insert;
mod node;
mod params;
mod search;
mod tree;
pub mod verify;

pub use error::{Result, TreeError};
pub use params::KdbParams;
pub use tree::KdbTree;

pub use sr_query::Neighbor;
