//! Query plumbing: regions are scored with rectangle `MINDIST`. Because
//! regions are disjoint, at most one region per level has `MINDIST = 0`
//! — the property that makes K-D-B point queries single-path.

use sr_geometry::dist2;
use sr_obs::Recorder;
use sr_pager::PageId;
use sr_query::{Expansion, KnnSource, Neighbor, QueryError};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::KdbTree;

struct Source<'a> {
    tree: &'a KdbTree,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        // Guard the `height - 1` below: an empty tree has nothing to
        // search, and a height of 0 (corrupt metadata) would underflow.
        if self.tree.is_empty() || self.tree.height == 0 {
            return Ok(None);
        }
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.push_point(dist2(e.point.coords(), query), e.data);
                }
            }
            Node::Region { entries, .. } => {
                for e in &entries {
                    out.push_rect_branch(e.rect.min_dist2(query), (e.child, level - 1));
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn knn<R: Recorder + ?Sized>(
    tree: &KdbTree,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_with(&Source { tree }, query, k, rec)
}

pub(crate) fn range<R: Recorder + ?Sized>(
    tree: &KdbTree,
    query: &[f32],
    radius: f64,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::range_with(&Source { tree }, query, radius, rec).map_err(|e| match e {
        QueryError::InvalidRadius(r) => TreeError::InvalidRadius(r),
        QueryError::Source(e) => e,
    })
}
