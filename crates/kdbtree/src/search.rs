//! Query plumbing: regions are scored with rectangle `MINDIST`. Because
//! regions are disjoint, at most one region per level has `MINDIST = 0`
//! — the property that makes K-D-B point queries single-path.

use sr_geometry::dist2;
use sr_pager::PageId;
use sr_query::{Expansion, KnnSource, Neighbor};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::KdbTree;

struct Source<'a> {
    tree: &'a KdbTree,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.points.push(Neighbor {
                        dist2: dist2(e.point.coords(), query),
                        data: e.data,
                    });
                }
            }
            Node::Region { entries, .. } => {
                for e in &entries {
                    out.branches
                        .push((e.rect.min_dist2(query), (e.child, level - 1)));
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn knn(tree: &KdbTree, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
    sr_query::knn(&Source { tree }, query, k)
}

pub(crate) fn range(tree: &KdbTree, query: &[f32], radius: f64) -> Result<Vec<Neighbor>> {
    sr_query::range(&Source { tree }, query, radius)
}
