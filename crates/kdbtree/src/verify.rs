//! Structural-invariant checker for the K-D-B-tree.
//!
//! Checks:
//! * sibling regions are pairwise **disjoint** (the defining property,
//!   §2.1) under the half-open containment rule;
//! * every child region lies inside its parent's region;
//! * every stored point belongs to its page's region and is reachable by
//!   the single-path root descent (which also exercises coverage);
//! * uniform leaf depth; metadata count. There is *no* minimum-fill check
//!   — forced splits legitimately produce nearly-empty pages.

use sr_geometry::Rect;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::{full_space, kdb_contains, Node};
use crate::tree::KdbTree;

/// Summary of a verified tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Region pages visited.
    pub nodes: u64,
    /// Point pages visited.
    pub leaves: u64,
    /// Points counted.
    pub points: u64,
    /// Empty point pages (forced-split debris; legal but measured).
    pub empty_leaves: u64,
}

/// Walk the whole tree, validating every structural invariant.
///
/// # Errors
/// [`TreeError::Corrupt`] naming the offending page and invariant;
/// [`TreeError::Pager`] when a page cannot be read at all.
pub fn check(tree: &KdbTree) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let root_level = (tree.height - 1) as u16;
    walk(
        tree,
        tree.root,
        root_level,
        &full_space(tree.params().dim),
        &mut report,
    )?;
    if report.points != tree.len() {
        return Err(TreeError::Corrupt(format!(
            "metadata says {} points, tree holds {}",
            tree.len(),
            report.points
        )));
    }
    Ok(report)
}

/// Disjoint under half-open semantics: some dimension separates them
/// (allowing a shared boundary plane).
fn half_open_disjoint(a: &Rect, b: &Rect) -> bool {
    (0..a.dim()).any(|d| a.max()[d] <= b.min()[d] || b.max()[d] <= a.min()[d])
}

fn walk(
    tree: &KdbTree,
    id: PageId,
    level: u16,
    region: &Rect,
    report: &mut VerifyReport,
) -> Result<()> {
    let node = tree.read_node(id, level)?;
    match node {
        Node::Leaf(entries) => {
            report.leaves += 1;
            report.points += entries.len() as u64;
            if entries.is_empty() {
                report.empty_leaves += 1;
            }
            for e in &entries {
                if !kdb_contains(region, e.point.coords()) {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: point {:?} outside its region {region:?}",
                        e.point
                    )));
                }
                // Routing check: the single-path descent from the root
                // must land on this very page (disjointness + coverage).
                let found = route(tree, e.point.coords())?;
                if found != id {
                    return Err(TreeError::Corrupt(format!(
                        "point {:?} stored in page {id} but routed to page {found}",
                        e.point
                    )));
                }
            }
        }
        Node::Region { entries, .. } => {
            report.nodes += 1;
            if entries.is_empty() {
                return Err(TreeError::Corrupt(format!(
                    "region page {id} has no entries"
                )));
            }
            for (i, a) in entries.iter().enumerate() {
                if !region.contains_rect(&a.rect) {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: child region {:?} escapes parent {region:?}",
                        a.rect
                    )));
                }
                for b in entries.iter().skip(i + 1) {
                    if !half_open_disjoint(&a.rect, &b.rect) {
                        return Err(TreeError::Corrupt(format!(
                            "page {id}: sibling regions overlap: {:?} and {:?}",
                            a.rect, b.rect
                        )));
                    }
                }
            }
            for e in &entries {
                walk(tree, e.child, level - 1, &e.rect, report)?;
            }
        }
    }
    Ok(())
}

/// The unique root-to-leaf descent for a point.
fn route(tree: &KdbTree, p: &[f32]) -> Result<PageId> {
    let mut id = tree.root;
    let mut level = (tree.height - 1) as u16;
    while level > 0 {
        let node = tree.read_node(id, level)?;
        if let Node::Region { entries, .. } = node {
            let e = entries
                .iter()
                .find(|e| kdb_contains(&e.rect, p))
                .ok_or_else(|| {
                    TreeError::Corrupt("coverage hole: no region contains the point".into())
                })?;
            id = e.child;
        }
        level -= 1;
    }
    Ok(id)
}
