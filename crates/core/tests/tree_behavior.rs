//! Behavioral tests of the SR-tree: structural invariants after bulk
//! mutation, query correctness against brute force, deletion, and
//! persistence.

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec};
use sr_geometry::Point;
use sr_pager::PageFile;
use sr_query::brute_force_knn;
use sr_tree::{verify, SrTree};

/// A small page size keeps fanout low so tests exercise deep trees with
/// few points.
const SMALL_PAGE: usize = 1024;

fn build(points: &[Point], page: usize) -> SrTree {
    let mut t = SrTree::create_from(
        PageFile::create_in_memory(page).unwrap(),
        points[0].dim(),
        64,
    )
    .unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

fn assert_knn_matches(tree: &SrTree, points: &[Point], queries: &[Point], k: usize) {
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in queries {
        let got = tree.knn(q.coords(), k).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q.coords(), k);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!(
                (g.dist2 - w.dist2).abs() < 1e-9,
                "dist mismatch: {} vs {}",
                g.dist2,
                w.dist2
            );
        }
    }
}

#[test]
fn invariants_hold_during_growth() {
    let pts = uniform(600, 4, 11);
    let mut t =
        SrTree::create_from(PageFile::create_in_memory(SMALL_PAGE).unwrap(), 4, 64).unwrap();
    for (i, p) in pts.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
        if i % 97 == 0 {
            verify::check(&t).unwrap();
        }
    }
    let report = verify::check(&t).unwrap();
    assert_eq!(report.points, 600);
    assert!(t.height() >= 3, "tree should be deep at this page size");
}

#[test]
fn knn_matches_brute_force_uniform() {
    let pts = uniform(800, 8, 5);
    let t = build(&pts, 2048);
    let queries = sr_dataset::sample_queries(&pts, 20, 3);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn knn_matches_brute_force_clustered() {
    let pts = cluster(
        ClusterSpec {
            clusters: 10,
            points_per_cluster: 60,
            max_radius: 0.05,
        },
        6,
        9,
    );
    let t = build(&pts, 2048);
    let queries = sr_dataset::sample_queries(&pts, 20, 4);
    assert_knn_matches(&t, &pts, &queries, 10);
}

#[test]
fn knn_matches_brute_force_histograms() {
    let pts = real_sim(500, 16, 21);
    let t = build(&pts, 8192);
    let queries = sr_dataset::sample_queries(&pts, 10, 8);
    assert_knn_matches(&t, &pts, &queries, 21);
}

#[test]
fn knn_off_dataset_queries() {
    // Query points that are not dataset members (corners, outside cube).
    let pts = uniform(400, 3, 17);
    let t = build(&pts, 1024);
    let flat: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in [
        vec![0.0f32, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
        vec![-0.5, 0.5, 2.0],
        vec![0.5, 0.5, 0.5],
    ] {
        let got = t.knn(&q, 7).unwrap();
        let want = brute_force_knn(flat.iter().copied(), &q, 7);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist2 - w.dist2).abs() < 1e-9);
        }
    }
}

#[test]
fn range_matches_brute_force() {
    let pts = uniform(500, 4, 23);
    let t = build(&pts, 1024);
    let flat: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for (qi, r) in [(0usize, 0.1f64), (100, 0.3), (250, 0.5), (499, 1.0)] {
        let q = pts[qi].coords();
        let got = t.range(q, r).unwrap();
        let want = sr_query::brute_force_range(flat.iter().copied(), q, r);
        assert_eq!(
            got.iter().map(|n| n.data).collect::<Vec<_>>(),
            want.iter().map(|n| n.data).collect::<Vec<_>>(),
            "radius {r}"
        );
    }
}

#[test]
fn contains_finds_every_inserted_point() {
    let pts = uniform(300, 5, 31);
    let t = build(&pts, 1024);
    for (i, p) in pts.iter().enumerate() {
        assert!(t.contains(p, i as u64).unwrap(), "point {i} lost");
        assert!(!t.contains(p, u64::MAX).unwrap(), "wrong payload matched");
    }
}

#[test]
fn duplicate_points_are_all_kept() {
    let p = Point::new(vec![0.5f32, 0.5]);
    let mut t = SrTree::create_from(PageFile::create_in_memory(1024).unwrap(), 2, 64).unwrap();
    for i in 0..100 {
        t.insert(p.clone(), i).unwrap();
    }
    assert_eq!(t.len(), 100);
    verify::check(&t).unwrap();
    let got = t.knn(p.coords(), 100).unwrap();
    assert_eq!(got.len(), 100);
    assert!(got.iter().all(|n| n.dist2 == 0.0));
}

#[test]
fn delete_removes_and_preserves_invariants() {
    let pts = uniform(400, 4, 41);
    let mut t = build(&pts, SMALL_PAGE);
    // delete every other point
    for (i, p) in pts.iter().enumerate() {
        if i % 2 == 0 {
            assert!(t.delete(p, i as u64).unwrap(), "point {i} not found");
        }
    }
    assert_eq!(t.len(), 200);
    verify::check(&t).unwrap();
    // deleted points gone, survivors intact
    for (i, p) in pts.iter().enumerate() {
        assert_eq!(t.contains(p, i as u64).unwrap(), i % 2 == 1);
    }
    // queries still correct
    let survivors: Vec<(&[f32], u64)> = pts
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    let q = pts[1].coords();
    let got = t.knn(q, 11).unwrap();
    let want = brute_force_knn(survivors.iter().copied(), q, 11);
    for (g, w) in got.iter().zip(want.iter()) {
        assert!((g.dist2 - w.dist2).abs() < 1e-9);
    }
}

#[test]
fn delete_everything_leaves_empty_tree() {
    let pts = uniform(250, 3, 43);
    let mut t = build(&pts, SMALL_PAGE);
    for (i, p) in pts.iter().enumerate() {
        assert!(t.delete(p, i as u64).unwrap());
    }
    assert!(t.is_empty());
    assert_eq!(t.height(), 1);
    verify::check(&t).unwrap();
    assert!(t.knn(pts[0].coords(), 5).unwrap().is_empty());
}

#[test]
fn delete_missing_point_returns_false() {
    let pts = uniform(50, 2, 47);
    let mut t = build(&pts, 1024);
    let ghost = Point::new(vec![42.0f32, 42.0]);
    assert!(!t.delete(&ghost, 0).unwrap());
    assert_eq!(t.len(), 50);
}

#[test]
fn mixed_insert_delete_churn() {
    let pts = uniform(600, 4, 53);
    let mut t =
        SrTree::create_from(PageFile::create_in_memory(SMALL_PAGE).unwrap(), 4, 64).unwrap();
    // insert first 400
    for (i, p) in pts[..400].iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    // interleave: delete one old, insert one new
    for i in 0..200 {
        assert!(t.delete(&pts[i], i as u64).unwrap());
        t.insert(pts[400 + i].clone(), (400 + i) as u64).unwrap();
        if i % 50 == 0 {
            verify::check(&t).unwrap();
        }
    }
    assert_eq!(t.len(), 400);
    let report = verify::check(&t).unwrap();
    assert_eq!(report.points, 400);
}

#[test]
fn persistence_roundtrip() {
    let dir = std::env::temp_dir().join(format!("sr-srtree-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tree.pages");
    let pts = uniform(300, 6, 59);
    {
        let mut t = SrTree::create(&path, 6).unwrap();
        for (i, p) in pts.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t.flush().unwrap();
    }
    {
        let t = SrTree::open(&path).unwrap();
        assert_eq!(t.len(), 300);
        assert_eq!(t.dim(), 6);
        verify::check(&t).unwrap();
        let queries = sr_dataset::sample_queries(&pts, 5, 61);
        assert_knn_matches(&t, &pts, &queries, 9);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn dimension_mismatch_is_an_error() {
    let mut t = SrTree::create_from(PageFile::create_in_memory(1024).unwrap(), 4, 64).unwrap();
    let wrong = Point::new(vec![1.0f32, 2.0]);
    assert!(t.insert(wrong.clone(), 0).is_err());
    assert!(t.knn(&[0.0, 0.0], 1).is_err());
    assert!(t.delete(&wrong, 0).is_err());
}

#[test]
fn empty_tree_queries() {
    let t = SrTree::create_from(PageFile::create_in_memory(1024).unwrap(), 3, 64).unwrap();
    assert!(t.knn(&[0.0, 0.0, 0.0], 5).unwrap().is_empty());
    assert!(t.range(&[0.0, 0.0, 0.0], 10.0).unwrap().is_empty());
    verify::check(&t).unwrap();
}

#[test]
fn leaf_regions_cover_all_points() {
    let pts = uniform(300, 3, 67);
    let t = build(&pts, 1024);
    let regions = t.leaf_regions().unwrap();
    assert!(!regions.is_empty());
    for p in &pts {
        assert!(
            regions
                .iter()
                .any(|(s, r)| s.contains_point(p.coords(), 1e-5) && r.contains_point(p.coords())),
            "a point escaped every leaf region"
        );
    }
}

#[test]
fn num_leaves_counts_leaves() {
    let pts = uniform(300, 3, 71);
    let t = build(&pts, 1024);
    let n = t.num_leaves().unwrap();
    assert_eq!(n as usize, t.leaf_regions().unwrap().len());
    assert!(n > 1);
}

#[test]
fn disk_reads_are_counted_per_query() {
    let pts = uniform(2000, 8, 73);
    let t = build(&pts, 8192);
    t.pager().set_cache_capacity(0).unwrap();
    t.pager().reset_stats();
    let _ = t.knn(pts[0].coords(), 21).unwrap();
    let s = t.pager().stats();
    assert!(s.tree_reads() > 0);
    assert_eq!(s.tree_reads(), s.physical_reads());
}
