//! Tests of the SR-tree bulk loader: identical invariants and query
//! behavior as the dynamic path, with VAMSplit-grade page packing.

use sr_dataset::{real_sim, sample_queries, uniform};
use sr_geometry::Point;
use sr_pager::PageFile;
use sr_query::brute_force_knn;
use sr_tree::{verify, SrTree};

fn with_ids(points: &[Point]) -> Vec<(Point, u64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.clone(), i as u64))
        .collect()
}

#[test]
fn bulk_load_is_correct_and_valid() {
    let points = uniform(3_000, 8, 401);
    let mut t = SrTree::create_from(PageFile::create_in_memory(2048).unwrap(), 8, 64).unwrap();
    t.bulk_load(with_ids(&points)).unwrap();
    assert_eq!(t.len(), 3_000);
    verify::check(&t).unwrap();

    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for q in sample_queries(&points, 15, 403) {
        let got = t.knn(q.coords(), 21).unwrap();
        let want = brute_force_knn(flat.iter().copied(), q.coords(), 21);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.dist2 - w.dist2).abs() < 1e-9);
        }
    }
}

#[test]
fn bulk_load_packs_pages_tightly() {
    let points = uniform(3_000, 8, 407);
    let mut bulk = SrTree::create_from(PageFile::create_in_memory(2048).unwrap(), 8, 64).unwrap();
    bulk.bulk_load(with_ids(&points)).unwrap();
    let mut dynamic =
        SrTree::create_from(PageFile::create_in_memory(2048).unwrap(), 8, 64).unwrap();
    for (p, id) in with_ids(&points) {
        dynamic.insert(p, id).unwrap();
    }
    let bulk_leaves = bulk.num_leaves().unwrap();
    let dyn_leaves = dynamic.num_leaves().unwrap();
    assert!(
        bulk_leaves < dyn_leaves,
        "bulk {bulk_leaves} leaves should undercut dynamic {dyn_leaves}"
    );
    // Packed to the theoretical minimum (±1 from balanced chunking).
    let min_possible = 3_000u64.div_ceil(bulk.params().max_leaf as u64);
    assert!(
        bulk_leaves <= min_possible + 1,
        "{bulk_leaves} vs {min_possible}"
    );
}

#[test]
fn bulk_load_then_dynamic_updates() {
    let points = uniform(1_000, 4, 409);
    let mut t = SrTree::create_from(PageFile::create_in_memory(2048).unwrap(), 4, 64).unwrap();
    t.bulk_load(with_ids(&points)).unwrap();
    // Inserts and deletes on a bulk-loaded tree must keep working.
    let extra = uniform(300, 4, 411);
    for (i, p) in extra.iter().enumerate() {
        t.insert(p.clone(), 10_000 + i as u64).unwrap();
    }
    for (i, p) in points.iter().take(200).enumerate() {
        assert!(t.delete(p, i as u64).unwrap());
    }
    assert_eq!(t.len(), 1_100);
    verify::check(&t).unwrap();
}

#[test]
fn bulk_load_small_and_edge_sizes() {
    for n in [0usize, 1, 2, 12, 13, 25] {
        let points = real_sim(n.max(1), 16, 419);
        let mut t = SrTree::create_in_memory(16, 8192).unwrap();
        let input = if n == 0 {
            Vec::new()
        } else {
            with_ids(&points[..n])
        };
        t.bulk_load(input).unwrap();
        assert_eq!(t.len(), n as u64);
        verify::check(&t).unwrap_or_else(|e| panic!("n={n}: {e}"));
        if n > 0 {
            let hits = t.knn(points[0].coords(), n.min(5)).unwrap();
            assert_eq!(hits.len(), n.min(5));
        }
    }
}

#[test]
fn bulk_load_persists() {
    let dir = std::env::temp_dir().join(format!("sr-bulk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bulk.pages");
    let points = uniform(500, 4, 421);
    {
        let mut t = SrTree::create(&path, 4).unwrap();
        t.bulk_load(with_ids(&points)).unwrap();
        t.flush().unwrap();
    }
    let t = SrTree::open(&path).unwrap();
    assert_eq!(t.len(), 500);
    verify::check(&t).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
#[should_panic(expected = "empty tree")]
fn bulk_load_rejects_non_empty_tree() {
    let mut t = SrTree::create_in_memory(2, 8192).unwrap();
    t.insert(Point::new(vec![0.0, 0.0]), 0).unwrap();
    let _ = t.bulk_load(vec![(Point::new(vec![1.0, 1.0]), 1)]);
}
