//! Tests of the ablation knobs: every variant must stay *correct* (k-NN
//! equals brute force, invariants hold); only the efficiency differs.

use sr_dataset::{real_sim, sample_queries, uniform};
use sr_pager::PageFile;
use sr_query::brute_force_knn;
use sr_tree::{verify, DistanceBound, RadiusRule, SrOptions, SrTree};

fn build_with(points: &[sr_geometry::Point], options: SrOptions) -> SrTree {
    let mut t = SrTree::create_with_options(
        PageFile::create_in_memory(2048).unwrap(),
        points[0].dim(),
        64,
        options,
    )
    .unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

#[test]
fn every_variant_is_correct() {
    let points = uniform(600, 8, 301);
    let flat: Vec<(&[f32], u64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (p.coords(), i as u64))
        .collect();
    for options in [
        SrOptions::default(),
        SrOptions {
            radius_rule: RadiusRule::SphereOnly,
            ..Default::default()
        },
        SrOptions {
            disable_reinsertion: true,
            ..Default::default()
        },
        SrOptions {
            radius_rule: RadiusRule::SphereOnly,
            disable_reinsertion: true,
        },
    ] {
        let t = build_with(&points, options);
        verify::check(&t).unwrap_or_else(|e| panic!("{options:?}: {e}"));
        for qi in [0usize, 100, 599] {
            let q = points[qi].coords();
            let got = t.knn(q, 9).unwrap();
            let want = brute_force_knn(flat.iter().copied(), q, 9);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist2 - w.dist2).abs() < 1e-9, "{options:?}");
            }
        }
    }
}

#[test]
fn all_distance_bounds_agree_on_results() {
    let points = real_sim(2_000, 16, 303);
    let t = build_with(&points, SrOptions::default());
    let queries = sample_queries(&points, 10, 305);
    for q in &queries {
        let both = t
            .knn_with_bound(q.coords(), 21, DistanceBound::Both)
            .unwrap();
        let sphere = t
            .knn_with_bound(q.coords(), 21, DistanceBound::SphereOnly)
            .unwrap();
        let rect = t
            .knn_with_bound(q.coords(), 21, DistanceBound::RectOnly)
            .unwrap();
        let ids = |v: &[sr_tree::Neighbor]| v.iter().map(|n| n.data).collect::<Vec<_>>();
        assert_eq!(ids(&both), ids(&sphere));
        assert_eq!(ids(&both), ids(&rect));
    }
}

#[test]
fn combined_bound_prunes_at_least_as_well() {
    // The max of two lower bounds dominates each one, so the combined
    // bound can never read *more* pages on the same tree.
    let points = real_sim(4_000, 16, 307);
    let t = build_with(&points, SrOptions::default());
    let queries = sample_queries(&points, 40, 309);
    let reads = |bound: DistanceBound| {
        t.pager().set_cache_capacity(0).unwrap();
        t.pager().reset_stats();
        for q in &queries {
            t.knn_with_bound(q.coords(), 21, bound).unwrap();
        }
        t.pager().stats().tree_reads()
    };
    let both = reads(DistanceBound::Both);
    let sphere = reads(DistanceBound::SphereOnly);
    let rect = reads(DistanceBound::RectOnly);
    assert!(both <= sphere, "combined {both} vs sphere {sphere}");
    assert!(both <= rect, "combined {both} vs rect {rect}");
    // And on non-uniform data it should be strictly better than at least
    // one single-shape bound.
    assert!(both < sphere.max(rect));
}

#[test]
fn sr_radius_rule_shrinks_spheres() {
    let points = real_sim(3_000, 16, 311);
    let sr_rule = build_with(&points, SrOptions::default());
    let ss_rule = build_with(
        &points,
        SrOptions {
            radius_rule: RadiusRule::SphereOnly,
            ..Default::default()
        },
    );
    let mean_radius = |t: &SrTree| {
        let rs = t.leaf_regions().unwrap();
        rs.iter().map(|(s, _)| s.radius() as f64).sum::<f64>() / rs.len() as f64
    };
    // Leaf spheres are identical (no children to take d_r over), so look
    // at query pruning instead: the min(d_s, d_r) tree must not read
    // more pages.
    let queries = sample_queries(&points, 40, 313);
    let reads = |t: &SrTree| {
        t.pager().set_cache_capacity(0).unwrap();
        t.pager().reset_stats();
        for q in &queries {
            t.knn(q.coords(), 21).unwrap();
        }
        t.pager().stats().tree_reads()
    };
    let _ = mean_radius(&sr_rule); // exercised for coverage of the walker
    let with_rule = reads(&sr_rule);
    let without = reads(&ss_rule);
    assert!(
        with_rule <= without,
        "min(d_s,d_r) reads {with_rule} vs d_s-only {without}"
    );
}

#[test]
fn options_survive_reopen() {
    let dir = std::env::temp_dir().join(format!("sr-ablation-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("opts.pages");
    let points = uniform(300, 4, 317);
    {
        let mut t = SrTree::create_with_options(
            sr_pager::PageFile::create_with_page_size(&path, 2048).unwrap(),
            4,
            64,
            SrOptions {
                radius_rule: RadiusRule::SphereOnly,
                disable_reinsertion: true,
            },
        )
        .unwrap();
        for (i, p) in points.iter().enumerate() {
            t.insert(p.clone(), i as u64).unwrap();
        }
        t.flush().unwrap();
    }
    let t = SrTree::open(&path).unwrap();
    assert_eq!(t.params().radius_rule, RadiusRule::SphereOnly);
    assert!(!t.params().reinsert_enabled);
    // The verifier recomputes regions with the persisted rule; a rule
    // mismatch would fail here.
    verify::check(&t).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn best_first_equals_depth_first_and_reads_no_more() {
    let points = real_sim(4_000, 16, 601);
    let t = build_with(&points, SrOptions::default());
    let queries = sample_queries(&points, 40, 603);
    let mut df_reads = 0u64;
    let mut bf_reads = 0u64;
    for q in &queries {
        t.pager().set_cache_capacity(0).unwrap();
        t.pager().reset_stats();
        let df = t.knn(q.coords(), 21).unwrap();
        df_reads += t.pager().stats().tree_reads();

        t.pager().reset_stats();
        let bf = t.knn_best_first(q.coords(), 21).unwrap();
        bf_reads += t.pager().stats().tree_reads();

        assert_eq!(
            df.iter().map(|n| n.data).collect::<Vec<_>>(),
            bf.iter().map(|n| n.data).collect::<Vec<_>>()
        );
    }
    // Best-first is I/O-optimal: never more page reads than DFS.
    assert!(
        bf_reads <= df_reads,
        "best-first {bf_reads} vs DFS {df_reads}"
    );
}
