//! Failure injection: when the backing store starts failing, every tree
//! operation must surface an error — never panic, never corrupt the
//! in-memory handle so badly that recovery is impossible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sr_dataset::uniform;
use sr_pager::{MemPageStore, PageFile, PageId, PageStore, PagerError};
use sr_tree::{SrTree, TreeError};

/// A store that fails every operation once `fail_after` operations have
/// happened.
struct FailingStore {
    inner: MemPageStore,
    ops: AtomicU64,
    fail_after: u64,
}

impl FailingStore {
    fn new(page_size: usize, fail_after: u64) -> Self {
        FailingStore {
            inner: MemPageStore::new(page_size),
            ops: AtomicU64::new(0),
            fail_after,
        }
    }

    fn trip(&self) -> Result<(), PagerError> {
        let n = self.ops.fetch_add(1, Ordering::Relaxed);
        if n >= self.fail_after {
            Err(PagerError::Io(std::io::Error::other("injected failure")))
        } else {
            Ok(())
        }
    }
}

impl PageStore for FailingStore {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<(), PagerError> {
        self.trip()?;
        self.inner.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, data: &[u8]) -> Result<(), PagerError> {
        self.trip()?;
        self.inner.write_page(id, data)
    }
    fn grow(&self, n: u64) -> Result<(), PagerError> {
        self.trip()?;
        self.inner.grow(n)
    }
    fn sync(&self) -> Result<(), PagerError> {
        // sync is called from Drop paths; keep it infallible so drops
        // stay quiet.
        self.inner.sync()
    }
}

/// Drive inserts until the injected failure fires; the error must be a
/// clean `TreeError::Pager`, at any failure point.
#[test]
fn insert_failures_surface_as_errors() {
    let points = uniform(300, 4, 501);
    for fail_after in [5u64, 17, 60, 150, 400] {
        let store = Arc::new(FailingStore::new(1024, fail_after));
        // PageFile takes Box<dyn PageStore>; wrap the Arc.
        struct Shared(Arc<FailingStore>);
        impl PageStore for Shared {
            fn page_size(&self) -> usize {
                self.0.page_size()
            }
            fn num_pages(&self) -> u64 {
                self.0.num_pages()
            }
            fn read_page(&self, id: PageId, buf: &mut [u8]) -> Result<(), PagerError> {
                self.0.read_page(id, buf)
            }
            fn write_page(&self, id: PageId, data: &[u8]) -> Result<(), PagerError> {
                self.0.write_page(id, data)
            }
            fn grow(&self, n: u64) -> Result<(), PagerError> {
                self.0.grow(n)
            }
            fn sync(&self) -> Result<(), PagerError> {
                self.0.sync()
            }
        }
        let Ok(pf) = PageFile::create_from_store(Box::new(Shared(store.clone()))) else {
            continue; // failed during creation: also a clean error
        };
        // Cache off so failures hit promptly and deterministically.
        if pf.set_cache_capacity(0).is_err() {
            continue;
        }
        let Ok(mut tree) = SrTree::create_from(pf, 4, 64) else {
            continue;
        };
        let mut saw_error = false;
        for (i, p) in points.iter().enumerate() {
            match tree.insert(p.clone(), i as u64) {
                Ok(()) => {}
                Err(TreeError::Pager(_)) => {
                    saw_error = true;
                    break;
                }
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        assert!(
            saw_error,
            "fail_after={fail_after}: the injected failure never surfaced"
        );
        // Queries after the failure also error cleanly rather than panic.
        match tree.knn(points[0].coords(), 3) {
            Ok(_) | Err(TreeError::Pager(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}

/// A failure during a query leaves the tree reusable once the store
/// recovers (reads are side-effect free).
#[test]
fn query_failures_do_not_poison_the_tree() {
    let points = uniform(500, 4, 503);
    // Build cleanly first.
    let pf = PageFile::create_in_memory(1024);
    let mut tree = SrTree::create_from(pf, 4, 64).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // No failure store here — instead simulate recovery by checking the
    // query path is pure: two identical queries give identical answers
    // even after an interleaved failed-dimension query (which errors
    // before touching any page).
    let good = tree.knn(points[0].coords(), 5).unwrap();
    assert!(tree.knn(&[0.0, 0.0], 5).is_err()); // wrong dimension
    let again = tree.knn(points[0].coords(), 5).unwrap();
    assert_eq!(
        good.iter().map(|n| n.data).collect::<Vec<_>>(),
        again.iter().map(|n| n.data).collect::<Vec<_>>()
    );
}
