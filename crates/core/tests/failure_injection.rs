//! Failure injection: when the backing store starts failing, every tree
//! operation must surface an error — never panic, never corrupt the
//! in-memory handle so badly that recovery is impossible.
//!
//! The fault layer is the pager's own `FaultInjector` (see
//! `sr_pager::fault`); `crash_after(n)` reproduces the "store dies after
//! N operations" schedule at every interesting point of an insert
//! volume. The repo-level `tests/fault_injection.rs` covers targeted
//! single-write faults, torn writes, and reopen-after-crash.

use sr_dataset::uniform;
use sr_pager::{FaultInjector, FaultKind, MemLogStore, MemPageStore, PageFile, PagerError};
use sr_tree::{SrTree, TreeError};

/// Wrap both halves of the pager — page store *and* write-ahead log —
/// around one fault state, so the budget counts every I/O the tree
/// performs (WAL appends included).
fn faulted_pagefile(page_size: usize) -> (PageFile, sr_pager::FaultHandle) {
    let (store, log, handle) = FaultInjector::wrap_parts(
        Box::new(MemPageStore::new(page_size)),
        Box::new(MemLogStore::new()),
    );
    let pf = PageFile::create_from_parts(store, log).unwrap();
    (pf, handle)
}

/// Drive inserts until the injected cutoff fires; the error must be a
/// clean `TreeError::Pager`, at any failure point.
#[test]
fn insert_failures_surface_as_errors() {
    let points = uniform(300, 4, 501);
    for fail_after in [5u64, 17, 60, 150, 400] {
        let (pf, handle) = faulted_pagefile(1024);
        // Cache off so failures hit promptly and deterministically.
        pf.set_cache_capacity(0).unwrap();
        let mut tree = SrTree::create_from(pf, 4, 64).unwrap();

        handle.crash_after(fail_after);
        let mut saw_error = false;
        for (i, p) in points.iter().enumerate() {
            match tree.insert(p.clone(), i as u64) {
                Ok(()) => {}
                Err(TreeError::Pager(PagerError::Injected { kind, .. })) => {
                    assert_eq!(kind, FaultKind::Crash);
                    saw_error = true;
                    break;
                }
                Err(other) => panic!("unexpected error kind: {other}"),
            }
        }
        assert!(
            saw_error,
            "fail_after={fail_after}: the injected failure never surfaced"
        );
        assert!(handle.crashed());
        // Queries against the dead store also error cleanly rather than
        // panic.
        match tree.knn(points[0].coords(), 3) {
            Ok(_) | Err(TreeError::Pager(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
        // Once the store recovers, queries run again without panicking
        // (the tree may legitimately be mid-split, so no answer check).
        handle.clear();
        match tree.knn(points[0].coords(), 3) {
            Ok(_) | Err(TreeError::Pager(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
        }
    }
}

/// A failure during a query leaves the tree reusable once the store
/// recovers (reads are side-effect free).
#[test]
fn query_failures_do_not_poison_the_tree() {
    let points = uniform(500, 4, 503);
    let (pf, handle) = faulted_pagefile(1024);
    pf.set_cache_capacity(0).unwrap();
    let mut tree = SrTree::create_from(pf, 4, 64).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let good = tree.knn(points[0].coords(), 5).unwrap();

    // Fail the first read of the next query, then clear: the repeated
    // query must give the identical answer.
    handle.fail_nth_read(0);
    assert!(matches!(
        tree.knn(points[0].coords(), 5),
        Err(TreeError::Pager(PagerError::Injected {
            kind: FaultKind::Read,
            ..
        }))
    ));
    handle.clear();
    let again = tree.knn(points[0].coords(), 5).unwrap();
    assert_eq!(
        good.iter().map(|n| n.data).collect::<Vec<_>>(),
        again.iter().map(|n| n.data).collect::<Vec<_>>()
    );

    // A dimension-mismatch query errors before touching any page and
    // likewise leaves the tree intact.
    assert!(tree.knn(&[0.0, 0.0], 5).is_err());
    let third = tree.knn(points[0].coords(), 5).unwrap();
    assert_eq!(
        again.iter().map(|n| n.data).collect::<Vec<_>>(),
        third.iter().map(|n| n.data).collect::<Vec<_>>()
    );
}
