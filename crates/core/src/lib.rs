//! The SR-tree — *"The SR-tree: An Index Structure for High-Dimensional
//! Nearest Neighbor Queries"*, Norio Katayama & Shin'ichi Satoh,
//! SIGMOD 1997.
//!
//! The SR-tree (Sphere/Rectangle-tree) is a disk-based index whose node
//! regions are the **intersection of a bounding sphere and a bounding
//! rectangle**. The paper's §3 measurement shows the two shapes are
//! complementary in high dimension:
//!
//! * bounding rectangles have small *volume* but long *diameters* (a unit
//!   cube's diagonal is `√D`);
//! * bounding spheres have short diameters but huge volumes (the unit
//!   ball's volume collapses relative to its circumscribed cube).
//!
//! Intersecting them yields regions with both small volume and short
//! diameter, improving region disjointness and therefore nearest-neighbor
//! pruning. Concretely (paper §4):
//!
//! * a node entry stores sphere + rectangle + subtree point count + child
//!   pointer — three times the SS-tree entry, giving ⅓ of its fanout (the
//!   "fanout problem" of §5.3 that the leaf-read savings more than repay);
//! * insertion is the SS-tree's centroid algorithm; on updates the parent
//!   sphere radius is `min(d_s, d_r)` where `d_s` encloses the child
//!   spheres and `d_r = max MAXDIST(center, child rect)` encloses the
//!   child rectangles (§4.2);
//! * the query-to-region distance is `max(d_sphere, d_rect)` — a tighter
//!   lower bound than either baseline uses (§4.4).
//!
//! ```
//! use sr_tree::SrTree;
//! use sr_geometry::Point;
//!
//! let mut tree = SrTree::create_in_memory(2, 8192).unwrap();
//! for (i, xy) in [[0.0f32, 0.0], [1.0, 1.0], [0.2, 0.1]].iter().enumerate() {
//!     tree.insert(Point::new(xy.to_vec()), i as u64).unwrap();
//! }
//! let hits = tree.knn(&[0.0, 0.0], 2).unwrap();
//! assert_eq!(hits[0].data, 0);
//! ```

#![forbid(unsafe_code)]
// Tree internals index into child/entry vectors whose bounds are
// maintained as structural invariants (checked by `verify`); the
// clippy index ban applies to the audited geometry/pager hot paths.
#![allow(clippy::indexing_slicing)]

mod bulk;
mod delete;
mod error;
mod insert;
mod node;
mod params;
mod search;
mod split;
mod tree;
pub mod verify;

pub use error::{Result, TreeError};
pub use params::RadiusRule;
pub use params::SrParams;
pub use search::DistanceBound;
pub use tree::{SrOptions, SrTree};

pub use sr_query::Neighbor;
