//! Capacity parameters for the SR-tree (Table 1 of the paper).
//!
//! A node entry stores both region shapes: bounding sphere
//! (`(D+1)·8` bytes) + bounding rectangle (`2·D·8`) + subtree point count
//! (4) + child pointer (8). At `D = 16` with 8 KiB pages that is 404
//! bytes → 20 entries per node, one third of the SS-tree's 55 and two
//! thirds of the R\*-tree's 30 — exactly the fanout relationship §5.3
//! analyses. Leaves are identical across the three structures (12
//! entries).

/// Per-node header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// How the parent bounding-sphere radius is computed — an ablation knob
/// for the paper's §4.2 rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RadiusRule {
    /// `min(d_s, d_r)` — the SR-tree rule; `d_r` (the rectangle bound)
    /// is what shrinks spheres below what the SS-tree can achieve.
    #[default]
    MinDsDr,
    /// `d_s` only — the SS-tree rule, retained inside an SR-tree to
    /// measure how much the §4.2 radius refinement contributes.
    SphereOnly,
}

/// Capacity and policy parameters of an SR-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in an internal node.
    pub max_node: usize,
    /// Minimum entries in a non-root internal node (40%).
    pub min_node: usize,
    /// Maximum entries in a leaf.
    pub max_leaf: usize,
    /// Minimum entries in a non-root leaf (40%).
    pub min_leaf: usize,
    /// Entries removed by forced reinsertion (30%, ≥ 1).
    pub reinsert_node: usize,
    /// Entries removed by forced reinsertion from a leaf.
    pub reinsert_leaf: usize,
    /// Parent-sphere radius rule (§4.2). Default: the SR rule.
    pub radius_rule: RadiusRule,
    /// Whether forced reinsertion runs at all (ablation; default true).
    pub reinsert_enabled: bool,
}

impl SrParams {
    /// Derive parameters from the usable page payload, dimensionality and
    /// per-entry data area.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least 2 entries per node and per
    /// leaf, or if `data_area < 8`.
    #[allow(clippy::panic)] // documented contract panic; fallible callers use try_derive
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        match Self::try_derive(page_capacity, dim, data_area) {
            Some(p) => p,
            // srlint: allow(panic) -- documented contract panic on
            // construction-time configuration; fallible callers (the
            // on-disk open path) go through `try_derive`.
            None => panic!(
                "invalid parameters: page_capacity={page_capacity} dim={dim} \
                 data_area={data_area} (need dim > 0, data_area >= 8, and at \
                 least 2 entries per node and leaf)"
            ),
        }
    }

    /// Non-panicking variant of [`SrParams::derive`] for parameters read
    /// back from disk, where every precondition violation is a corruption
    /// symptom rather than a caller bug: returns `None` wherever `derive`
    /// would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(SrParams {
            dim,
            data_area,
            max_node,
            min_node: min_fill(max_node),
            max_leaf,
            min_leaf: min_fill(max_leaf),
            reinsert_node: reinsert_count(max_node),
            reinsert_leaf: reinsert_count(max_leaf),
            radius_rule: RadiusRule::default(),
            reinsert_enabled: true,
        })
    }

    /// Bytes of one internal-node entry on disk: sphere + rect + count +
    /// child pointer.
    pub fn node_entry_bytes(dim: usize) -> usize {
        (dim + 1) * 8 + 2 * dim * 8 + 4 + 8
    }

    /// Bytes of one leaf entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

pub(crate) fn min_fill(max: usize) -> usize {
    ((max * 2) / 5).max(2).min(max / 2)
}

pub(crate) fn reinsert_count(max: usize) -> usize {
    ((max * 3) / 10).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_at_16_dimensions() {
        let p = SrParams::derive(8187, 16, 512);
        // node entry = 136 + 256 + 12 = 404 → (8187-4)/404 = 20
        assert_eq!(p.max_node, 20);
        assert_eq!(p.max_leaf, 12);
    }

    #[test]
    fn fanout_relationship_of_section_5_3() {
        // SR fanout ≈ 1/3 of SS, 2/3 of R*.
        let sr = SrParams::derive(8187, 16, 512).max_node as f64;
        let ss = 55.0; // SS-tree at the same page size (sr-sstree tests)
        let rstar = 30.0;
        assert!((sr / ss - 1.0 / 3.0).abs() < 0.05);
        assert!((sr / rstar - 2.0 / 3.0).abs() < 0.05);
    }

    #[test]
    fn minimums_and_reinsert_fractions() {
        let p = SrParams::derive(8187, 16, 512);
        assert_eq!(p.min_node, 8);
        assert_eq!(p.min_leaf, 4);
        assert_eq!(p.reinsert_node, 6);
        assert_eq!(p.reinsert_leaf, 3);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn tiny_page_rejected() {
        let _ = SrParams::derive(500, 64, 512);
    }
}
