//! SR-tree insertion — the SS-tree's centroid algorithm (§4.2 of the
//! paper: "We applied the centroid-based algorithm of the SS-tree to the
//! SR-tree"), with *both* region shapes updated on every change.

use std::collections::HashSet;

use sr_geometry::Point;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::split;
use crate::tree::SrTree;

/// An entry being inserted at some level.
pub(crate) enum AnyEntry {
    Leaf(LeafEntry),
    Inner(InnerEntry),
}

impl AnyEntry {
    fn center(&self) -> &Point {
        match self {
            AnyEntry::Leaf(e) => &e.point,
            AnyEntry::Inner(e) => e.sphere.center(),
        }
    }
}

/// Insert one point.
pub(crate) fn insert_point(tree: &mut SrTree, point: Point, data: u64) -> Result<()> {
    let mut reinserted: HashSet<PageId> = HashSet::new();
    insert_at_level(
        tree,
        AnyEntry::Leaf(LeafEntry { point, data }),
        0,
        &mut reinserted,
    )?;
    tree.count += 1;
    tree.save_meta()?;
    Ok(())
}

/// Insert `entry` at `target_level` with the SS-tree overflow policy
/// (reinsert unless this node already reinserted during this operation).
pub(crate) fn insert_at_level(
    tree: &mut SrTree,
    entry: AnyEntry,
    target_level: u16,
    reinserted: &mut HashSet<PageId>,
) -> Result<()> {
    debug_assert!((target_level as u32) < tree.height);
    let path = choose_path(tree, entry.center(), target_level)?;
    let &target = path
        .last()
        .ok_or_else(|| TreeError::Corrupt("empty insertion path".into()))?;
    let mut node = tree.read_node(target, target_level)?;
    match (entry, &mut node) {
        (AnyEntry::Leaf(e), Node::Leaf(entries)) => entries.push(e),
        (AnyEntry::Inner(e), Node::Inner { entries, .. }) => entries.push(e),
        _ => {
            return Err(TreeError::Corrupt(
                "insertion target level does not match the node kind on disk".into(),
            ))
        }
    }

    let mut idx = path.len() - 1;
    loop {
        if node.len() <= tree.max_for(&node) {
            tree.write_node(path[idx], &node)?;
            propagate_regions(tree, &path, idx, &node)?;
            return Ok(());
        }
        if idx == 0 {
            split_root(tree, node)?;
            return Ok(());
        }
        if tree.params.reinsert_enabled && !reinserted.contains(&path[idx]) {
            reinserted.insert(path[idx]);
            let level = node.level();
            let removed = remove_farthest(tree, &mut node)?;
            tree.write_node(path[idx], &node)?;
            propagate_regions(tree, &path, idx, &node)?;
            for e in removed.into_iter().rev() {
                insert_at_level(tree, e, level, reinserted)?;
            }
            return Ok(());
        }
        // --- split ---
        let (a, b) = split::split_node(&tree.params, node);
        let b_id = tree.allocate_node(&b)?;
        tree.write_node(path[idx], &a)?;
        let (a_region, a_weight) = (a.region(tree.params.radius_rule)?, a.weight());
        let (b_region, b_weight) = (b.region(tree.params.radius_rule)?, b.weight());
        idx -= 1;
        let level = (tree.height as usize - 1 - idx) as u16;
        let mut parent = tree.read_node(path[idx], level)?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == path[idx + 1])
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            slot.sphere = a_region.sphere;
            slot.rect = a_region.rect;
            slot.weight = a_weight;
            entries.push(InnerEntry {
                sphere: b_region.sphere,
                rect: b_region.rect,
                weight: b_weight,
                child: b_id,
            });
        } else {
            return Err(TreeError::Corrupt(
                "parent of a split node is not an inner node".into(),
            ));
        }
        node = parent;
    }
}

/// Descend choosing the child whose centroid is nearest the entry's
/// center (the SS-tree ChooseSubtree, verbatim per §4.2).
fn choose_path(tree: &SrTree, center: &Point, target_level: u16) -> Result<Vec<PageId>> {
    let mut path = vec![tree.root];
    let mut level = (tree.height - 1) as u16;
    let mut id = tree.root;
    while level > target_level {
        let node = tree.read_node(id, level)?;
        let entries = match &node {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "leaf found above the target level while descending".into(),
                ))
            }
        };
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let d = e.sphere.center().dist2(center);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        id = entries[best].child;
        path.push(id);
        level -= 1;
    }
    Ok(path)
}

/// Refresh the (sphere, rect, weight) entries recorded for `path[idx]` in
/// every ancestor — the SR-tree "needs to update both bounding spheres
/// and bounding rectangles" (§4.2).
pub(crate) fn propagate_regions(
    tree: &SrTree,
    path: &[PageId],
    idx: usize,
    node: &Node,
) -> Result<()> {
    let mut child_region = node.region(tree.params.radius_rule)?;
    let mut child_weight = node.weight();
    let mut child_id = path[idx];
    for j in (0..idx).rev() {
        let level = (tree.height as usize - 1 - j) as u16;
        let mut parent = tree.read_node(path[j], level)?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child_id)
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            if slot.sphere == child_region.sphere
                && slot.rect == child_region.rect
                && slot.weight == child_weight
            {
                return Ok(());
            }
            slot.sphere = child_region.sphere;
            slot.rect = child_region.rect;
            slot.weight = child_weight;
        }
        tree.write_node(path[j], &parent)?;
        child_region = parent.region(tree.params.radius_rule)?;
        child_weight = parent.weight();
        child_id = path[j];
    }
    Ok(())
}

/// Remove the reinsert fraction of entries farthest from the centroid,
/// farthest-first.
fn remove_farthest(tree: &SrTree, node: &mut Node) -> Result<Vec<AnyEntry>> {
    let center = node.centroid()?;
    let p = if node.is_leaf() {
        tree.params.reinsert_leaf
    } else {
        tree.params.reinsert_node
    };
    match node {
        Node::Leaf(entries) => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                entries[b]
                    .point
                    .dist2(&center)
                    .total_cmp(&entries[a].point.dist2(&center))
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Leaf)
                .collect())
        }
        Node::Inner { entries, .. } => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                entries[b]
                    .sphere
                    .center()
                    .dist2(&center)
                    .total_cmp(&entries[a].sphere.center().dist2(&center))
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Inner)
                .collect())
        }
    }
}

fn extract<T>(entries: &mut Vec<T>, victims: &[usize]) -> Vec<T> {
    let mut sorted = victims.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut removed: Vec<(usize, T)> = sorted.into_iter().map(|i| (i, entries.remove(i))).collect();
    let mut out = Vec::with_capacity(victims.len());
    for &v in victims {
        // `victims` holds distinct indices, so every lookup hits.
        if let Some(pos) = removed.iter().position(|(i, _)| *i == v) {
            out.push(removed.remove(pos).1);
        }
    }
    out
}

/// Split an overflowing root, growing the tree by one level.
fn split_root(tree: &mut SrTree, node: Node) -> Result<()> {
    let level = node.level();
    let (a, b) = split::split_node(&tree.params, node);
    let a_id = tree.allocate_node(&a)?;
    let b_id = tree.allocate_node(&b)?;
    let (ra, rb) = (
        a.region(tree.params.radius_rule)?,
        b.region(tree.params.radius_rule)?,
    );
    let new_root = Node::Inner {
        level: level + 1,
        entries: vec![
            InnerEntry {
                sphere: ra.sphere,
                rect: ra.rect,
                weight: a.weight(),
                child: a_id,
            },
            InnerEntry {
                sphere: rb.sphere,
                rect: rb.rect,
                weight: b.weight(),
                child: b_id,
            },
        ],
    };
    tree.pf.free(tree.root)?;
    let root_id = tree.allocate_node(&new_root)?;
    tree.root = root_id;
    tree.height += 1;
    tree.save_meta()?;
    Ok(())
}
