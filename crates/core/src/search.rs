//! Query plumbing — the §4.4 region distance.
//!
//! "Because a region of the SR-tree is the intersection of a bounding
//! sphere and a bounding rectangle, the minimum distance from a search
//! point to a region is defined as the longer one between the minimum
//! distance to its bounding sphere and the minimum distance to its
//! bounding rectangle": `d = max(d_s, d_r)`. This is a valid lower bound
//! for the intersection and strictly tighter than either shape alone,
//! which is where the SR-tree's pruning advantage comes from.

use sr_geometry::{dist2, rect_min_dist2_f64le, sphere_min_dist2_f64le, CONTAINMENT_EPS};
use sr_obs::Recorder;
use sr_pager::{LeafColumns, PageId, PageReader};
use sr_query::{scan_leaf_columns, Expansion, KnnSource, LeafScan, Neighbor, QueryError};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::SrTree;

/// Which lower bound scores a region during search — an ablation knob
/// for the paper's §4.4 design choice. [`DistanceBound::Both`] is the
/// SR-tree's bound and the default everywhere; the single-shape bounds
/// exist to measure how much each shape contributes (see the `ablation`
/// experiment in `sr-bench`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DistanceBound {
    /// `max(d_sphere, d_rect)` — the SR-tree rule (§4.4).
    #[default]
    Both,
    /// Sphere distance only — what the SS-tree would prune with.
    SphereOnly,
    /// Rectangle `MINDIST` only — what the R\*-tree would prune with.
    RectOnly,
}

/// The allocation-free leaf fast path: score a parsed columnar view
/// with the shared kernels. The page read and the payload validation
/// stay in the caller — parsing untrusted bytes may fail with a
/// formatted diagnostic, but everything past this boundary must not
/// allocate, lock, or touch the store, and srlint's L10 pass enforces
/// exactly that.
// srlint: hot
fn scan_leaf_fast<N>(
    cols: &LeafColumns<'_>,
    query: &[f32],
    prune2: f64,
    scan: LeafScan,
    out: &mut Expansion<N>,
) -> Result<()> {
    scan_leaf_columns(cols, query, prune2, scan, out).map_err(|e| TreeError::Corrupt(e.to_string()))
}

struct Source<'a> {
    tree: &'a SrTree,
    bound: DistanceBound,
    scan: LeafScan,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        // `height == 0` can only come from a hand-edited or truncated
        // metadata page, but `height - 1` below would underflow on it, so
        // both the no-points and the no-levels cases mean "nothing to
        // search".
        if self.tree.is_empty() || self.tree.height == 0 {
            return Ok(None);
        }
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        prune2: f64,
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        if level > 0 {
            // Zero-copy inner expansion: compute each child's region
            // bound straight off the page buffer. Decoding a node page
            // materialises ~20 entries × (center + rect + sphere) heap
            // vectors — at bench scale that was ~10k allocations per
            // query, dominating the warm-pool profile. The raw f64-LE
            // values are exact widenings of the in-memory f32s, so the
            // `*_f64le` kernels are bit-identical to the decoded bounds
            // and the traversal (and its tie behaviour) is unchanged.
            let payload = self.tree.node_payload(id)?;
            let mut r = PageReader::new(&payload);
            let _level = r.get_u16()?;
            let n = r.get_u16()?;
            let dim = self.tree.params.dim;
            // The entry count came off the page: bound it by the bytes
            // actually present before it drives the read loop, so a
            // corrupt header fails here with one clear error instead of
            // partway through the entries.
            let need = usize::from(n) * (dim * 8 * 3 + 20);
            if need > r.remaining() {
                return Err(TreeError::Corrupt(format!(
                    "inner node claims {n} entries but only {} payload bytes remain",
                    r.remaining()
                )));
            }
            let corrupt = |e: sr_geometry::GeometryError| TreeError::Corrupt(e.to_string());
            for _ in 0..n {
                let center = r.get_bytes(dim * 8)?;
                let radius = r.get_f64()?;
                let lo = r.get_bytes(dim * 8)?;
                let hi = r.get_bytes(dim * 8)?;
                let _weight = r.get_u32()?;
                let child = (r.get_u64()?, level - 1);
                // The §4.4 combined bound (or a single-shape ablation).
                // The combined form keeps both components so prune
                // events can be attributed to the shape that earned
                // them (sr-obs prune-breakdown counters).
                match self.bound {
                    DistanceBound::Both => out.push_max_branch(
                        sphere_min_dist2_f64le(center, radius, query).map_err(corrupt)?,
                        rect_min_dist2_f64le(lo, hi, query).map_err(corrupt)?,
                        child,
                    ),
                    DistanceBound::SphereOnly => out.push_sphere_branch(
                        sphere_min_dist2_f64le(center, radius, query).map_err(corrupt)?,
                        child,
                    ),
                    DistanceBound::RectOnly => out.push_rect_branch(
                        rect_min_dist2_f64le(lo, hi, query).map_err(corrupt)?,
                        child,
                    ),
                }
            }
            return Ok(());
        }
        if self.scan != LeafScan::Scalar {
            // Columnar fast path: score the leaf straight off the page
            // buffer, never materialising per-entry `Point`s. One
            // `pf.read` per expansion, same as the scalar path, so the
            // `leaf_expansions == leaf_reads` invariant holds unchanged.
            let payload = self.tree.leaf_payload(id)?;
            let cols = LeafColumns::parse(&payload, self.tree.params.dim)?;
            scan_leaf_fast(&cols, query, prune2, self.scan, out)?;
            return Ok(());
        }
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.push_point(dist2(e.point.coords(), query), e.data);
                }
            }
            Node::Inner { .. } => {
                return Err(TreeError::Corrupt("inner node page at leaf level".into()));
            }
        }
        Ok(())
    }
}

pub(crate) fn knn<R: Recorder + ?Sized>(
    tree: &SrTree,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    knn_with_bound(tree, query, k, DistanceBound::Both, rec)
}

pub(crate) fn knn_with_bound<R: Recorder + ?Sized>(
    tree: &SrTree,
    query: &[f32],
    k: usize,
    bound: DistanceBound,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_with(
        &Source {
            tree,
            bound,
            scan: LeafScan::default(),
        },
        query,
        k,
        rec,
    )
}

pub(crate) fn knn_with_scan<R: Recorder + ?Sized>(
    tree: &SrTree,
    query: &[f32],
    k: usize,
    scan: LeafScan,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_with(
        &Source {
            tree,
            bound: DistanceBound::Both,
            scan,
        },
        query,
        k,
        rec,
    )
}

pub(crate) fn knn_best_first<R: Recorder + ?Sized>(
    tree: &SrTree,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_best_first_with(
        &Source {
            tree,
            bound: DistanceBound::Both,
            scan: LeafScan::default(),
        },
        query,
        k,
        rec,
    )
}

pub(crate) fn range<R: Recorder + ?Sized>(
    tree: &SrTree,
    query: &[f32],
    radius: f64,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::range_with(
        &Source {
            tree,
            bound: DistanceBound::Both,
            scan: LeafScan::default(),
        },
        query,
        radius,
        rec,
    )
    .map_err(|e| match e {
        QueryError::InvalidRadius(r) => TreeError::InvalidRadius(r),
        QueryError::Source(e) => e,
    })
}

pub(crate) fn contains(tree: &SrTree, point: &sr_geometry::Point, data: u64) -> Result<bool> {
    fn walk(
        tree: &SrTree,
        id: PageId,
        level: u16,
        point: &sr_geometry::Point,
        data: u64,
    ) -> Result<bool> {
        match tree.read_node(id, level)? {
            Node::Leaf(entries) => Ok(entries.iter().any(|e| e.point == *point && e.data == data)),
            Node::Inner { entries, .. } => {
                for e in &entries {
                    // The rectangle is maintained with exact f32 min/max,
                    // so its test is authoritative; the sphere is rebuilt
                    // from rounded centroids, so a stored point can sit a
                    // few ulps outside it and the test needs tolerance or
                    // live entries become unfindable.
                    if e.rect.contains_point(point.coords())
                        && e.sphere.contains_point(point.coords(), CONTAINMENT_EPS)
                        && walk(tree, e.child, level - 1, point, data)?
                    {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
    if tree.is_empty() || tree.height == 0 {
        return Ok(false);
    }
    walk(tree, tree.root, (tree.height - 1) as u16, point, data)
}
