//! In-memory node representation, the §4.2 region computation, and the
//! page codec.

use sr_geometry::{
    bounding_rect_of_points, bounding_sphere_of_points, enclosing_radius_rects,
    enclosing_radius_spheres, next_radius_up, Centroid, Point, Rect, Sphere,
};
use sr_pager::{put_leaf_columns, LeafColumns, PageCodec, PageId, PageReader};

use crate::error::{Result, TreeError};
use crate::params::{RadiusRule, SrParams, NODE_HEADER};

/// One point stored in a leaf.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub point: Point,
    pub data: u64,
}

/// One child reference in an internal node — the paper's
/// `(S, R, w, child_pointer)` tuple.
#[derive(Clone, Debug)]
pub(crate) struct InnerEntry {
    pub sphere: Sphere,
    pub rect: Rect,
    pub weight: u64,
    pub child: PageId,
}

/// The region of an SR-tree node: the pair whose *intersection* is the
/// actual region.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Region {
    pub sphere: Sphere,
    pub rect: Rect,
}

/// A materialized node. Level 0 is the leaf level.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Inner {
        level: u16,
        entries: Vec<InnerEntry>,
    },
}

impl Node {
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// Total points in this node's subtree.
    pub fn weight(&self) -> u64 {
        match self {
            Node::Leaf(e) => e.len() as u64,
            Node::Inner { entries, .. } => entries.iter().map(|e| e.weight).sum(),
        }
    }

    /// The §4.2 region computation.
    ///
    /// * Center: the weighted centroid of the children (the points, for a
    ///   leaf).
    /// * Radius: `min(d_s, d_r)` — `d_s` encloses the child spheres,
    ///   `d_r = max_k MAXDIST(center, R_k)` encloses the child
    ///   rectangles. Choosing the smaller is what "permits the radius of
    ///   the SR-tree to be smaller than that of the SS-tree".
    /// * Rectangle: the minimum bounding rectangle of the child
    ///   rectangles (R-tree rule).
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] for an empty or zero-weight node — both are
    /// reachable from a corrupted page, never from a well-formed tree.
    pub fn region(&self, rule: RadiusRule) -> Result<Region> {
        match self {
            Node::Leaf(entries) => {
                let pts: Vec<&[f32]> = entries.iter().map(|e| e.point.coords()).collect();
                let sphere = bounding_sphere_of_points(&pts)
                    .ok_or_else(|| TreeError::Corrupt("region of an empty leaf".into()))?;
                let rect = bounding_rect_of_points(pts.iter().copied())
                    .ok_or_else(|| TreeError::Corrupt("region of an empty leaf".into()))?;
                Ok(Region { sphere, rect })
            }
            Node::Inner { entries, .. } => {
                let first = entries
                    .first()
                    .ok_or_else(|| TreeError::Corrupt("region of an empty node".into()))?;
                let mut c = Centroid::new(first.sphere.dim());
                for e in entries {
                    c.add(e.sphere.center().coords(), e.weight);
                }
                let center = c.finish().ok_or_else(|| {
                    TreeError::Corrupt("zero total weight in an internal node".into())
                })?;
                let d_s = enclosing_radius_spheres(
                    &center,
                    entries
                        .iter()
                        .map(|e| (e.sphere.center().coords(), e.sphere.radius())),
                );
                let radius = match rule {
                    RadiusRule::MinDsDr => {
                        let d_r = enclosing_radius_rects(&center, entries.iter().map(|e| &e.rect));
                        next_radius_up(d_s.min(d_r))
                    }
                    RadiusRule::SphereOnly => next_radius_up(d_s),
                };
                let mut rect = first.rect.clone();
                for e in entries.iter().skip(1) {
                    rect.expand_to_rect(&e.rect);
                }
                Ok(Region {
                    sphere: Sphere::new(center, radius),
                    rect,
                })
            }
        }
    }

    /// The centroid targeted by the nearest-centroid ChooseSubtree.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] for an empty or zero-weight node.
    pub fn centroid(&self) -> Result<Point> {
        let c = match self {
            Node::Leaf(entries) => {
                let first = entries
                    .first()
                    .ok_or_else(|| TreeError::Corrupt("centroid of an empty leaf".into()))?;
                let mut c = Centroid::new(first.point.dim());
                for e in entries {
                    c.add(e.point.coords(), 1);
                }
                c
            }
            Node::Inner { entries, .. } => {
                let first = entries
                    .first()
                    .ok_or_else(|| TreeError::Corrupt("centroid of an empty node".into()))?;
                let mut c = Centroid::new(first.sphere.dim());
                for e in entries {
                    c.add(e.sphere.center().coords(), e.weight);
                }
                c
            }
        };
        c.finish()
            .ok_or_else(|| TreeError::Corrupt("centroid of a zero-weight node".into()))
    }

    /// Serialize into a page payload.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] when the node violates the on-disk format's
    /// field widths (entry count beyond `u16`, subtree weight beyond `u32`)
    /// or when the encoded entries overrun `capacity`.
    pub fn encode(&self, params: &SrParams, capacity: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; capacity];
        let mut c = PageCodec::new(&mut buf);
        match self {
            Node::Leaf(entries) => {
                // Columnar (dimension-major) layout shared by every index
                // crate — same total bytes as the old row-major form, so
                // Table 1's fanout arithmetic is untouched.
                let refs: Vec<(&[f32], u64)> =
                    entries.iter().map(|e| (e.point.coords(), e.data)).collect();
                put_leaf_columns(&mut c, params.dim, params.data_area, &refs)?;
            }
            Node::Inner { entries, .. } => {
                c.put_u16(self.level())?;
                let n = u16::try_from(self.len()).map_err(|_| {
                    TreeError::Corrupt(format!("{} entries overflow the u16 count", self.len()))
                })?;
                c.put_u16(n)?;
                for e in entries {
                    let weight = u32::try_from(e.weight).map_err(|_| {
                        TreeError::Corrupt(format!(
                            "subtree weight {} overflows the u32 field",
                            e.weight
                        ))
                    })?;
                    c.put_coords(e.sphere.center().coords())?;
                    c.put_f64(f64::from(e.sphere.radius()))?;
                    c.put_coords(e.rect.min())?;
                    c.put_coords(e.rect.max())?;
                    c.put_u32(weight)?;
                    c.put_u64(e.child)?;
                }
            }
        }
        let len = c.pos();
        buf.truncate(len);
        Ok(buf)
    }

    /// Deserialize from a page payload, validating every field whose
    /// misvalue would later feed a panicking constructor: sphere radii must
    /// be finite and non-negative, coordinates finite, and rectangles must
    /// satisfy `min <= max` per axis.
    pub fn decode(payload: &[u8], params: &SrParams) -> Result<Node> {
        if payload.len() < NODE_HEADER {
            return Err(TreeError::NotThisIndex("node page too short".into()));
        }
        let mut c = PageReader::new(payload);
        let level = c.get_u16()?;
        let n = usize::from(c.get_u16()?);
        if level == 0 {
            let need = n * SrParams::leaf_entry_bytes(params.dim, params.data_area);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated leaf page".into()));
            }
            let cols = LeafColumns::parse(payload, params.dim)?;
            let mut entries = Vec::with_capacity(n);
            let mut coords = Vec::with_capacity(params.dim);
            for (i, data) in cols.data_ids().enumerate() {
                cols.point_into(i, &mut coords)?;
                if !all_finite(&coords) {
                    return Err(TreeError::Corrupt("non-finite leaf coordinate".into()));
                }
                // On-disk bytes are untrusted input: the fallible
                // constructor turns a zero-dimensional page into a typed
                // error instead of a panic.
                let point = Point::try_new(coords.as_slice())
                    .map_err(|e| TreeError::Corrupt(e.to_string()))?;
                entries.push(LeafEntry { point, data });
            }
            Ok(Node::Leaf(entries))
        } else {
            let need = n * SrParams::node_entry_bytes(params.dim);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated node page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let center = c.get_coords(params.dim)?;
                let radius = c.get_f64()? as f32;
                let min = c.get_coords(params.dim)?;
                let max = c.get_coords(params.dim)?;
                let weight = u64::from(c.get_u32()?);
                let child = c.get_u64()?;
                if !all_finite(&center) || !radius.is_finite() || radius < 0.0 {
                    return Err(TreeError::Corrupt("invalid bounding sphere on disk".into()));
                }
                if !min.iter().zip(max.iter()).all(|(lo, hi)| lo <= hi) {
                    return Err(TreeError::Corrupt(
                        "inverted bounding rectangle on disk".into(),
                    ));
                }
                let center =
                    Point::try_new(center).map_err(|e| TreeError::Corrupt(e.to_string()))?;
                entries.push(InnerEntry {
                    sphere: Sphere::new(center, radius),
                    rect: Rect::new(min, max),
                    weight,
                    child,
                });
            }
            Ok(Node::Inner { level, entries })
        }
    }
}

/// True when every coordinate is a finite float (rejects NaN and ±∞, both
/// of which would poison centroid and distance arithmetic downstream).
fn all_finite(coords: &[f32]) -> bool {
    coords.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SrParams {
        SrParams::derive(8187, 2, 512)
    }

    fn entry(x: f32, y: f32, r: f32, w: u64) -> InnerEntry {
        InnerEntry {
            sphere: Sphere::new(Point::new(vec![x, y]), r),
            rect: Rect::new(vec![x - r, y - r], vec![x + r, y + r]),
            weight: w,
            child: 1,
        }
    }

    #[test]
    fn leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![LeafEntry {
            point: Point::new(vec![0.25, -3.5]),
            data: 9,
        }]);
        let back = Node::decode(&node.encode(&p, 8187).unwrap(), &p).unwrap();
        if let Node::Leaf(e) = back {
            assert_eq!(e[0].point.coords(), &[0.25, -3.5]);
            assert_eq!(e[0].data, 9);
        } else {
            panic!("expected leaf");
        }
    }

    #[test]
    fn inner_roundtrip() {
        let p = params();
        let node = Node::Inner {
            level: 4,
            entries: vec![entry(1.0, 2.0, 0.5, 17)],
        };
        let back = Node::decode(&node.encode(&p, 8187).unwrap(), &p).unwrap();
        if let Node::Inner { entries, level } = back {
            assert_eq!(level, 4);
            assert_eq!(entries[0].sphere.radius(), 0.5);
            assert_eq!(entries[0].rect.min(), &[0.5, 1.5]);
            assert_eq!(entries[0].weight, 17);
        } else {
            panic!("expected inner");
        }
    }

    #[test]
    fn leaf_region_is_sphere_and_rect_of_points() {
        let node = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![0.0, 0.0]),
                data: 0,
            },
            LeafEntry {
                point: Point::new(vec![2.0, 0.0]),
                data: 1,
            },
        ]);
        let r = node.region(RadiusRule::MinDsDr).unwrap();
        assert_eq!(r.rect.min(), &[0.0, 0.0]);
        assert_eq!(r.rect.max(), &[2.0, 0.0]);
        assert_eq!(r.sphere.center().coords(), &[1.0, 0.0]);
        assert!((r.sphere.radius() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sr_radius_is_at_most_the_ss_radius() {
        // A child whose sphere is much larger than its rectangle: the SR
        // rule must use the rectangle bound d_r.
        let child = InnerEntry {
            sphere: Sphere::new(Point::new(vec![3.0, 0.0]), 5.0), // loose sphere
            rect: Rect::new(vec![2.9, -0.1], vec![3.1, 0.1]),     // tight rect
            weight: 4,
            child: 1,
        };
        let node = Node::Inner {
            level: 1,
            entries: vec![child.clone()],
        };
        let r = node.region(RadiusRule::MinDsDr).unwrap();
        // d_s = 0 (center coincides) + 5.0; d_r = MAXDIST(center, rect)
        // from (3,0) to farthest corner ≈ 0.1414.
        assert!(r.sphere.radius() < 0.2, "radius {}", r.sphere.radius());
        // The region rect is the union of child rects.
        assert_eq!(r.rect, child.rect);
    }

    #[test]
    fn region_encloses_points_of_child_intersections() {
        // The region only has to contain points lying in *both* child
        // shapes (the child region is their intersection). Child centers
        // qualify by construction; so do axis-aligned points at the
        // sphere boundary, which sit inside the rect too.
        let entries = vec![entry(0.0, 0.0, 0.5, 3), entry(4.0, 1.0, 0.25, 9)];
        let node = Node::Inner {
            level: 1,
            entries: entries.clone(),
        };
        let r = node.region(RadiusRule::MinDsDr).unwrap();
        for e in &entries {
            let c = e.sphere.center();
            let rad = e.sphere.radius();
            for p in [
                vec![c[0], c[1]],
                vec![c[0] + rad, c[1]],
                vec![c[0] - rad, c[1]],
                vec![c[0], c[1] + rad],
                vec![c[0], c[1] - rad],
            ] {
                // the sample is inside both child shapes...
                assert!(e.rect.contains_point(&p));
                assert!(e.sphere.contains_point(&p, 1e-6));
                // ...so the parent region must contain it in both shapes.
                assert!(r.rect.contains_point(&p));
                assert!(
                    r.sphere.contains_point(&p, 1e-6),
                    "point {p:?} escapes sphere {:?}",
                    r.sphere
                );
            }
        }
        // And the SR radius never exceeds the SS radius d_s.
        let d_s = sr_geometry::enclosing_radius_spheres(
            r.sphere.center(),
            entries
                .iter()
                .map(|e| (e.sphere.center().coords(), e.sphere.radius())),
        );
        assert!(r.sphere.radius() as f64 <= d_s + 1e-6);
    }

    #[test]
    fn weighted_centroid_matches_hand_computation() {
        let node = Node::Inner {
            level: 1,
            entries: vec![entry(0.0, 0.0, 0.1, 1), entry(4.0, 0.0, 0.1, 3)],
        };
        let c = node.centroid().unwrap();
        assert!((c[0] - 3.0).abs() < 1e-6);
    }
}
