//! The public [`SrTree`] type: lifecycle, metadata, and page helpers.

use std::path::Path;

use sr_geometry::{Point, Rect, Sphere};
use sr_pager::{PageCodec, PageFile, PageId, PageKind};
use sr_query::Neighbor;

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::params::{RadiusRule, SrParams};
use crate::{delete, insert, search};

/// Construction options for ablation studies. The defaults are the
/// paper's SR-tree; the variants exist to measure each design choice's
/// contribution (see the `ablation` experiment in `sr-bench`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SrOptions {
    /// Parent-sphere radius rule (§4.2).
    pub radius_rule: RadiusRule,
    /// Disable forced reinsertion (always split on overflow).
    pub disable_reinsertion: bool,
}

const META_MAGIC: u32 = 0x5352_5442; // "SRTB"
/// Version 2: leaves are columnar (dimension-major). Version-1 files are
/// rejected with [`TreeError::NotThisIndex`] rather than silently
/// misread — the byte totals match, but the entry layout moved.
const META_VERSION: u32 = 2;

/// A disk-based SR-tree over points — the paper's contribution: regions
/// are the intersection of a bounding sphere and a bounding rectangle.
// srlint: send-sync -- queries take &self and go through the internally synchronized PageFile; params/root/height/count only change via &mut self (insert/delete), which the borrow checker serializes
pub struct SrTree {
    pub(crate) pf: PageFile,
    pub(crate) params: SrParams, // srlint: guarded-by(owner)
    pub(crate) root: PageId,     // srlint: guarded-by(owner)
    /// Number of levels; 1 means the root is a leaf.
    pub(crate) height: u32, // srlint: guarded-by(owner)
    pub(crate) count: u64,       // srlint: guarded-by(owner)
}

impl SrTree {
    /// Create a new tree in an in-memory page file.
    pub fn create_in_memory(dim: usize, page_size: usize) -> Result<Self> {
        Self::create_from(PageFile::create_in_memory(page_size)?, dim, 512)
    }

    /// Create a new tree at `path` with 8 KiB pages and the paper's
    /// 512-byte per-entry data area.
    pub fn create(path: &Path, dim: usize) -> Result<Self> {
        Self::create_from(PageFile::create(path)?, dim, 512)
    }

    /// Create a new tree over an empty [`PageFile`].
    pub fn create_from(pf: PageFile, dim: usize, data_area: usize) -> Result<Self> {
        Self::create_with_options(pf, dim, data_area, SrOptions::default())
    }

    /// Create a new tree with explicit [`SrOptions`] (ablation studies).
    pub fn create_with_options(
        pf: PageFile,
        dim: usize,
        data_area: usize,
        options: SrOptions,
    ) -> Result<Self> {
        let mut params = SrParams::derive(pf.capacity(), dim, data_area);
        params.radius_rule = options.radius_rule;
        params.reinsert_enabled = !options.disable_reinsertion;
        let root = pf.allocate(PageKind::Leaf)?;
        let tree = SrTree {
            pf,
            params,
            root,
            height: 1,
            count: 0,
        };
        tree.write_node(root, &Node::Leaf(Vec::new()))?;
        tree.save_meta()?;
        Ok(tree)
    }

    /// Reopen a tree previously created with [`SrTree::create`].
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_from(PageFile::open(path)?)
    }

    /// Reopen a tree from an already-open page file.
    pub fn open_from(pf: PageFile) -> Result<Self> {
        let mut meta = pf.user_meta();
        if meta.len() < 40 {
            return Err(TreeError::NotThisIndex("metadata too short".into()));
        }
        let mut c = PageCodec::new(&mut meta);
        if c.get_u32()? != META_MAGIC {
            return Err(TreeError::NotThisIndex("not an SR-tree file".into()));
        }
        if c.get_u32()? != META_VERSION {
            return Err(TreeError::NotThisIndex(
                "unsupported SR-tree version".into(),
            ));
        }
        let dim = c.get_u32()? as usize;
        let data_area = c.get_u32()? as usize;
        let root = c.get_u64()?;
        let height = c.get_u32()?;
        let count = c.get_u64()?;
        let flags = c.get_u32()?;
        let mut params = SrParams::try_derive(pf.capacity(), dim, data_area).ok_or_else(|| {
            TreeError::NotThisIndex(format!(
                "stored parameters (dim {dim}, data area {data_area}) do not fit a {}-byte page",
                pf.capacity()
            ))
        })?;
        params.radius_rule = if flags & 1 != 0 {
            RadiusRule::SphereOnly
        } else {
            RadiusRule::MinDsDr
        };
        params.reinsert_enabled = flags & 2 == 0;
        Ok(SrTree {
            pf,
            params,
            root,
            height,
            count,
        })
    }

    pub(crate) fn save_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; 40];
        let mut c = PageCodec::new(&mut buf);
        c.put_u32(META_MAGIC)?;
        c.put_u32(META_VERSION)?;
        c.put_u32(self.params.dim as u32)?;
        c.put_u32(self.params.data_area as u32)?;
        c.put_u64(self.root)?;
        c.put_u32(self.height)?;
        c.put_u64(self.count)?;
        let mut flags = 0u32;
        if self.params.radius_rule == RadiusRule::SphereOnly {
            flags |= 1;
        }
        if !self.params.reinsert_enabled {
            flags |= 2;
        }
        c.put_u32(flags)?;
        self.pf.set_user_meta(&buf)?;
        Ok(())
    }

    /// Dimensionality of indexed points.
    pub fn dim(&self) -> usize {
        self.params.dim
    }

    /// Number of points in the tree.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tree height in levels (1 = the root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Capacity parameters in force (Table 1).
    pub fn params(&self) -> &SrParams {
        &self.params
    }

    /// The underlying page file (I/O statistics, cache control).
    pub fn pager(&self) -> &PageFile {
        &self.pf
    }

    /// Flush all dirty pages and metadata.
    pub fn flush(&self) -> Result<()> {
        self.pf.flush()?;
        Ok(())
    }

    pub(crate) fn check_dim(&self, got: usize) -> Result<()> {
        if got != self.params.dim {
            return Err(TreeError::DimensionMismatch {
                expected: self.params.dim,
                got,
            });
        }
        Ok(())
    }

    /// Read a leaf's raw payload for the columnar scan — a zero-copy view
    /// into the buffer pool ([`sr_pager::PageBuf`]); the kernels score it
    /// without decoding entries.
    pub(crate) fn leaf_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Leaf)?)
    }

    /// Read an inner node's raw payload for the zero-copy bound scan —
    /// same zero-copy view as [`SrTree::leaf_payload`], one logical read
    /// per expansion so `node_expansions == node_reads` holds unchanged.
    pub(crate) fn node_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Node)?)
    }

    pub(crate) fn read_node(&self, id: PageId, level: u16) -> Result<Node> {
        let kind = if level == 0 {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let payload = self.pf.read(id, kind)?;
        let node = Node::decode(&payload, &self.params)?;
        debug_assert_eq!(node.level(), level, "page {id} level mismatch");
        Ok(node)
    }

    pub(crate) fn write_node(&self, id: PageId, node: &Node) -> Result<()> {
        let kind = if node.is_leaf() {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let payload = node.encode(&self.params, self.pf.capacity())?;
        self.pf.write(id, kind, &payload)?;
        Ok(())
    }

    pub(crate) fn allocate_node(&self, node: &Node) -> Result<PageId> {
        let kind = if node.is_leaf() {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let id = self.pf.allocate(kind)?;
        self.write_node(id, node)?;
        Ok(id)
    }

    pub(crate) fn max_for(&self, node: &Node) -> usize {
        if node.is_leaf() {
            self.params.max_leaf
        } else {
            self.params.max_node
        }
    }

    pub(crate) fn min_for(&self, node: &Node) -> usize {
        if node.is_leaf() {
            self.params.min_leaf
        } else {
            self.params.min_node
        }
    }

    /// Bulk-load a complete data set into this (empty) tree — the static
    /// construction path (see `bulk` module docs). Pages come out packed
    /// to capacity, like the VAMSplit R-tree's, while keeping every
    /// SR-tree invariant, so dynamic inserts and deletes keep working
    /// afterwards.
    ///
    /// # Panics
    /// Panics if the tree already contains points.
    pub fn bulk_load(&mut self, points: Vec<(Point, u64)>) -> Result<()> {
        for (p, _) in &points {
            self.check_dim(p.dim())?;
        }
        crate::bulk::bulk_load(self, points)
    }

    /// Insert a point with a `u64` payload.
    pub fn insert(&mut self, point: Point, data: u64) -> Result<()> {
        self.check_dim(point.dim())?;
        insert::insert_point(self, point, data)
    }

    /// Delete the exact entry `(point, data)`; returns whether it existed.
    pub fn delete(&mut self, point: &Point, data: u64) -> Result<bool> {
        self.check_dim(point.dim())?;
        delete::delete(self, point, data)
    }

    /// Whether an exact entry `(point, data)` is stored.
    pub fn contains(&self, point: &Point, data: u64) -> Result<bool> {
        self.check_dim(point.dim())?;
        search::contains(self, point, data)
    }

    /// The `k` nearest neighbors of `query`, sorted by ascending distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.knn_with(query, k, &sr_obs::Noop)
    }

    /// [`SrTree::knn`] with a metrics recorder (node expansions, prune
    /// breakdown by shape, heap high-water — see `sr-obs`).
    pub fn knn_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn(self, query, k, rec)
    }

    /// [`SrTree::knn_with`] with an explicit leaf-scan kernel — the
    /// ablation knob for the columnar layout. All modes return
    /// bit-identical neighbors; they differ only in scan time (and in the
    /// `EarlyAbandons` counter the pruning mode reports).
    pub fn knn_scan_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        scan: sr_query::LeafScan,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn_with_scan(self, query, k, scan, rec)
    }

    /// k-NN via best-first ("distance browsing", Hjaltason & Samet)
    /// traversal instead of the paper's depth-first search — an
    /// extension. Returns exactly the same neighbors; reads no more
    /// pages than any traversal order can (I/O-optimal for the tree).
    pub fn knn_best_first(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.knn_best_first_with(query, k, &sr_obs::Noop)
    }

    /// [`SrTree::knn_best_first`] with a metrics recorder.
    pub fn knn_best_first_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn_best_first(self, query, k, rec)
    }

    /// k-NN with an explicit region-distance bound — the ablation knob
    /// for the paper's §4.4 combined bound. Results are identical for
    /// every bound (all are valid lower bounds); only the pruning power,
    /// and therefore the page reads, differ.
    pub fn knn_with_bound(
        &self,
        query: &[f32],
        k: usize,
        bound: crate::search::DistanceBound,
    ) -> Result<Vec<Neighbor>> {
        self.knn_bounded_with(query, k, bound, &sr_obs::Noop)
    }

    /// [`SrTree::knn_with_bound`] with a metrics recorder — the pairing
    /// that measures the §4.4 pruning advantage directly (prune events
    /// split by which shape's bound achieved them).
    pub fn knn_bounded_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        bound: crate::search::DistanceBound,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn_with_bound(self, query, k, bound, rec)
    }

    /// Every point within `radius` of `query`. A negative or NaN radius
    /// is rejected with [`TreeError::InvalidRadius`].
    pub fn range(&self, query: &[f32], radius: f64) -> Result<Vec<Neighbor>> {
        self.range_with(query, radius, &sr_obs::Noop)
    }

    /// [`SrTree::range`] with a metrics recorder.
    pub fn range_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        radius: f64,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::range(self, query, radius, rec)
    }

    /// The (sphere, rectangle) region pairs of all non-empty leaves.
    ///
    /// The paper measures the volumes/diameters of both shapes separately
    /// (Figures 12, 13) as upper bounds on the true intersection region.
    pub fn leaf_regions(&self) -> Result<Vec<(Sphere, Rect)>> {
        let mut out = Vec::new();
        let rule = self.params.radius_rule;
        self.walk_leaves(self.root, (self.height - 1) as u16, &mut |node| {
            if node.len() > 0 {
                let r = node.region(rule)?;
                out.push((r.sphere, r.rect));
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Total number of leaf pages.
    pub fn num_leaves(&self) -> Result<u64> {
        let mut n = 0u64;
        self.walk_leaves(self.root, (self.height - 1) as u16, &mut |_| {
            n += 1;
            Ok(())
        })?;
        Ok(n)
    }

    fn walk_leaves(
        &self,
        id: PageId,
        level: u16,
        f: &mut impl FnMut(&Node) -> Result<()>,
    ) -> Result<()> {
        let node = self.read_node(id, level)?;
        match &node {
            Node::Leaf(_) => f(&node)?,
            Node::Inner { entries, .. } => {
                for e in entries {
                    self.walk_leaves(e.child, level - 1, f)?;
                }
            }
        }
        Ok(())
    }
}

impl sr_query::SpatialIndex for SrTree {
    fn kind_name(&self) -> &'static str {
        "SR-tree"
    }

    fn dim(&self) -> usize {
        SrTree::dim(self)
    }

    fn len(&self) -> u64 {
        SrTree::len(self)
    }

    fn height(&self) -> u32 {
        SrTree::height(self)
    }

    fn num_leaves(&self) -> std::result::Result<u64, sr_query::IndexError> {
        Ok(SrTree::num_leaves(self)?)
    }

    fn insert(
        &mut self,
        point: &[f32],
        data: u64,
    ) -> std::result::Result<(), sr_query::IndexError> {
        if point.is_empty() {
            return Err(sr_query::IndexError::DimensionMismatch {
                expected: SrTree::dim(self),
                got: 0,
            });
        }
        Ok(SrTree::insert(self, Point::new(point), data)?)
    }

    fn delete(
        &mut self,
        point: &[f32],
        data: u64,
    ) -> std::result::Result<bool, sr_query::IndexError> {
        if point.is_empty() {
            return Err(sr_query::IndexError::DimensionMismatch {
                expected: SrTree::dim(self),
                got: 0,
            });
        }
        Ok(SrTree::delete(self, &Point::new(point), data)?)
    }

    fn query(
        &self,
        spec: &sr_query::QuerySpec<'_>,
        rec: &dyn sr_obs::Recorder,
    ) -> std::result::Result<sr_query::QueryOutput, sr_query::IndexError> {
        let rows = match spec.shape {
            sr_query::QueryShape::Knn { k } => {
                SrTree::knn_scan_with(self, spec.point, k, spec.scan, rec)?
            }
            sr_query::QueryShape::Range { radius } => {
                SrTree::range_with(self, spec.point, radius, rec)?
            }
        };
        Ok(sr_query::QueryOutput::from_rows(rows))
    }

    fn pager(&self) -> &PageFile {
        SrTree::pager(self)
    }

    fn flush(&self) -> std::result::Result<(), sr_query::IndexError> {
        Ok(SrTree::flush(self)?)
    }

    fn verify(&self) -> std::result::Result<String, sr_query::IndexError> {
        let r = crate::verify::check(self)?;
        Ok(format!(
            "{} nodes, {} leaves, {} points",
            r.nodes, r.leaves, r.points
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_is_the_paper_configuration() {
        let o = SrOptions::default();
        assert_eq!(o.radius_rule, RadiusRule::MinDsDr);
        assert!(!o.disable_reinsertion);
    }

    #[test]
    fn empty_tree_roundtrips_metadata() {
        let t = SrTree::create_in_memory(7, 4096).unwrap();
        assert_eq!(t.dim(), 7);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.params().reinsert_enabled);
    }

    #[test]
    fn open_rejects_foreign_magic() {
        let pf = sr_pager::PageFile::create_in_memory(4096).unwrap();
        pf.set_user_meta(&[0u8; 40]).unwrap();
        assert!(matches!(
            SrTree::open_from(pf),
            Err(TreeError::NotThisIndex(_))
        ));
    }
}
