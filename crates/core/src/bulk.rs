//! Bulk loading for the SR-tree — an extension beyond the paper.
//!
//! The paper's SR-tree is fully dynamic; its static rival (the VAMSplit
//! R-tree, §2.4) wins on uniform data largely because bulk building packs
//! pages tightly. This module gives the SR-tree the same option: a
//! bottom-up build that partitions points into *balanced* chunks by
//! recursive variance splits (so every page holds between ⌈n/k⌉ and
//! ⌊n/k⌋ entries — always within the 40% minimum-fill bound), then
//! assembles levels with the §4.2 region computation.
//!
//! The resulting tree satisfies exactly the invariants of the dynamic
//! one (`verify::check` passes), so all query code is shared.

use sr_geometry::Point;

use crate::error::Result;
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::tree::SrTree;

/// Bulk-load `points` into the (empty) tree. Called via
/// [`SrTree::bulk_load`].
pub(crate) fn bulk_load(tree: &mut SrTree, points: Vec<(Point, u64)>) -> Result<()> {
    // srlint: allow(assert) -- documented `# Panics` contract of the
    // public `SrTree::bulk_load` API; the tree is caller-owned state,
    // not decoded data.
    assert_eq!(tree.len(), 0, "bulk_load requires an empty tree");
    if points.is_empty() {
        return Ok(());
    }
    // The empty root leaf created by `create_from` is replaced wholesale.
    tree.pf.free(tree.root)?;
    let n = points.len();
    let rule = tree.params.radius_rule;

    // --- leaf level -----------------------------------------------------
    let mut entries: Vec<LeafEntry> = points
        .into_iter()
        .map(|(point, data)| LeafEntry { point, data })
        .collect();
    let k = n.div_ceil(tree.params.max_leaf);
    let mut chunks: Vec<&mut [LeafEntry]> = Vec::with_capacity(k);
    split_balanced(&mut entries, k, &|e| e.point.coords(), &mut chunks);

    let mut level_entries: Vec<InnerEntry> = Vec::with_capacity(k);
    for chunk in chunks {
        let node = Node::Leaf(chunk.to_vec());
        let region = node.region(rule)?;
        let id = tree.allocate_node(&node)?;
        level_entries.push(InnerEntry {
            sphere: region.sphere,
            rect: region.rect,
            weight: node.weight(),
            child: id,
        });
    }

    // --- upper levels ----------------------------------------------------
    let mut level = 1u16;
    while level_entries.len() > tree.params.max_node {
        let k = level_entries.len().div_ceil(tree.params.max_node);
        let mut chunks: Vec<&mut [InnerEntry]> = Vec::with_capacity(k);
        split_balanced(
            &mut level_entries,
            k,
            &|e| e.sphere.center().coords(),
            &mut chunks,
        );
        let mut next: Vec<InnerEntry> = Vec::with_capacity(k);
        for chunk in chunks {
            let node = Node::Inner {
                level,
                entries: chunk.to_vec(),
            };
            let region = node.region(rule)?;
            let id = tree.allocate_node(&node)?;
            next.push(InnerEntry {
                sphere: region.sphere,
                rect: region.rect,
                weight: node.weight(),
                child: id,
            });
        }
        level_entries = next;
        level += 1;
    }

    // --- root -------------------------------------------------------------
    // After the loop, `level_entries` fits in one node. A single leaf
    // becomes the root itself (height 1); otherwise an inner root is
    // allocated at `level` (after the first chunking pass there are
    // always ≥ 2 entries, satisfying the inner-root invariant).
    let (root, height) = if level == 1 && level_entries.len() == 1 {
        (level_entries[0].child, 1)
    } else {
        let id = tree.allocate_node(&Node::Inner {
            level,
            entries: level_entries,
        })?;
        (id, (level + 1) as u32)
    };
    tree.root = root;
    tree.height = height;
    tree.count = n as u64;
    tree.save_meta()?;
    Ok(())
}

/// Partition `items` into `k` contiguous chunks of balanced size (±1) by
/// recursive binary splits on the highest-variance coordinate of
/// `center(item)`.
fn split_balanced<'a, T>(
    items: &'a mut [T],
    k: usize,
    center: &dyn Fn(&T) -> &[f32],
    out: &mut Vec<&'a mut [T]>,
) {
    if k <= 1 {
        out.push(items);
        return;
    }
    let kl = k / 2;
    let kr = k - kl;
    // Split position proportional to the chunk counts keeps every final
    // chunk within ±1 of n/k.
    let pos = items.len() * kl / k;
    let dim = max_variance_dim(items, center);
    items.sort_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));
    let (left, right) = items.split_at_mut(pos);
    split_balanced(left, kl, center, out);
    split_balanced(right, kr, center, out);
}

fn max_variance_dim<T>(items: &[T], center: &dyn Fn(&T) -> &[f32]) -> usize {
    let d = center(&items[0]).len();
    let n = items.len() as f64;
    let mut best = 0usize;
    let mut best_var = f64::NEG_INFINITY;
    for i in 0..d {
        let mean: f64 = items.iter().map(|t| center(t)[i] as f64).sum::<f64>() / n;
        let var: f64 = items
            .iter()
            .map(|t| {
                let x = center(t)[i] as f64 - mean;
                x * x
            })
            .sum::<f64>();
        if var > best_var {
            best_var = var;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_balanced_sizes_differ_by_at_most_one() {
        for (n, k) in [(100usize, 7usize), (13, 13), (50, 3), (9, 2), (1, 1)] {
            let mut items: Vec<Vec<f32>> = (0..n)
                .map(|i| vec![(i * 37 % 101) as f32, i as f32])
                .collect();
            let mut chunks: Vec<&mut [Vec<f32>]> = Vec::new();
            split_balanced(&mut items, k, &|v| v.as_slice(), &mut chunks);
            assert_eq!(chunks.len(), k);
            let total: usize = chunks.iter().map(|c| c.len()).sum();
            assert_eq!(total, n);
            let min = chunks.iter().map(|c| c.len()).min().unwrap();
            let max = chunks.iter().map(|c| c.len()).max().unwrap();
            assert!(max - min <= 1, "n={n} k={k}: chunk sizes {min}..{max}");
        }
    }

    #[test]
    fn split_balanced_groups_spatially() {
        // Two widely separated groups must not be interleaved.
        let mut items: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                if i < 10 {
                    vec![i as f32 * 0.01]
                } else {
                    vec![1000.0 + i as f32]
                }
            })
            .collect();
        let mut chunks: Vec<&mut [Vec<f32>]> = Vec::new();
        split_balanced(&mut items, 2, &|v| v.as_slice(), &mut chunks);
        let left_max = chunks[0].iter().map(|v| v[0] as i64).max().unwrap();
        let right_min = chunks[1].iter().map(|v| v[0] as i64).min().unwrap();
        assert!(left_max < right_min);
    }
}
