//! The SR-tree split — identical to the SS-tree's (§4.2): dimension of
//! highest centroid variance, split position of least summed variance.

use crate::node::Node;
use crate::params::SrParams;

/// Split an overflowing node into two, each with at least the minimum
/// fill.
pub(crate) fn split_node(params: &SrParams, node: Node) -> (Node, Node) {
    match node {
        Node::Leaf(entries) => {
            let centers: Vec<&[f32]> = entries.iter().map(|e| e.point.coords()).collect();
            let (k, order) = variance_split(&centers, params.min_leaf);
            let (a, b) = partition(entries, &order, k);
            (Node::Leaf(a), Node::Leaf(b))
        }
        Node::Inner { level, entries } => {
            let centers: Vec<&[f32]> = entries.iter().map(|e| e.sphere.center().coords()).collect();
            let (k, order) = variance_split(&centers, params.min_node);
            let (a, b) = partition(entries, &order, k);
            (
                Node::Inner { level, entries: a },
                Node::Inner { level, entries: b },
            )
        }
    }
}

fn partition<T>(mut entries: Vec<T>, order: &[usize], k: usize) -> (Vec<T>, Vec<T>) {
    // `order` is a permutation of 0..entries.len(), so each slot is taken
    // exactly once; an out-of-range or repeated index is simply skipped.
    let mut tagged: Vec<Option<T>> = entries.drain(..).map(Some).collect();
    let mut pick = |idxs: &[usize]| -> Vec<T> {
        idxs.iter()
            .filter_map(|&i| tagged.get_mut(i).and_then(Option::take))
            .collect()
    };
    let a = pick(&order[..k]);
    let b = pick(&order[k..]);
    (a, b)
}

/// Highest-variance dimension, then the split position in `[m, n-m]`
/// minimizing the two groups' summed coordinate variance.
pub(crate) fn variance_split(centers: &[&[f32]], m: usize) -> (usize, Vec<usize>) {
    let n = centers.len();
    debug_assert!(n >= 2 * m, "cannot split {n} entries with minimum {m}");
    let dim = centers[0].len();

    let mut best_dim = 0usize;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..dim {
        let mean: f64 = centers.iter().map(|c| c[d] as f64).sum::<f64>() / n as f64;
        let var: f64 = centers
            .iter()
            .map(|c| {
                let t = c[d] as f64 - mean;
                t * t
            })
            .sum::<f64>();
        if var > best_var {
            best_var = var;
            best_dim = d;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| centers[a][best_dim].total_cmp(&centers[b][best_dim]));

    let xs: Vec<f64> = order.iter().map(|&i| centers[i][best_dim] as f64).collect();
    let mut pre_s = vec![0.0f64; n + 1];
    let mut pre_q = vec![0.0f64; n + 1];
    for i in 0..n {
        pre_s[i + 1] = pre_s[i] + xs[i];
        pre_q[i + 1] = pre_q[i] + xs[i] * xs[i];
    }
    let group_var = |lo: usize, hi: usize| -> f64 {
        let cnt = (hi - lo) as f64;
        let s = pre_s[hi] - pre_s[lo];
        let q = pre_q[hi] - pre_q[lo];
        q - s * s / cnt
    };
    let mut best_k = m;
    let mut best_cost = f64::INFINITY;
    for k in m..=(n - m) {
        let cost = group_var(0, k) + group_var(k, n);
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
        }
    }
    (best_k, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use sr_geometry::Point;

    #[test]
    fn split_respects_minimum_fill_and_partitions_fully() {
        let params = SrParams::derive(8187, 2, 512);
        let n = params.max_leaf + 1;
        let entries: Vec<LeafEntry> = (0..n)
            .map(|i| LeafEntry {
                point: Point::new(vec![(i * 7 % 13) as f32, i as f32]),
                data: i as u64,
            })
            .collect();
        let (a, b) = split_node(&params, Node::Leaf(entries));
        assert_eq!(a.len() + b.len(), n);
        assert!(a.len() >= params.min_leaf && b.len() >= params.min_leaf);
    }

    #[test]
    fn bimodal_data_splits_at_the_gap() {
        let raw: Vec<Vec<f32>> = (0..12)
            .map(|i| {
                if i < 6 {
                    vec![0.0, i as f32 * 0.01]
                } else {
                    vec![0.0, 50.0 + i as f32 * 0.01]
                }
            })
            .collect();
        let centers: Vec<&[f32]> = raw.iter().map(|c| c.as_slice()).collect();
        let (k, order) = variance_split(&centers, 2);
        assert_eq!(k, 6);
        assert!(order[..6].iter().all(|&i| i < 6));
    }
}
