//! Parallel batch-query execution over a shared read path.
//!
//! The paper's experiments (§5) report per-query page reads averaged over
//! a *batch* of queries, and any realistic serving scenario answers many
//! queries against one index at once. This crate provides the execution
//! layer for that: [`run_knn_batch`] fans a batch of k-NN queries across
//! a pool of worker threads that all read the *same* index through the
//! lock-striped pager cache (`sr-pager` shards its LRU by page id, so
//! concurrent readers rarely contend on the same lock).
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Results come back in input order, and each query's
//!    neighbor list is identical to what a single-threaded loop would
//!    produce — parallelism is invisible in the output. The
//!    concurrent-correctness tests in `tests/batch_parallel.rs` assert
//!    byte-identical results at `T=1` and `T=8` for all five trees.
//! 2. **No dependencies.** The pool is `std::thread::scope` — no rayon.
//!    Workers take queries by *striding* (worker `w` of `T` takes indices
//!    `w, w+T, w+2T, …`), which needs no work-stealing queue and spreads
//!    any locality gradient in the batch evenly across workers.
//! 3. **Observability survives the fan-out.** Each worker runs its own
//!    `sr-obs` [`StatsRecorder`]; the per-worker snapshots are merged
//!    ([`MetricsSnapshot::merge`]) into one batch-level snapshot, and the
//!    pager's [`IoStats`] are windowed over the whole batch, so `--trace`
//!    output means the same thing at any thread count.
//! 4. **Failure is typed and partial work is discarded.** The first
//!    failing query (by *input index*, not completion order) surfaces as
//!    [`ExecError::Query`]; a panicking worker (only possible through a
//!    caller-supplied closure — this crate denies panics) surfaces as
//!    [`ExecError::WorkerPanic`] without poisoning anything, because the
//!    scope owns no shared mutable state.
//!
//! [`run_batch`] is the generic core (any `Fn(index, query, recorder)`
//! job); [`run_query_batch`] fans a heterogeneous batch of
//! [`QuerySpec`]s (mixed k-NN and range — what the `sr-serve` request
//! coalescer produces) over one index, and [`run_knn_batch`] /
//! [`run_range_batch`] are the homogeneous entry points the CLI and
//! `sr-bench` use.
//!
//! [`StatsRecorder`]: sr_obs::StatsRecorder

#![forbid(unsafe_code)]

use std::fmt;

use sr_obs::{MetricsSnapshot, Recorder, StatsRecorder};
use sr_pager::IoStats;
use sr_query::{IndexError, Neighbor, QuerySpec, SpatialIndex};

/// Errors from a batch execution.
#[derive(Debug)]
pub enum ExecError {
    /// A query failed. `index` is the query's position in the input batch;
    /// when several queries fail, the smallest input index is reported
    /// regardless of which worker finished first.
    Query {
        /// Position of the failing query in the input batch.
        index: usize,
        /// The underlying index error.
        source: IndexError,
    },
    /// A worker thread panicked (only reachable through a caller-supplied
    /// job closure). The remaining workers finish normally and the pool
    /// is not poisoned.
    WorkerPanic {
        /// Which worker (0-based) panicked.
        worker: usize,
    },
    /// The caller asked for zero worker threads. Rejected up front rather
    /// than silently promoted to one: a zero almost always means a
    /// configuration bug (an unset CLI flag, a miscomputed pool size).
    ZeroThreads,
    /// The input batch was empty. Rejected so that "no results" can never
    /// be confused with "every query succeeded".
    EmptyBatch,
    /// An internal invariant of the executor failed — always a bug in
    /// this crate, never caused by input.
    Internal(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Query { index, source } => {
                write!(f, "batch query #{index} failed: {source}")
            }
            ExecError::WorkerPanic { worker } => {
                write!(f, "batch worker {worker} panicked")
            }
            ExecError::ZeroThreads => write!(f, "batch requested with zero worker threads"),
            ExecError::EmptyBatch => write!(f, "batch contains no queries"),
            ExecError::Internal(msg) => write!(f, "batch executor internal error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Query { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Outcome of a generic [`run_batch`] call.
#[derive(Debug)]
pub struct BatchOutput<T> {
    /// One result per input query, in input order.
    pub results: Vec<T>,
    /// Per-worker `sr-obs` metrics, merged.
    pub metrics: MetricsSnapshot,
    /// Number of worker threads actually used (after clamping).
    pub threads: usize,
}

/// Outcome of [`run_knn_batch`] / [`run_range_batch`]: results plus the
/// pager I/O window spanning the whole batch.
#[derive(Debug)]
pub struct BatchResult {
    /// One neighbor list per input query, in input order.
    pub results: Vec<Vec<Neighbor>>,
    /// Per-worker `sr-obs` metrics, merged.
    pub metrics: MetricsSnapshot,
    /// Pager I/O counters attributable to this batch (after − before).
    pub io: IoStats,
    /// Number of worker threads actually used (after clamping).
    pub threads: usize,
}

/// Clamp a positive requested thread count to at most one worker per
/// query. Zero threads and zero queries are rejected by [`run_batch`]
/// before this is consulted.
pub fn effective_threads(requested: usize, n_queries: usize) -> usize {
    requested.max(1).min(n_queries.max(1))
}

/// Run `job` once per query across `threads` workers, returning results
/// in input order together with merged per-worker metrics.
///
/// `job` receives the query's input index, the query itself, and a
/// per-worker recorder; it must be `Sync` because every worker calls it.
/// The first failing query by input index aborts the batch with
/// [`ExecError::Query`] (other queries' work is discarded). A zero
/// thread count or an empty batch is rejected up front with a typed
/// error ([`ExecError::ZeroThreads`] / [`ExecError::EmptyBatch`]) —
/// degenerate requests fail loudly instead of being reinterpreted.
pub fn run_batch<Q, T, F>(
    queries: &[Q],
    threads: usize,
    job: F,
) -> Result<BatchOutput<T>, ExecError>
where
    Q: Sync,
    T: Send,
    F: Fn(usize, &Q, &dyn Recorder) -> Result<T, IndexError> + Sync,
{
    if threads == 0 {
        return Err(ExecError::ZeroThreads);
    }
    if queries.is_empty() {
        return Err(ExecError::EmptyBatch);
    }
    let threads = effective_threads(threads, queries.len());

    // Each worker returns its own (input index, result) pairs plus its
    // metrics snapshot; the scope owns no shared mutable state, so a
    // panicking worker cannot poison anything the others touch.
    type WorkerOut<T> = (Vec<(usize, Result<T, IndexError>)>, MetricsSnapshot);
    let worker_outs: Vec<Result<WorkerOut<T>, usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let job = &job;
                scope.spawn(move || {
                    let rec = StatsRecorder::new();
                    let out: Vec<(usize, Result<T, IndexError>)> = queries
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(threads)
                        .map(|(i, q)| (i, job(i, q, &rec)))
                        .collect();
                    (out, rec.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(w, h)| h.join().map_err(|_| w))
            .collect()
    });

    let mut metrics = MetricsSnapshot::empty();
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(queries.len(), || None);
    // Scan worker outputs for the smallest failing input index before
    // committing any results, so the reported error is deterministic.
    let mut first_err: Option<(usize, IndexError)> = None;
    for out in worker_outs {
        let (pairs, snap) = out.map_err(|worker| ExecError::WorkerPanic { worker })?;
        metrics = metrics.merge(&snap);
        for (i, res) in pairs {
            match res {
                Ok(v) => {
                    if let Some(slot) = slots.get_mut(i) {
                        *slot = Some(v);
                    } else {
                        return Err(ExecError::Internal("worker produced out-of-range index"));
                    }
                }
                Err(e) => {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((index, source)) = first_err {
        return Err(ExecError::Query { index, source });
    }

    let mut results = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(v) => results.push(v),
            None => return Err(ExecError::Internal("query slot left unfilled")),
        }
    }
    Ok(BatchOutput {
        results,
        metrics,
        threads,
    })
}

/// Answer a batch of k-NN queries against one index in parallel.
///
/// Results come back in input order and are identical to a sequential
/// loop; the returned [`IoStats`] window covers the whole batch.
pub fn run_knn_batch<I: SpatialIndex + ?Sized>(
    index: &I,
    queries: &[Vec<f32>],
    k: usize,
    threads: usize,
) -> Result<BatchResult, ExecError> {
    let before = index.io_stats();
    let out = run_batch(queries, threads, |_, q, rec| {
        index.query(&QuerySpec::knn(q, k), rec).map(|o| o.rows)
    })?;
    Ok(BatchResult {
        results: out.results,
        metrics: out.metrics,
        io: index.io_stats().since(&before),
        threads: out.threads,
    })
}

/// Answer a batch of range queries against one index in parallel.
pub fn run_range_batch<I: SpatialIndex + ?Sized>(
    index: &I,
    queries: &[Vec<f32>],
    radius: f64,
    threads: usize,
) -> Result<BatchResult, ExecError> {
    let before = index.io_stats();
    let out = run_batch(queries, threads, |_, q, rec| {
        index
            .query(&QuerySpec::range(q, radius), rec)
            .map(|o| o.rows)
    })?;
    Ok(BatchResult {
        results: out.results,
        metrics: out.metrics,
        io: index.io_stats().since(&before),
        threads: out.threads,
    })
}

/// Answer a heterogeneous batch of [`QuerySpec`]s — mixed k-NN and
/// range, each with its own leaf-scan kernel — against one index in
/// parallel. This is the fan-out the `sr-serve` coalescer uses when it
/// folds adjacent read requests from one connection into a single
/// batch; results come back in input order exactly like
/// [`run_knn_batch`].
pub fn run_query_batch<I: SpatialIndex + ?Sized>(
    index: &I,
    specs: &[QuerySpec<'_>],
    threads: usize,
) -> Result<BatchResult, ExecError> {
    let before = index.io_stats();
    let out = run_batch(specs, threads, |_, spec, rec| {
        index.query(spec, rec).map(|o| o.rows)
    })?;
    Ok(BatchResult {
        results: out.results,
        metrics: out.metrics,
        io: index.io_stats().since(&before),
        threads: out.threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_pager::PageFile;
    use sr_query::brute_force_knn;

    /// Minimal in-memory index for exercising the executor without
    /// pulling a tree crate into the dependency graph.
    struct BruteIndex {
        pager: PageFile,
        dim: usize,
        points: Vec<(Vec<f32>, u64)>,
    }

    impl BruteIndex {
        fn grid(n: usize) -> BruteIndex {
            let mut points = Vec::new();
            for i in 0..n {
                points.push((vec![i as f32, (i * 7 % 13) as f32], i as u64));
            }
            BruteIndex {
                pager: PageFile::create_in_memory(512).expect("in-memory pager"),
                dim: 2,
                points,
            }
        }
    }

    impl SpatialIndex for BruteIndex {
        fn kind_name(&self) -> &'static str {
            "brute"
        }
        fn dim(&self) -> usize {
            self.dim
        }
        fn len(&self) -> u64 {
            self.points.len() as u64
        }
        fn height(&self) -> u32 {
            1
        }
        fn num_leaves(&self) -> Result<u64, IndexError> {
            Ok(1)
        }
        fn insert(&mut self, point: &[f32], data: u64) -> Result<(), IndexError> {
            self.points.push((point.to_vec(), data));
            Ok(())
        }
        fn query(
            &self,
            spec: &QuerySpec<'_>,
            rec: &dyn Recorder,
        ) -> Result<sr_query::QueryOutput, IndexError> {
            let flat = self.points.iter().map(|(p, id)| (p.as_slice(), *id));
            let rows = match spec.shape {
                sr_query::QueryShape::Knn { k } => {
                    if spec.point.len() != self.dim {
                        return Err(IndexError::DimensionMismatch {
                            expected: self.dim,
                            got: spec.point.len(),
                        });
                    }
                    rec.incr(sr_obs::Counter::NodeExpansions, 1);
                    brute_force_knn(flat, spec.point, k)
                }
                sr_query::QueryShape::Range { radius } => {
                    if radius.is_nan() || radius < 0.0 {
                        return Err(IndexError::InvalidRadius(radius));
                    }
                    sr_query::brute_force_range(flat, spec.point, radius)
                }
            };
            Ok(sr_query::QueryOutput::from_rows(rows))
        }
        fn pager(&self) -> &PageFile {
            &self.pager
        }
        fn flush(&self) -> Result<(), IndexError> {
            Ok(self.pager.flush()?)
        }
    }

    fn queries(n: usize) -> Vec<Vec<f32>> {
        (0..n).map(|i| vec![i as f32 * 0.5, 3.0]).collect()
    }

    #[test]
    fn parallel_matches_sequential_in_input_order() {
        let ix = BruteIndex::grid(200);
        let qs = queries(37);
        let seq = run_knn_batch(&ix, &qs, 5, 1).expect("sequential");
        assert_eq!(seq.threads, 1);
        for t in [2, 4, 8] {
            let par = run_knn_batch(&ix, &qs, 5, t).expect("parallel");
            assert_eq!(par.threads, t.min(qs.len()));
            assert_eq!(seq.results, par.results, "thread count {t} diverged");
        }
    }

    #[test]
    fn metrics_merge_across_workers() {
        let ix = BruteIndex::grid(50);
        let qs = queries(24);
        let out = run_knn_batch(&ix, &qs, 4, 4).expect("batch");
        // every query bumps the counter exactly once, on some worker
        assert_eq!(out.metrics.counter(sr_obs::Counter::NodeExpansions), 24);
    }

    #[test]
    fn empty_batch_is_a_typed_error() {
        let ix = BruteIndex::grid(10);
        let err = run_knn_batch(&ix, &[], 3, 8).expect_err("empty batch must be rejected");
        assert!(matches!(err, ExecError::EmptyBatch));
        assert!(err.to_string().contains("no queries"));
    }

    #[test]
    fn zero_threads_is_a_typed_error_not_a_hang() {
        let ix = BruteIndex::grid(10);
        let err = run_knn_batch(&ix, &queries(4), 3, 0).expect_err("0 threads must be rejected");
        assert!(matches!(err, ExecError::ZeroThreads));
        // the degenerate request leaves no state behind: a sane retry works
        let out = run_knn_batch(&ix, &queries(4), 3, 2).expect("retry");
        assert_eq!(out.results.len(), 4);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(effective_threads(16, 3), 3);
        assert_eq!(effective_threads(2, 10), 2);
        let ix = BruteIndex::grid(10);
        let qs = queries(2);
        let out = run_knn_batch(&ix, &qs, 64, 3).expect("clamped");
        assert_eq!(out.threads, 2);
    }

    #[test]
    fn first_failing_query_by_input_index_wins() {
        let qs: Vec<u32> = (0..40).collect();
        // every query >= 7 fails; with 8 workers many fail concurrently,
        // but index 7 must be the one reported
        let err = run_batch(&qs, 8, |i, _, _rec| {
            if i >= 7 {
                Err(IndexError::Unsupported("boom"))
            } else {
                Ok(i)
            }
        })
        .expect_err("must fail");
        match err {
            ExecError::Query { index, source } => {
                assert_eq!(index, 7);
                assert!(matches!(source, IndexError::Unsupported(_)));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn dimension_mismatch_surfaces_as_query_error() {
        let ix = BruteIndex::grid(10);
        let mut qs = queries(5);
        qs.insert(2, vec![1.0, 2.0, 3.0]); // 3-d query against a 2-d index
        let err = run_knn_batch(&ix, &qs, 3, 4).expect_err("must fail");
        match err {
            ExecError::Query { index, source } => {
                assert_eq!(index, 2);
                assert!(matches!(source, IndexError::DimensionMismatch { .. }));
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn worker_panic_is_typed_and_pool_is_reusable() {
        let qs: Vec<u32> = (0..16).collect();
        let err = run_batch(&qs, 4, |i, q, _rec| -> Result<u32, IndexError> {
            assert!(i != 5, "deliberate test panic");
            Ok(*q)
        })
        .expect_err("must fail");
        assert!(matches!(err, ExecError::WorkerPanic { .. }));
        // the executor holds no poisoned state: the next batch works
        let ok = run_batch(&qs, 4, |_, q, _rec| Ok::<u32, IndexError>(*q * 2)).expect("reuse");
        assert_eq!(ok.results, (0..16).map(|i| i * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn exec_error_display_and_source() {
        let e = ExecError::Query {
            index: 3,
            source: IndexError::InvalidRadius(-1.0),
        };
        assert!(e.to_string().contains('3'));
        assert!(std::error::Error::source(&e).is_some());
        assert!(ExecError::WorkerPanic { worker: 2 }
            .to_string()
            .contains('2'));
        assert!(std::error::Error::source(&ExecError::WorkerPanic { worker: 2 }).is_none());
    }
}
