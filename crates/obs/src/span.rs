//! Span timers: measure a scope's wall-clock time into a histogram.

use std::time::Instant;

use crate::metric::Hist;
use crate::recorder::Recorder;

/// Times the scope it lives in and records the elapsed nanoseconds into
/// `hist` on drop. With a disabled recorder ([`crate::Noop`]) the clock is
/// never read, so the span costs nothing.
pub struct SpanTimer<'a, R: Recorder + ?Sized> {
    rec: &'a R,
    hist: Hist,
    start: Option<Instant>,
}

impl<'a, R: Recorder + ?Sized> SpanTimer<'a, R> {
    /// Start timing if `rec` is enabled.
    pub fn start(rec: &'a R, hist: Hist) -> Self {
        let start = rec.enabled().then(Instant::now);
        SpanTimer { rec, hist, start }
    }
}

impl<R: Recorder + ?Sized> Drop for SpanTimer<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.observe(self.hist, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Noop;
    use crate::stats::StatsRecorder;

    #[test]
    fn records_one_sample_on_drop() {
        let r = StatsRecorder::new();
        {
            let _span = SpanTimer::start(&r, Hist::QueryNs);
        }
        let h = r.snapshot().hist(Hist::QueryNs);
        assert_eq!(h.count, 1);
    }

    #[test]
    fn noop_span_records_nothing() {
        let _span = SpanTimer::start(&Noop, Hist::QueryNs);
        // Nothing to assert beyond "does not panic": the Noop recorder
        // has no storage, and `start` never reads the clock.
    }
}
