//! The closed set of metric names.
//!
//! Enums rather than strings: recording compiles to an array index and a
//! relaxed atomic add, and the JSON schema emitted by `srtool --trace` is
//! fixed at compile time.

/// Monotonic counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Internal (non-leaf) nodes expanded by a query.
    NodeExpansions,
    /// Leaf nodes expanded by a query.
    LeafExpansions,
    /// Points whose exact distance to the query was computed.
    PointsScored,
    /// Child branches scored with a region lower bound (pruned or not).
    BranchesConsidered,
    /// Branches skipped because their lower bound could not beat the
    /// current candidate set / range radius.
    PruneEvents,
    /// Prune events where the *sphere* bound alone was sufficient.
    /// Under `DistanceBound::Both` a single event can count toward both
    /// shapes, so `PruneSphere + PruneRect >= PruneEvents` there.
    PruneSphere,
    /// Prune events where the *rectangle* bound alone was sufficient.
    PruneRect,
    /// Buffer-pool hits observed by the caller (mirrored from `IoStats`).
    CacheHits,
    /// Buffer-pool misses observed by the caller (mirrored from `IoStats`).
    CacheMisses,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 9] = [
        Counter::NodeExpansions,
        Counter::LeafExpansions,
        Counter::PointsScored,
        Counter::BranchesConsidered,
        Counter::PruneEvents,
        Counter::PruneSphere,
        Counter::PruneRect,
        Counter::CacheHits,
        Counter::CacheMisses,
    ];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::NodeExpansions => "node_expansions",
            Counter::LeafExpansions => "leaf_expansions",
            Counter::PointsScored => "points_scored",
            Counter::BranchesConsidered => "branches_considered",
            Counter::PruneEvents => "prune_events",
            Counter::PruneSphere => "prune_sphere",
            Counter::PruneRect => "prune_rect",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Counter::NodeExpansions => 0,
            Counter::LeafExpansions => 1,
            Counter::PointsScored => 2,
            Counter::BranchesConsidered => 3,
            Counter::PruneEvents => 4,
            Counter::PruneSphere => 5,
            Counter::PruneRect => 6,
            Counter::CacheHits => 7,
            Counter::CacheMisses => 8,
        }
    }
}

/// High-water-mark gauges (recorded with `max`, never reset implicitly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Largest size the search frontier reached: the priority queue for
    /// best-first, the candidate heap for depth-first.
    HeapHighWater,
}

impl Gauge {
    /// Every gauge, in rendering order.
    pub const ALL: [Gauge; 1] = [Gauge::HeapHighWater];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::HeapHighWater => "heap_high_water",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Gauge::HeapHighWater => 0,
        }
    }
}

/// Log-scaled histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Wall-clock nanoseconds per query (span-timed).
    QueryNs,
    /// Scored branches per internal-node expansion (fan-out actually
    /// considered, before pruning).
    NodeFanout,
}

impl Hist {
    /// Every histogram, in rendering order.
    pub const ALL: [Hist; 2] = [Hist::QueryNs, Hist::NodeFanout];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Hist::QueryNs => "query_ns",
            Hist::NodeFanout => "node_fanout",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Hist::QueryNs => 0,
            Hist::NodeFanout => 1,
        }
    }
}
