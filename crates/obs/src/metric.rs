//! The closed set of metric names.
//!
//! Enums rather than strings: recording compiles to an array index and a
//! relaxed atomic add, and the JSON schema emitted by `srtool --trace` is
//! fixed at compile time.

/// Monotonic counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Internal (non-leaf) nodes expanded by a query.
    NodeExpansions,
    /// Leaf nodes expanded by a query.
    LeafExpansions,
    /// Points whose exact distance to the query was computed.
    PointsScored,
    /// Child branches scored with a region lower bound (pruned or not).
    BranchesConsidered,
    /// Branches skipped because their lower bound could not beat the
    /// current candidate set / range radius.
    PruneEvents,
    /// Prune events where the *sphere* bound alone was sufficient.
    /// Under `DistanceBound::Both` a single event can count toward both
    /// shapes, so `PruneSphere + PruneRect >= PruneEvents` there.
    PruneSphere,
    /// Prune events where the *rectangle* bound alone was sufficient.
    PruneRect,
    /// Leaf points abandoned by the early-abandon distance kernel: their
    /// partial squared distance already exceeded the pruning threshold,
    /// so the remaining dimensions were never accumulated. Every such
    /// point still counts toward `PointsScored` (the scan visited it),
    /// keeping `points_scored` identical across scan modes.
    EarlyAbandons,
    /// Buffer-pool hits observed by the caller (mirrored from `IoStats`).
    CacheHits,
    /// Buffer-pool misses observed by the caller (mirrored from `IoStats`).
    CacheMisses,
    /// Page-image redo frames appended to the write-ahead log (mirrored
    /// from the pager's `WalStats` by the caller, like the cache pair).
    WalFramesAppended,
    /// Commit markers appended to the WAL (mirrored from `WalStats`).
    WalCommits,
    /// WAL truncations after successful checkpoints (mirrored from
    /// `WalStats`).
    WalTruncations,
    /// Opens that replayed committed WAL frames (mirrored from
    /// `WalStats`). Nonzero in a trace means this store recovered from
    /// a crash when it was opened.
    WalReplays,
    /// Committed page images reapplied across all replays (mirrored
    /// from `WalStats`).
    WalReplayedFrames,
    /// Complete but uncommitted frames discarded at replay (mirrored
    /// from `WalStats`).
    WalDroppedFrames,
    /// Torn or corrupt log tails discarded at replay (mirrored from
    /// `WalStats`).
    WalTornTails,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 17] = [
        Counter::NodeExpansions,
        Counter::LeafExpansions,
        Counter::PointsScored,
        Counter::BranchesConsidered,
        Counter::PruneEvents,
        Counter::PruneSphere,
        Counter::PruneRect,
        Counter::EarlyAbandons,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::WalFramesAppended,
        Counter::WalCommits,
        Counter::WalTruncations,
        Counter::WalReplays,
        Counter::WalReplayedFrames,
        Counter::WalDroppedFrames,
        Counter::WalTornTails,
    ];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::NodeExpansions => "node_expansions",
            Counter::LeafExpansions => "leaf_expansions",
            Counter::PointsScored => "points_scored",
            Counter::BranchesConsidered => "branches_considered",
            Counter::PruneEvents => "prune_events",
            Counter::PruneSphere => "prune_sphere",
            Counter::PruneRect => "prune_rect",
            Counter::EarlyAbandons => "early_abandons",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::WalFramesAppended => "wal_frames_appended",
            Counter::WalCommits => "wal_commits",
            Counter::WalTruncations => "wal_truncations",
            Counter::WalReplays => "wal_replays",
            Counter::WalReplayedFrames => "wal_replayed_frames",
            Counter::WalDroppedFrames => "wal_dropped_frames",
            Counter::WalTornTails => "wal_torn_tails",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Counter::NodeExpansions => 0,
            Counter::LeafExpansions => 1,
            Counter::PointsScored => 2,
            Counter::BranchesConsidered => 3,
            Counter::PruneEvents => 4,
            Counter::PruneSphere => 5,
            Counter::PruneRect => 6,
            Counter::CacheHits => 7,
            Counter::CacheMisses => 8,
            Counter::WalFramesAppended => 9,
            Counter::WalCommits => 10,
            Counter::WalTruncations => 11,
            Counter::WalReplays => 12,
            Counter::WalReplayedFrames => 13,
            Counter::WalDroppedFrames => 14,
            Counter::WalTornTails => 15,
            Counter::EarlyAbandons => 16,
        }
    }
}

/// High-water-mark gauges (recorded with `max`, never reset implicitly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Largest size the search frontier reached: the priority queue for
    /// best-first, the candidate heap for depth-first.
    HeapHighWater,
}

impl Gauge {
    /// Every gauge, in rendering order.
    pub const ALL: [Gauge; 1] = [Gauge::HeapHighWater];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::HeapHighWater => "heap_high_water",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Gauge::HeapHighWater => 0,
        }
    }
}

/// Log-scaled histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Wall-clock nanoseconds per query (span-timed).
    QueryNs,
    /// Scored branches per internal-node expansion (fan-out actually
    /// considered, before pruning).
    NodeFanout,
}

impl Hist {
    /// Every histogram, in rendering order.
    pub const ALL: [Hist; 2] = [Hist::QueryNs, Hist::NodeFanout];

    /// Stable snake_case name used in JSON output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Hist::QueryNs => "query_ns",
            Hist::NodeFanout => "node_fanout",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Hist::QueryNs => 0,
            Hist::NodeFanout => 1,
        }
    }
}
