//! The [`Recorder`] trait and its zero-cost default.

use crate::metric::{Counter, Gauge, Hist};

/// Sink for query-time metrics.
///
/// Engines are generic over `R: Recorder + ?Sized`, so passing [`Noop`]
/// monomorphizes every recording call into nothing — the instrumented hot
/// paths cost zero when observation is off. Passing `&StatsRecorder` (or
/// `&dyn Recorder`) turns the same code paths into relaxed atomic adds.
pub trait Recorder {
    /// Whether this recorder keeps anything. Lets call sites skip *work
    /// that only exists to be recorded* (e.g. draining a priority queue to
    /// count never-visited branches); plain `incr`/`observe` calls do not
    /// need the guard.
    fn enabled(&self) -> bool;

    /// Add `by` to a monotonic counter.
    fn incr(&self, c: Counter, by: u64);

    /// Raise a high-water-mark gauge to at least `v`.
    fn gauge_max(&self, g: Gauge, v: u64);

    /// Record one sample into a log-scaled histogram.
    fn observe(&self, h: Hist, v: u64);
}

/// The zero-cost recorder: every method is an empty inline body.
#[derive(Clone, Copy, Debug, Default)]
pub struct Noop;

impl Recorder for Noop {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn incr(&self, _c: Counter, _by: u64) {}

    #[inline(always)]
    fn gauge_max(&self, _g: Gauge, _v: u64) {}

    #[inline(always)]
    fn observe(&self, _h: Hist, _v: u64) {}
}

/// References delegate, so `&StatsRecorder` and `&dyn Recorder` both
/// satisfy `R: Recorder` bounds without wrapper types.
impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn incr(&self, c: Counter, by: u64) {
        (**self).incr(c, by);
    }

    #[inline]
    fn gauge_max(&self, g: Gauge, v: u64) {
        (**self).gauge_max(g, v);
    }

    #[inline]
    fn observe(&self, h: Hist, v: u64) {
        (**self).observe(h, v);
    }
}
