//! The JSON-contract version every machine-readable surface carries.
//!
//! `srtool stats --json`, `--trace` lines, `srtool lint --json`, bench
//! snapshots and the serve `Stats` response all embed the same
//! `"schema_version"` field, emitted from this one helper, so CI jq
//! gates and remote clients pin one contract instead of five. Bump
//! [`SCHEMA_VERSION`] when any of those shapes changes incompatibly
//! (removing or renaming a field; adding fields is compatible and does
//! not bump it).

/// Version of the workspace's JSON output contract.
pub const SCHEMA_VERSION: u32 = 1;

/// The leading `"schema_version":N` member for a JSON object, without
/// braces or trailing comma.
pub fn schema_version_field() -> String {
    format!("\"schema_version\":{SCHEMA_VERSION}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_is_a_valid_json_member() {
        let f = schema_version_field();
        assert_eq!(f, format!("\"schema_version\":{SCHEMA_VERSION}"));
        let obj = format!("{{{f}}}");
        assert!(obj.starts_with("{\"schema_version\":"));
        assert!(obj.ends_with('}'));
    }
}
