//! Observability substrate for the SR-tree workspace.
//!
//! Every headline figure in the paper (Figures 8–13) is a per-query
//! measurement — disk reads, CPU time, pruning effectiveness of the §4.4
//! combined `max(d_sphere, d_rect)` bound. This crate is the instrument:
//! a dependency-free set of monotonic counters, log-scaled histograms and
//! span timers behind the [`Recorder`] trait.
//!
//! Two implementations ship:
//!
//! * [`Noop`] — every method is an empty `#[inline]` body, so engines
//!   generic over `R: Recorder` monomorphize the instrumentation away
//!   entirely. This is the default on every hot path.
//! * [`StatsRecorder`] — lock-free atomic counters, suitable for sharing
//!   across threads, snapshotted into a [`MetricsSnapshot`] that renders
//!   itself as a flat JSON object for `srtool --trace` lines.
//!
//! The metric *names* are a closed enum set ([`Counter`], [`Gauge`],
//! [`Hist`]) rather than strings: recording is an array index plus a
//! relaxed atomic add, and the schema the CLI emits is stable by
//! construction.

#![forbid(unsafe_code)]

mod metric;
mod recorder;
mod schema;
mod span;
mod stats;

pub use metric::{Counter, Gauge, Hist};
pub use recorder::{Noop, Recorder};
pub use schema::{schema_version_field, SCHEMA_VERSION};
pub use span::SpanTimer;
pub use stats::{HistSnapshot, MetricsSnapshot, StatsRecorder};
