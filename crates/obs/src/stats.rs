//! The collecting recorder and its snapshots.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::metric::{Counter, Gauge, Hist};
use crate::recorder::Recorder;

const N_COUNTERS: usize = Counter::ALL.len();
const N_GAUGES: usize = Gauge::ALL.len();
const N_HISTS: usize = Hist::ALL.len();

/// Power-of-two buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`. 65 buckets cover all of `u64`.
const N_BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (used as the quantile estimate).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

// srlint: send-sync -- independent atomic tallies; a racing snapshot may split count/sum by one observation, which consumers tolerate
struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl HistCell {
    // srlint: ordering -- relaxed: histogram cells are independent monotone tallies with no cross-counter invariant; a snapshot racing an observe may split count/sum by one observation, which the metrics consumers tolerate
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(b) = self.buckets.get(bucket_of(v)) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold a whole [`HistSnapshot`] in, bucket by bucket — exact, not
    /// a resampling, so quantiles of the merged cell equal quantiles of
    /// the combined observation streams (within bucket resolution).
    fn absorb(&self, s: &HistSnapshot) {
        self.count.fetch_add(s.count, Ordering::Relaxed);
        self.sum.fetch_add(s.sum, Ordering::Relaxed);
        self.max.fetch_max(s.max, Ordering::Relaxed);
        for (i, n) in s.buckets.iter().enumerate() {
            if *n > 0 {
                if let Some(b) = self.buckets.get(i) {
                    b.fetch_add(*n, Ordering::Relaxed);
                }
            }
        }
    }

    fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| {
                self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed))
            }),
        }
    }
}

/// A [`Recorder`] that actually keeps the numbers: relaxed atomics, no
/// locks, shareable across threads by reference.
// srlint: send-sync -- lock-free by construction: fixed-size arrays of atomics and HistCells, shared by reference across the executor's thread scope
pub struct StatsRecorder {
    counters: [AtomicU64; N_COUNTERS],
    gauges: [AtomicU64; N_GAUGES],
    hists: [HistCell; N_HISTS],
}

impl Default for StatsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsRecorder {
    // srlint: ordering -- relaxed loads: snapshot() is documented best-effort and may miss values recorded mid-query; nothing downstream assumes a consistent cut across counters
    /// Fresh, all-zero recorder.
    pub fn new() -> Self {
        StatsRecorder {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistCell::new()),
        }
    }

    /// Fold a finished [`MetricsSnapshot`] into this recorder — what a
    /// long-lived recorder (the serve loop's) does with the merged
    /// per-batch snapshots `sr-exec` returns, so service-lifetime
    /// p50/p99 cover batched and unbatched queries alike.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for c in Counter::ALL {
            let v = snap.counter(c);
            if v > 0 {
                self.incr(c, v);
            }
        }
        for g in Gauge::ALL {
            self.gauge_max(g, snap.gauge(g));
        }
        for (i, cell) in self.hists.iter().enumerate() {
            if let Some(h) = Hist::ALL.get(i) {
                cell.absorb(&snap.hist(*h));
            }
        }
    }

    /// Copy the current values out. Relaxed loads: values recorded by
    /// other threads mid-query may or may not be included.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| {
                self.counters
                    .get(i)
                    .map_or(0, |c| c.load(Ordering::Relaxed))
            }),
            gauges: std::array::from_fn(|i| {
                self.gauges.get(i).map_or(0, |g| g.load(Ordering::Relaxed))
            }),
            hists: std::array::from_fn(|i| {
                self.hists
                    .get(i)
                    .map(HistCell::snapshot)
                    .unwrap_or_default()
            }),
        }
    }
}

impl Recorder for StatsRecorder {
    // srlint: ordering -- relaxed increments: recording sits on the query hot path and each metric is an independent tally; see the StatsRecorder note for the snapshot side
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn incr(&self, c: Counter, by: u64) {
        if let Some(a) = self.counters.get(c.index()) {
            a.fetch_add(by, Ordering::Relaxed);
        }
    }

    #[inline]
    fn gauge_max(&self, g: Gauge, v: u64) {
        if let Some(a) = self.gauges.get(g.index()) {
            a.fetch_max(v, Ordering::Relaxed);
        }
    }

    #[inline]
    fn observe(&self, h: Hist, v: u64) {
        if let Some(cell) = self.hists.get(h.index()) {
            cell.observe(v);
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    buckets: [u64; N_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`) from the
    /// power-of-two buckets, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }
}

/// Point-in-time copy of every metric a [`StatsRecorder`] holds.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    counters: [u64; N_COUNTERS],
    gauges: [u64; N_GAUGES],
    hists: [HistSnapshot; N_HISTS],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; N_COUNTERS],
            gauges: [0; N_GAUGES],
            hists: std::array::from_fn(|_| HistSnapshot::default()),
        }
    }
}

impl MetricsSnapshot {
    /// All-zero snapshot — the identity for [`MetricsSnapshot::merge`].
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.index()).copied().unwrap_or(0)
    }

    /// Value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges.get(g.index()).copied().unwrap_or(0)
    }

    /// One histogram's snapshot.
    pub fn hist(&self, h: Hist) -> HistSnapshot {
        self.hists.get(h.index()).cloned().unwrap_or_default()
    }

    /// Difference `self - earlier` on counters and histogram count/sum
    /// (gauges and histogram max keep `self`'s value: high-water marks
    /// have no meaningful delta). Saturates instead of underflowing.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| {
                let now = self.counters.get(i).copied().unwrap_or(0);
                let then = earlier.counters.get(i).copied().unwrap_or(0);
                now.saturating_sub(then)
            }),
            gauges: self.gauges,
            hists: std::array::from_fn(|i| {
                let now = self.hists.get(i).cloned().unwrap_or_default();
                let then = earlier.hists.get(i).cloned().unwrap_or_default();
                HistSnapshot {
                    count: now.count.saturating_sub(then.count),
                    sum: now.sum.saturating_sub(then.sum),
                    max: now.max,
                    buckets: std::array::from_fn(|j| {
                        let a = now.buckets.get(j).copied().unwrap_or(0);
                        let b = then.buckets.get(j).copied().unwrap_or(0);
                        a.saturating_sub(b)
                    }),
                }
            }),
        }
    }

    /// Combine `self` with `other`, as if one recorder had seen both
    /// streams of events: counters and histogram count/sum/buckets add,
    /// gauges and histogram max take the maximum (they are high-water
    /// marks). This is how the batch executor folds per-worker recorders
    /// into one batch-wide snapshot. Saturates instead of overflowing.
    pub fn merge(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| {
                let a = self.counters.get(i).copied().unwrap_or(0);
                let b = other.counters.get(i).copied().unwrap_or(0);
                a.saturating_add(b)
            }),
            gauges: std::array::from_fn(|i| {
                let a = self.gauges.get(i).copied().unwrap_or(0);
                let b = other.gauges.get(i).copied().unwrap_or(0);
                a.max(b)
            }),
            hists: std::array::from_fn(|i| {
                let a = self.hists.get(i).cloned().unwrap_or_default();
                let b = other.hists.get(i).cloned().unwrap_or_default();
                HistSnapshot {
                    count: a.count.saturating_add(b.count),
                    sum: a.sum.saturating_add(b.sum),
                    max: a.max.max(b.max),
                    buckets: std::array::from_fn(|j| {
                        let x = a.buckets.get(j).copied().unwrap_or(0);
                        let y = b.buckets.get(j).copied().unwrap_or(0);
                        x.saturating_add(y)
                    }),
                }
            }),
        }
    }

    /// Render as a flat JSON object: counters and gauges by name,
    /// histograms as nested `{count, sum, max, mean, p50, p99}` objects.
    /// Keys appear in declaration order; the schema is fixed at compile
    /// time, which is what the CI trace-validation job checks against.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("{");
        for c in Counter::ALL {
            let _ = write!(s, "\"{}\":{},", c.name(), self.counter(c));
        }
        for g in Gauge::ALL {
            let _ = write!(s, "\"{}\":{},", g.name(), self.gauge(g));
        }
        for h in Hist::ALL {
            let hs = self.hist(h);
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}}},",
                h.name(),
                hs.count,
                hs.sum,
                hs.max,
                hs.mean(),
                hs.quantile(0.5),
                hs.quantile(0.99),
            );
        }
        if s.ends_with(',') {
            s.pop();
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = StatsRecorder::new();
        r.incr(Counter::NodeExpansions, 2);
        r.incr(Counter::NodeExpansions, 3);
        r.incr(Counter::PruneSphere, 1);
        let s = r.snapshot();
        assert_eq!(s.counter(Counter::NodeExpansions), 5);
        assert_eq!(s.counter(Counter::PruneSphere), 1);
        assert_eq!(s.counter(Counter::PruneRect), 0);
    }

    #[test]
    fn gauge_keeps_maximum() {
        let r = StatsRecorder::new();
        r.gauge_max(Gauge::HeapHighWater, 4);
        r.gauge_max(Gauge::HeapHighWater, 9);
        r.gauge_max(Gauge::HeapHighWater, 7);
        assert_eq!(r.snapshot().gauge(Gauge::HeapHighWater), 9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = StatsRecorder::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            r.observe(Hist::NodeFanout, v);
        }
        let h = r.snapshot().hist(Hist::NodeFanout);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
        // p50 falls in the bucket holding 2 and 3 -> upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // The top quantile is clamped to the observed max.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn snapshot_since_subtracts_counters() {
        let r = StatsRecorder::new();
        r.incr(Counter::PointsScored, 10);
        r.observe(Hist::QueryNs, 50);
        let before = r.snapshot();
        r.incr(Counter::PointsScored, 7);
        r.observe(Hist::QueryNs, 70);
        let d = r.snapshot().since(&before);
        assert_eq!(d.counter(Counter::PointsScored), 7);
        assert_eq!(d.hist(Hist::QueryNs).count, 1);
        assert_eq!(d.hist(Hist::QueryNs).sum, 70);
    }

    #[test]
    fn merge_adds_counts_and_maxes_highwater() {
        let a = StatsRecorder::new();
        a.incr(Counter::NodeExpansions, 3);
        a.gauge_max(Gauge::HeapHighWater, 4);
        a.observe(Hist::QueryNs, 10);
        a.observe(Hist::QueryNs, 100);
        let b = StatsRecorder::new();
        b.incr(Counter::NodeExpansions, 2);
        b.incr(Counter::PruneSphere, 1);
        b.gauge_max(Gauge::HeapHighWater, 9);
        b.observe(Hist::QueryNs, 50);

        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.counter(Counter::NodeExpansions), 5);
        assert_eq!(m.counter(Counter::PruneSphere), 1);
        assert_eq!(m.gauge(Gauge::HeapHighWater), 9);
        let h = m.hist(Hist::QueryNs);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 160);
        assert_eq!(h.max, 100);

        // empty() is the identity on both sides.
        assert_eq!(MetricsSnapshot::empty().merge(&m), m);
        assert_eq!(m.merge(&MetricsSnapshot::empty()), m);
    }

    #[test]
    fn json_is_flat_and_complete() {
        let r = StatsRecorder::new();
        r.incr(Counter::LeafExpansions, 1);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for c in Counter::ALL {
            assert!(json.contains(&format!("\"{}\":", c.name())), "{json}");
        }
        assert!(json.contains("\"leaf_expansions\":1"));
        assert!(json.contains("\"query_ns\":{\"count\":0"));
    }
}
