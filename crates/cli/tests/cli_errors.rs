//! Malformed-input handling: the binary must reject bad arguments and
//! bad data files with a typed error, a usage hint, and a non-zero
//! exit — never a panic.

use std::path::PathBuf;
use std::process::Output;

use sr_cli::{parse, ArgError};

fn srtool(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_srtool"))
        .args(args)
        .output()
        .unwrap()
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srtool-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn parse_err(args: &[&str]) -> ArgError {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
}

#[test]
fn no_command_exits_2_with_usage() {
    let out = srtool(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(stderr.contains("no command given"), "{stderr}");
}

#[test]
fn unknown_command_exits_2() {
    let out = srtool(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frobnicate"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_flag_value_exits_2() {
    // --n wants a usize; "many" is not one.
    let out = srtool(&["gen", "--n", "many", "--dim", "4", "--seed", "1", "x.tsv"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--n"), "{stderr}");
    assert!(matches!(
        parse_err(&["gen", "--n", "many", "--dim", "4", "--seed", "1", "x.tsv"]),
        ArgError::BadValue { flag: "--n", .. }
    ));
}

#[test]
fn missing_flag_value_exits_2() {
    let out = srtool(&["knn", "index.pages", "--k"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(matches!(
        parse_err(&["knn", "index.pages", "--k"]),
        ArgError::MissingValue("--k")
    ));
}

#[test]
fn malformed_query_vector_exits_2() {
    let out = srtool(&["knn", "index.pages", "--k", "3", "--query", "0.1,zap,0.3"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--query"), "{stderr}");
}

#[test]
fn malformed_data_file_exits_1_with_location() {
    let data = tmpfile("bad.tsv");
    std::fs::write(&data, "1\t0.5\t0.5\nnot-an-id\t0.5\t0.5\n").unwrap();
    let index = tmpfile("bad.pages");
    let out = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "2",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    // The DataError names the file and line of the bad id.
    assert!(stderr.contains(":2:"), "{stderr}");
    assert!(stderr.contains("bad id"), "{stderr}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn missing_data_file_exits_1() {
    let index = tmpfile("missing.pages");
    let out = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "2",
        index.to_str().unwrap(),
        "/nonexistent/nope.tsv",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nope.tsv"), "{stderr}");
    std::fs::remove_file(&index).ok();
}
