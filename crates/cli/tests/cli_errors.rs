//! Malformed-input handling: the binary must reject bad arguments and
//! bad data files with a typed error, a usage hint, and a non-zero
//! exit — never a panic.

use std::path::PathBuf;
use std::process::Output;

use sr_cli::{parse, ArgError};

fn srtool(args: &[&str]) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_srtool"))
        .args(args)
        .output()
        .unwrap()
}

fn tmpfile(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srtool-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn parse_err(args: &[&str]) -> ArgError {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap_err()
}

#[test]
fn no_command_exits_2_with_usage() {
    let out = srtool(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"), "{stderr}");
    assert!(stderr.contains("no command given"), "{stderr}");
}

#[test]
fn unknown_command_exits_2() {
    let out = srtool(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("frobnicate"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn malformed_flag_value_exits_2() {
    // --n wants a usize; "many" is not one.
    let out = srtool(&["gen", "--n", "many", "--dim", "4", "--seed", "1", "x.tsv"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--n"), "{stderr}");
    assert!(matches!(
        parse_err(&["gen", "--n", "many", "--dim", "4", "--seed", "1", "x.tsv"]),
        ArgError::BadValue { flag: "--n", .. }
    ));
}

#[test]
fn missing_flag_value_exits_2() {
    let out = srtool(&["knn", "index.pages", "--k"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(matches!(
        parse_err(&["knn", "index.pages", "--k"]),
        ArgError::MissingValue("--k")
    ));
}

#[test]
fn malformed_query_vector_exits_2() {
    let out = srtool(&["knn", "index.pages", "--k", "3", "--query", "0.1,zap,0.3"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--query"), "{stderr}");
}

#[test]
fn malformed_data_file_exits_1_with_location() {
    let data = tmpfile("bad.tsv");
    std::fs::write(&data, "1\t0.5\t0.5\nnot-an-id\t0.5\t0.5\n").unwrap();
    let index = tmpfile("bad.pages");
    let out = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "2",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    // The DataError names the file and line of the bad id.
    assert!(stderr.contains(":2:"), "{stderr}");
    assert!(stderr.contains("bad id"), "{stderr}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn negative_radius_exits_2() {
    // Rejected at parse time: a negative (or NaN) search radius is a
    // usage error, not a runtime failure.
    for bad in ["-1", "-0.5", "NaN"] {
        let out = srtool(&[
            "range",
            "index.pages",
            "--radius",
            bad,
            "--query",
            "0.1,0.2",
        ]);
        assert_eq!(out.status.code(), Some(2), "radius {bad}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("--radius"), "radius {bad}: {stderr}");
    }
}

#[test]
fn trace_json_emits_metrics_schema() {
    // Build a small index through the binary, query it with
    // --trace --json, and check the structured line's schema: the
    // fields CI depends on must exist with sane values.
    let data = tmpfile("trace.tsv");
    let index = tmpfile("trace.pages");
    let gen = srtool(&[
        "gen",
        "--n",
        "800",
        "--dim",
        "8",
        "--seed",
        "11",
        data.to_str().unwrap(),
    ]);
    assert!(gen.status.success());
    let build = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "8",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert!(build.status.success());

    let q = ["0.5"; 8].join(",");
    let out = srtool(&[
        "knn",
        index.to_str().unwrap(),
        "--k",
        "5",
        "--query",
        &q,
        "--trace",
        "--json",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for field in [
        "\"schema_version\":1",
        "\"cmd\":\"knn\"",
        "\"results\":[",
        "\"trace\":",
        "\"metrics\":",
        "\"node_expansions\":",
        "\"points_scored\":",
        "\"prune_events\":",
        "\"heap_high_water\":",
        "\"query_ns\":",
        "\"io\":",
        "\"cache_hits\":",
        "\"cache_misses\":",
        "\"wal_frames_appended\":",
        "\"wal_replays\":",
        "\"wal_torn_tails\":",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
    // A fresh open means the query's window did real work.
    let expansions: u64 = extract_u64(line, "\"node_expansions\":");
    assert!(expansions > 0, "{line}");

    // Without --json the trace line moves to stderr and stdout stays TSV.
    let out = srtool(&[
        "knn",
        index.to_str().unwrap(),
        "--k",
        "5",
        "--query",
        &q,
        "--trace",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 5, "{stdout}");
    assert!(!stdout.contains('{'), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("\"metrics\":"), "{stderr}");

    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

/// Pull the integer following `key` out of a flat JSON line.
fn extract_u64(line: &str, key: &str) -> u64 {
    let start = line.find(key).map(|i| i + key.len()).unwrap_or(0);
    line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or(0)
}

#[test]
fn unreachable_server_exits_3() {
    // Remote failures get their own exit code so scripts can tell a bad
    // server apart from a bad invocation (2) or a local failure (1).
    // Port 1 on loopback is never listening in the test environment.
    let out = srtool(&["client", "ping", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn client_without_addr_exits_2() {
    // A missing --addr is a usage error, not a remote one.
    let out = srtool(&["client", "ping"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(matches!(
        parse_err(&["client", "ping"]),
        ArgError::MissingFlag("--addr")
    ));
}

#[test]
fn help_documents_serving_and_exit_codes() {
    let out = srtool(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "serve",
        "client",
        "--max-conns",
        "exit codes",
        "3",
        "remote",
    ] {
        assert!(stdout.contains(needle), "help missing {needle:?}: {stdout}");
    }
}

#[test]
fn missing_data_file_exits_1() {
    let index = tmpfile("missing.pages");
    let out = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "2",
        index.to_str().unwrap(),
        "/nonexistent/nope.tsv",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nope.tsv"), "{stderr}");
    std::fs::remove_file(&index).ok();
}

#[test]
fn lint_rejects_unknown_rule_family() {
    let out = srtool(&["lint", "--rule", "L9"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("L9"), "{stderr}");
    assert!(matches!(
        parse_err(&["lint", "--rule", "L9"]),
        ArgError::BadValue { flag: "--rule", .. }
    ));
    assert!(matches!(
        parse_err(&["lint", "--rule"]),
        ArgError::MissingValue("--rule")
    ));
}

#[test]
fn lint_rule_filter_and_stats_line() {
    // The workspace is lint-clean, so a filtered run is clean too and
    // the stats line reports the run shape.
    let root = env!("CARGO_MANIFEST_DIR");
    let root = std::path::Path::new(root)
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let out = srtool(&[
        "lint",
        "--root",
        root.to_str().unwrap(),
        "--rule",
        "L7",
        "--stats",
    ]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("srlint: 0 violation(s)"), "{stdout}");
    let stats_line = stdout
        .lines()
        .find(|l| l.starts_with("srlint-stats:"))
        .expect("stats line present");
    assert!(stats_line.contains("files="), "{stats_line}");
    assert!(stats_line.contains("elapsed_ms="), "{stats_line}");
    assert!(extract_u64(stats_line, "files=") > 100, "{stats_line}");
}

#[test]
fn lint_json_reports_all_eight_families() {
    let root = env!("CARGO_MANIFEST_DIR");
    let root = std::path::Path::new(root)
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let out = srtool(&["lint", "--root", root.to_str().unwrap(), "--json"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    for fam in ["L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8"] {
        assert!(
            stdout.contains(&format!("\"{fam}\": 0")),
            "{fam} missing: {stdout}"
        );
    }
    assert!(stdout.contains("\"files_scanned\":"), "{stdout}");
}
