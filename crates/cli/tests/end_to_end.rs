//! End-to-end tests of the srtool workflow: gen → build → stats →
//! verify → knn → range → insert, for every index kind, through the
//! library interface the binary wraps.

use sr_cli::{parse, run, Command};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("srtool-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sh(args: &[&str]) -> Result<String, String> {
    let cmd: Command = parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        .map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    run(cmd, &mut out).map_err(|e| e.to_string())?;
    Ok(String::from_utf8(out).unwrap())
}

#[test]
fn full_workflow_for_every_index_kind() {
    let dir = tmpdir();
    let data = dir.join("data.tsv");
    let out = sh(&[
        "gen",
        "--kind",
        "histogram",
        "--n",
        "2000",
        "--dim",
        "16",
        "--seed",
        "5",
        data.to_str().unwrap(),
    ])
    .unwrap();
    assert!(out.contains("2000 points"));

    for kind in ["sr", "ss", "rstar", "kdb", "vam"] {
        let index = dir.join(format!("{kind}.pages"));
        let out = sh(&[
            "build",
            "--index",
            kind,
            "--dim",
            "16",
            index.to_str().unwrap(),
            data.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("2000 points loaded"), "{kind}: {out}");

        let out = sh(&["stats", index.to_str().unwrap()]).unwrap();
        assert!(out.contains("2000 points"), "{kind}: {out}");
        assert!(out.contains("16 dimensions"));
        assert!(out.contains("wal:"), "{kind}: {out}");

        // The JSON shape carries the WAL durability counters CI's jq
        // schema check keys on.
        let out = sh(&["stats", "--json", index.to_str().unwrap()]).unwrap();
        for field in [
            "\"io\":",
            "\"wal\":",
            "\"frames_appended\":",
            "\"replays\":",
            "\"torn_tails\":",
            "\"wal_bytes\":",
        ] {
            assert!(out.contains(field), "{kind}: missing {field} in {out}");
        }

        let out = sh(&["verify", index.to_str().unwrap()]).unwrap();
        assert!(out.contains("OK"), "{kind}: {out}");

        // kNN: query a vector near the simplex center.
        let q = vec!["0.0625"; 16].join(",");
        let out = sh(&["knn", index.to_str().unwrap(), "--k", "5", "--query", &q]).unwrap();
        assert_eq!(out.lines().count(), 5, "{kind}: {out}");

        // range with a generous radius returns something.
        let out = sh(&[
            "range",
            index.to_str().unwrap(),
            "--radius",
            "0.5",
            "--query",
            &q,
        ])
        .unwrap();
        assert!(!out.is_empty(), "{kind}");

        std::fs::remove_file(&index).ok();
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn knn_answers_are_identical_across_kinds() {
    let dir = tmpdir();
    let data = dir.join("agree.tsv");
    sh(&[
        "gen",
        "--kind",
        "cluster",
        "--n",
        "1500",
        "--dim",
        "8",
        "--clusters",
        "10",
        "--seed",
        "9",
        data.to_str().unwrap(),
    ])
    .unwrap();
    let q = "0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5";
    let mut answers = Vec::new();
    for kind in ["sr", "ss", "rstar", "kdb", "vam"] {
        let index = dir.join(format!("agree-{kind}.pages"));
        sh(&[
            "build",
            "--index",
            kind,
            "--dim",
            "8",
            index.to_str().unwrap(),
            data.to_str().unwrap(),
        ])
        .unwrap();
        answers.push(sh(&["knn", index.to_str().unwrap(), "--k", "7", "--query", q]).unwrap());
        std::fs::remove_file(&index).ok();
    }
    for w in answers.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    std::fs::remove_file(&data).ok();
}

#[test]
fn insert_into_existing_index() {
    let dir = tmpdir();
    let a = dir.join("a.tsv");
    let b = dir.join("b.tsv");
    sh(&[
        "gen",
        "--n",
        "500",
        "--dim",
        "4",
        "--seed",
        "1",
        a.to_str().unwrap(),
    ])
    .unwrap();
    // second batch: ids must not collide for the test's sanity, but the
    // index itself does not require uniqueness
    sh(&[
        "gen",
        "--n",
        "300",
        "--dim",
        "4",
        "--seed",
        "2",
        b.to_str().unwrap(),
    ])
    .unwrap();
    let index = dir.join("grow.pages");
    sh(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "4",
        index.to_str().unwrap(),
        a.to_str().unwrap(),
    ])
    .unwrap();
    let out = sh(&["insert", index.to_str().unwrap(), b.to_str().unwrap()]).unwrap();
    assert!(out.contains("index now holds 800"), "{out}");
    let out = sh(&["verify", index.to_str().unwrap()]).unwrap();
    assert!(out.contains("800 points"), "{out}");
    for p in [a, b, index] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn vam_rejects_insert() {
    let dir = tmpdir();
    let data = dir.join("vam.tsv");
    sh(&[
        "gen",
        "--n",
        "200",
        "--dim",
        "4",
        "--seed",
        "3",
        data.to_str().unwrap(),
    ])
    .unwrap();
    let index = dir.join("vam.pages");
    sh(&[
        "build",
        "--index",
        "vam",
        "--dim",
        "4",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ])
    .unwrap();
    let err = sh(&["insert", index.to_str().unwrap(), data.to_str().unwrap()]).unwrap_err();
    assert!(err.contains("static"), "{err}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}

#[test]
fn open_of_garbage_fails_cleanly() {
    let dir = tmpdir();
    let junk = dir.join("junk.pages");
    std::fs::write(&junk, vec![0u8; 4096]).unwrap();
    let err = sh(&["stats", junk.to_str().unwrap()]).unwrap_err();
    assert!(
        err.contains("not a recognizable index file") || err.contains("corrupt"),
        "{err}"
    );
    std::fs::remove_file(&junk).ok();
}

#[test]
fn dim_mismatch_reported_at_build() {
    let dir = tmpdir();
    let data = dir.join("dim.tsv");
    sh(&[
        "gen",
        "--n",
        "50",
        "--dim",
        "4",
        "--seed",
        "3",
        data.to_str().unwrap(),
    ])
    .unwrap();
    let index = dir.join("dim.pages");
    let err = sh(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "8",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ])
    .unwrap_err();
    assert!(err.contains("4-d"), "{err}");
    std::fs::remove_file(&data).ok();
    std::fs::remove_file(&index).ok();
}
