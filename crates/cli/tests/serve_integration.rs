//! `srtool serve` / `srtool client` end to end at the binary level: a
//! served index answers `client knn --batch` byte-identically to the
//! offline `srtool knn --batch` path (they share one `sr_wire::execute`
//! entry point), eight concurrent client processes agree, a `client
//! shutdown` drains and flushes so the next open replays zero WAL
//! frames, and a SIGKILL mid-insert-load leaves an index that reopens,
//! verifies, and answers queries — the WAL crash-recovery contract,
//! exercised through the server.

use std::io::{BufRead as _, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn srtool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srtool"))
        .args(args)
        .output()
        .unwrap()
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srtool-serve-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `srtool serve <index> --addr 127.0.0.1:0` and parse the bound
/// address out of its `listening on ...` banner.
fn spawn_serve(index: &str) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_srtool"))
        .args(["serve", index, "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    (child, addr)
}

/// Wait up to `secs` seconds for the child to exit, returning its code.
fn wait_exit(child: &mut Child, secs: u64) -> Option<i32> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if let Some(status) = child.try_wait().unwrap() {
            return status.code();
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().ok();
    panic!("serve did not exit within {secs}s");
}

fn build_index(dir: &std::path::Path, n: usize) -> (String, String) {
    let data = dir.join("data.tsv");
    let index = dir.join("index.pages");
    let gen = srtool(&[
        "gen",
        "--n",
        &n.to_string(),
        "--dim",
        "8",
        "--seed",
        "7",
        data.to_str().unwrap(),
    ]);
    assert!(gen.status.success());
    let build = srtool(&[
        "build",
        "--index",
        "sr",
        "--dim",
        "8",
        index.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert!(build.status.success());
    (
        index.to_str().unwrap().to_string(),
        data.to_str().unwrap().to_string(),
    )
}

#[test]
fn served_batch_matches_offline_byte_for_byte_and_shutdown_is_clean() {
    let dir = tmpdir("roundtrip");
    let (index, _) = build_index(&dir, 3_000);
    let batch = dir.join("queries.tsv");
    let gen = srtool(&[
        "gen",
        "--n",
        "24",
        "--dim",
        "8",
        "--seed",
        "9",
        batch.to_str().unwrap(),
    ]);
    assert!(gen.status.success());

    // The offline answer, straight through the store.
    let offline = srtool(&[
        "knn",
        &index,
        "--k",
        "9",
        "--batch",
        batch.to_str().unwrap(),
    ]);
    assert!(offline.status.success());
    assert!(!offline.stdout.is_empty());

    let (mut serve, addr) = spawn_serve(&index);

    // Eight concurrent client processes, all byte-identical to offline.
    let mut clients = Vec::new();
    for _ in 0..8 {
        clients.push(
            Command::new(env!("CARGO_BIN_EXE_srtool"))
                .args([
                    "client",
                    "knn",
                    "--addr",
                    &addr,
                    "--k",
                    "9",
                    "--batch",
                    batch.to_str().unwrap(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .unwrap(),
        );
    }
    for client in clients {
        let out = client.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "client failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, offline.stdout,
            "served batch output diverged from offline"
        );
    }

    // The service stats document is schema-stamped and carries the
    // service-lifetime metrics block.
    let stats = srtool(&["client", "stats", "--addr", &addr]);
    assert!(stats.status.success());
    let json = String::from_utf8(stats.stdout).unwrap();
    assert!(json.contains("\"schema_version\":1"), "{json}");
    assert!(json.contains("\"metrics\""), "{json}");

    // Graceful shutdown: ack, then the server process exits cleanly.
    let down = srtool(&["client", "shutdown", "--addr", &addr]);
    assert!(down.status.success());
    assert_eq!(wait_exit(&mut serve, 10), Some(0));

    // The shutdown flushed: reopening replays zero WAL frames.
    let stats = srtool(&["stats", &index, "--json"]);
    assert!(stats.status.success());
    let json = String::from_utf8(stats.stdout).unwrap();
    assert!(json.contains("\"replays\":0"), "{json}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_mid_insert_load_leaves_a_recoverable_index() {
    let dir = tmpdir("crash");
    let (index, data) = build_index(&dir, 2_000);

    let (mut serve, addr) = spawn_serve(&index);

    // Re-insert the data set over the wire and kill the server while
    // the load is in flight. The client's own failure is expected noise.
    let mut loader = Command::new(env!("CARGO_BIN_EXE_srtool"))
        .args(["client", "insert", "--addr", &addr, "--data", &data])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));
    serve.kill().unwrap();
    serve.wait().unwrap();
    loader.wait().unwrap();

    // Whatever committed stays, whatever didn't is discarded: the index
    // must reopen, verify, and answer queries.
    let verify = srtool(&["verify", &index]);
    assert!(
        verify.status.success(),
        "verify after crash failed: {}",
        String::from_utf8_lossy(&verify.stderr)
    );
    let q = ["0.5"; 8].join(",");
    let knn = srtool(&["knn", &index, "--k", "5", "--query", &q]);
    assert!(knn.status.success());
    assert_eq!(
        String::from_utf8(knn.stdout).unwrap().lines().count(),
        5,
        "post-crash query did not return k rows"
    );

    std::fs::remove_dir_all(&dir).ok();
}
