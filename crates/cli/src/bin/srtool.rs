//! `srtool` — build, query, and inspect SR-tree-family index files.
//!
//! See the crate docs of `sr-cli` or the workspace README for the
//! command grammar.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match sr_cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("srtool: {e}");
            eprintln!("{}", sr_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = sr_cli::run(cmd, &mut stdout) {
        eprintln!("srtool: {e}");
        // Usage errors share exit code 2 with parse errors; runtime
        // failures exit 1.
        std::process::exit(match e {
            sr_cli::CmdError::Usage(_) => 2,
            sr_cli::CmdError::Failure(_) => 1,
            // Remote failures (server unreachable / typed server
            // error) get their own code so scripts can retry.
            sr_cli::CmdError::Remote(_) => 3,
        });
    }
}
