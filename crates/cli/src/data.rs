//! TSV point-file reading and writing: `id <TAB> c0 <TAB> c1 ...`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use sr_geometry::Point;

/// Read a TSV point file. Every line must have the same dimensionality.
pub fn read_points(path: &Path) -> Result<Vec<(Point, u64)>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    let mut dim = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let id: u64 = fields
            .next()
            .unwrap()
            .parse()
            .map_err(|e| format!("{}:{}: bad id: {e}", path.display(), lineno + 1))?;
        let coords: Result<Vec<f32>, _> = fields.map(|f| f.parse::<f32>()).collect();
        let coords = coords
            .map_err(|e| format!("{}:{}: bad coordinate: {e}", path.display(), lineno + 1))?;
        if coords.is_empty() {
            return Err(format!("{}:{}: no coordinates", path.display(), lineno + 1));
        }
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!(
                    "{}:{}: dimensionality {} differs from {}",
                    path.display(),
                    lineno + 1,
                    coords.len(),
                    d
                ))
            }
            _ => {}
        }
        out.push((Point::new(coords), id));
    }
    Ok(out)
}

/// Write points to a TSV file.
pub fn write_points(path: &Path, points: &[(Point, u64)]) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut w = BufWriter::new(file);
    for (p, id) in points {
        write!(w, "{id}").map_err(|e| e.to_string())?;
        for c in p.coords() {
            write!(w, "\t{c}").map_err(|e| e.to_string())?;
        }
        writeln!(w).map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sr-cli-data-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let path = tmpfile("roundtrip.tsv");
        let points = vec![
            (Point::new(vec![0.5, -1.25]), 3),
            (Point::new(vec![1e-8, 4.0]), 9),
        ];
        write_points(&path, &points).unwrap();
        let back = read_points(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].1, 3);
        assert_eq!(back[0].0.coords(), &[0.5, -1.25]);
        assert_eq!(back[1].0.coords(), &[1e-8, 4.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let path = tmpfile("comments.tsv");
        std::fs::write(&path, "# header\n\n1\t0.5\t0.5\n").unwrap();
        let pts = read_points(&path).unwrap();
        assert_eq!(pts.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let path = tmpfile("mismatch.tsv");
        std::fs::write(&path, "1\t0.5\n2\t0.5\t0.5\n").unwrap();
        let err = read_points(&path).unwrap_err();
        assert!(err.contains("dimensionality"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_rejected_with_location() {
        let path = tmpfile("garbage.tsv");
        std::fs::write(&path, "1\tx\n").unwrap();
        let err = read_points(&path).unwrap_err();
        assert!(err.contains(":1:"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
