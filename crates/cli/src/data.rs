//! TSV point-file reading and writing: `id <TAB> c0 <TAB> c1 ...`.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use sr_geometry::Point;

/// A malformed or unreadable data file. Every variant carries the path
/// (and line, where one exists) so the user can jump to the fault.
#[derive(Debug)]
pub enum DataError {
    /// The file could not be opened, read, or written.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A line's leading id field is missing or not a `u64`.
    BadId {
        path: PathBuf,
        line: usize,
        detail: String,
    },
    /// A coordinate field is not an `f32`.
    BadCoordinate {
        path: PathBuf,
        line: usize,
        detail: String,
    },
    /// A line has an id but no coordinates.
    NoCoordinates { path: PathBuf, line: usize },
    /// A line's dimensionality differs from the first point's.
    DimensionMismatch {
        path: PathBuf,
        line: usize,
        got: usize,
        want: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            DataError::BadId { path, line, detail } => {
                write!(f, "{}:{line}: bad id: {detail}", path.display())
            }
            DataError::BadCoordinate { path, line, detail } => {
                write!(f, "{}:{line}: bad coordinate: {detail}", path.display())
            }
            DataError::NoCoordinates { path, line } => {
                write!(f, "{}:{line}: no coordinates", path.display())
            }
            DataError::DimensionMismatch {
                path,
                line,
                got,
                want,
            } => write!(
                f,
                "{}:{line}: dimensionality {got} differs from {want}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Read a TSV point file. Every line must have the same dimensionality.
pub fn read_points(path: &Path) -> Result<Vec<(Point, u64)>, DataError> {
    let io_err = |source| DataError::Io {
        path: path.to_path_buf(),
        source,
    };
    let file = std::fs::File::open(path).map_err(io_err)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    let mut dim = None;
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.map_err(io_err)?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let id_field = fields.next().ok_or_else(|| DataError::BadId {
            path: path.to_path_buf(),
            line: lineno,
            detail: "empty line".into(),
        })?;
        let id: u64 = id_field
            .parse()
            .map_err(|e: std::num::ParseIntError| DataError::BadId {
                path: path.to_path_buf(),
                line: lineno,
                detail: e.to_string(),
            })?;
        let coords: Result<Vec<f32>, _> = fields.map(|f| f.parse::<f32>()).collect();
        let coords = coords.map_err(|e| DataError::BadCoordinate {
            path: path.to_path_buf(),
            line: lineno,
            detail: e.to_string(),
        })?;
        if coords.is_empty() {
            return Err(DataError::NoCoordinates {
                path: path.to_path_buf(),
                line: lineno,
            });
        }
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(DataError::DimensionMismatch {
                    path: path.to_path_buf(),
                    line: lineno,
                    got: coords.len(),
                    want: d,
                })
            }
            _ => {}
        }
        out.push((Point::new(coords), id));
    }
    Ok(out)
}

/// Write points to a TSV file.
pub fn write_points(path: &Path, points: &[(Point, u64)]) -> Result<(), DataError> {
    let io_err = |source| DataError::Io {
        path: path.to_path_buf(),
        source,
    };
    let file = std::fs::File::create(path).map_err(io_err)?;
    let mut w = BufWriter::new(file);
    for (p, id) in points {
        write!(w, "{id}").map_err(io_err)?;
        for c in p.coords() {
            write!(w, "\t{c}").map_err(io_err)?;
        }
        writeln!(w).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sr-cli-data-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let path = tmpfile("roundtrip.tsv");
        let points = vec![
            (Point::new(vec![0.5, -1.25]), 3),
            (Point::new(vec![1e-8, 4.0]), 9),
        ];
        write_points(&path, &points).unwrap();
        let back = read_points(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].1, 3);
        assert_eq!(back[0].0.coords(), &[0.5, -1.25]);
        assert_eq!(back[1].0.coords(), &[1e-8, 4.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let path = tmpfile("comments.tsv");
        std::fs::write(&path, "# header\n\n1\t0.5\t0.5\n").unwrap();
        let pts = read_points(&path).unwrap();
        assert_eq!(pts.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let path = tmpfile("mismatch.tsv");
        std::fs::write(&path, "1\t0.5\n2\t0.5\t0.5\n").unwrap();
        let err = read_points(&path).unwrap_err();
        assert!(
            matches!(
                err,
                DataError::DimensionMismatch {
                    line: 2,
                    got: 2,
                    want: 1,
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("dimensionality"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_rejected_with_location() {
        let path = tmpfile("garbage.tsv");
        std::fs::write(&path, "1\tx\n").unwrap();
        let err = read_points(&path).unwrap_err();
        assert!(
            matches!(err, DataError::BadCoordinate { line: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains(":1:"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_points(Path::new("/nonexistent/nope.tsv")).unwrap_err();
        assert!(matches!(err, DataError::Io { .. }), "{err}");
    }
}
