//! Command execution.

use std::fmt;
use std::io::Write;

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec};
use sr_geometry::Point;
use sr_obs::{Counter, Recorder, StatsRecorder};
use sr_pager::{IoStats, PageKind, WalStats};
use sr_testkit::{failure_report, generate, minimize, run_tape, DiffConfig, WorkloadSpec};
use sr_wire::{io_json, RemoteError, Request, Response};

use crate::args::{ClientOp, Command, GenKind, HELP};
use crate::data::{read_points, write_points};
use crate::store::AnyStore;

/// A failed command, split by exit code: usage errors (bad input the
/// user can fix — exit 2), execution failures (exit 1), and remote
/// failures (the query service said no, or could not be reached —
/// exit 3, so scripts can tell "my index is broken" from "the server
/// is down or overloaded").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmdError {
    /// The invocation was well-formed but semantically invalid.
    Usage(String),
    /// The command ran and failed.
    Failure(String),
    /// A `client` command failed on or en route to the server.
    Remote(String),
}

impl fmt::Display for CmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdError::Usage(s) | CmdError::Failure(s) | CmdError::Remote(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for CmdError {}

impl From<String> for CmdError {
    fn from(s: String) -> Self {
        CmdError::Failure(s)
    }
}

/// Mirror the pager's [`WalStats`] into the metric counters, the same
/// way `sr-exec` mirrors `IoStats` into the cache pair. These are
/// store-lifetime totals at snapshot time, not per-query windows: a
/// nonzero `wal_replays` in a trace says this store crash-recovered
/// when it was opened.
fn mirror_wal(rec: &dyn Recorder, ws: &WalStats) {
    rec.incr(Counter::WalFramesAppended, ws.frames_appended);
    rec.incr(Counter::WalCommits, ws.commits);
    rec.incr(Counter::WalTruncations, ws.truncations);
    rec.incr(Counter::WalReplays, ws.replays);
    rec.incr(Counter::WalReplayedFrames, ws.replayed_frames);
    rec.incr(Counter::WalDroppedFrames, ws.dropped_frames);
    rec.incr(Counter::WalTornTails, ws.torn_tails);
}

/// One structured line per traced query: the recorder snapshot plus the
/// query's I/O window.
fn trace_json(cmd: &str, results: usize, rec: &StatsRecorder, io: &IoStats, cap: usize) -> String {
    format!(
        "{{{},\"cmd\":\"{cmd}\",\"results\":{results},\"metrics\":{},\"io\":{}}}",
        sr_obs::schema_version_field(),
        rec.snapshot().to_json(),
        io_json(io, cap),
    )
}

/// The batch flavor of [`trace_json`]: per-worker recorders merged into
/// one snapshot, I/O windowed over the whole batch. Keeps the same
/// `metrics`/`io` field shapes so downstream jq filters work unchanged.
fn batch_trace_json(
    results: usize,
    threads: usize,
    queries: usize,
    metrics: &sr_obs::MetricsSnapshot,
    io: &IoStats,
    cap: usize,
) -> String {
    format!(
        "{{{},\"cmd\":\"knn_batch\",\"results\":{results},\"threads\":{threads},\
         \"queries\":{queries},\"metrics\":{},\"io\":{}}}",
        sr_obs::schema_version_field(),
        metrics.to_json(),
        io_json(io, cap),
    )
}

/// Lower an executed [`Response`] to `(id, distance)` pairs, folding
/// typed remote errors back into the CLI error taxonomy: caller
/// mistakes stay usage errors (exit 2), everything else fails (exit 1).
fn response_rows(resp: Response) -> Result<Vec<(u64, f64)>, CmdError> {
    match resp {
        Response::Rows(rows) => Ok(rows.iter().map(|r| (r.data, r.dist)).collect()),
        Response::Error(RemoteError::BadRequest(msg) | RemoteError::Unsupported(msg)) => {
            Err(CmdError::Usage(msg))
        }
        Response::Error(e) => Err(CmdError::Failure(e.to_string())),
        other => Err(CmdError::Failure(format!(
            "query returned a non-row response: {other:?}"
        ))),
    }
}

fn results_json(hits: &[(u64, f64)]) -> String {
    let rows: Vec<String> = hits
        .iter()
        .map(|(id, dist)| format!("{{\"id\":{id},\"dist\":{dist}}}"))
        .collect();
    format!("[{}]", rows.join(","))
}

/// Shared tail of `knn` and `range`: run the (possibly traced) query
/// and print TSV rows or a JSON object.
fn run_query(
    store: &AnyStore,
    cmd_name: &str,
    trace: bool,
    json: bool,
    out: &mut dyn Write,
    query: impl FnOnce(&dyn sr_obs::Recorder) -> Result<Vec<(u64, f64)>, CmdError>,
) -> Result<(), CmdError> {
    let rec = StatsRecorder::new();
    let before = store.pager().stats();
    let hits = if trace {
        query(&rec)?
    } else {
        query(&sr_obs::Noop)?
    };
    let io = store.pager().stats().since(&before);
    let cap = store.pager().cache_capacity();
    if trace {
        mirror_wal(&rec, &store.pager().wal_stats());
    }
    let e = |err: std::io::Error| CmdError::Failure(err.to_string());
    if json {
        let trace_field = if trace {
            format!(
                ",\"trace\":{}",
                trace_json(cmd_name, hits.len(), &rec, &io, cap)
            )
        } else {
            String::new()
        };
        writeln!(
            out,
            "{{{},\"cmd\":\"{cmd_name}\",\"results\":{}{trace_field}}}",
            sr_obs::schema_version_field(),
            results_json(&hits)
        )
        .map_err(e)?;
    } else {
        for (id, dist) in &hits {
            writeln!(out, "{id}\t{dist}").map_err(e)?;
        }
        if trace {
            // Keep stdout parseable: the trace line goes to stderr.
            eprintln!("{}", trace_json(cmd_name, hits.len(), &rec, &io, cap));
        }
    }
    Ok(())
}

/// Batch k-NN: fan the query file across `threads` workers via
/// `sr-exec`. Output rows are `qidx <TAB> id <TAB> dist`, in input
/// order regardless of thread count.
fn run_knn_batch(
    store: &AnyStore,
    batch_path: &std::path::Path,
    k: usize,
    threads: usize,
    trace: bool,
    json: bool,
    out: &mut dyn Write,
) -> Result<(), CmdError> {
    let queries: Vec<Vec<f32>> = read_points(batch_path)
        .map_err(|e| e.to_string())?
        .into_iter()
        .map(|(p, _)| p.coords().to_vec())
        .collect();
    let n_queries = queries.len();
    let result = sr_exec::run_knn_batch(store.index(), &queries, k, threads)
        .map_err(|e| CmdError::Failure(format!("{}: {e}", batch_path.display())))?;
    let cap = store.pager().cache_capacity();
    let total: usize = result.results.iter().map(Vec::len).sum();
    let e = |err: std::io::Error| CmdError::Failure(err.to_string());
    if json {
        let per_query: Vec<String> = result
            .results
            .iter()
            .map(|hits| {
                let pairs: Vec<(u64, f64)> =
                    hits.iter().map(|n| (n.data, n.dist2.sqrt())).collect();
                results_json(&pairs)
            })
            .collect();
        let trace_field = if trace {
            format!(
                ",\"trace\":{}",
                batch_trace_json(
                    total,
                    result.threads,
                    n_queries,
                    &result.metrics,
                    &result.io,
                    cap
                )
            )
        } else {
            String::new()
        };
        writeln!(
            out,
            "{{{},\"cmd\":\"knn_batch\",\"queries\":{n_queries},\"threads\":{},\
             \"results\":[{}]{trace_field}}}",
            sr_obs::schema_version_field(),
            result.threads,
            per_query.join(","),
        )
        .map_err(e)?;
    } else {
        for (qidx, hits) in result.results.iter().enumerate() {
            for n in hits {
                writeln!(out, "{qidx}\t{}\t{}", n.data, n.dist2.sqrt()).map_err(e)?;
            }
        }
        if trace {
            // Keep stdout parseable: the trace line goes to stderr.
            eprintln!(
                "{}",
                batch_trace_json(
                    total,
                    result.threads,
                    n_queries,
                    &result.metrics,
                    &result.io,
                    cap
                )
            );
        }
    }
    Ok(())
}

/// Execute a parsed command, writing output to `out`.
pub fn run(cmd: Command, out: &mut dyn Write) -> Result<(), CmdError> {
    match cmd {
        Command::Gen {
            kind,
            n,
            dim,
            seed,
            clusters,
            out: path,
        } => {
            let points: Vec<Point> = match kind {
                GenKind::Uniform => uniform(n, dim, seed),
                GenKind::Histogram => real_sim(n, dim, seed),
                GenKind::Cluster => {
                    let per = (n / clusters.max(1)).max(1);
                    cluster(
                        ClusterSpec {
                            clusters: clusters.max(1),
                            points_per_cluster: per,
                            max_radius: 0.1,
                        },
                        dim,
                        seed,
                    )
                }
            };
            let with_ids: Vec<(Point, u64)> = points
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, i as u64))
                .collect();
            write_points(&path, &with_ids).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} points ({dim}-d) to {}",
                with_ids.len(),
                path.display()
            )
            .map_err(|e| CmdError::Failure(e.to_string()))
        }
        Command::Build {
            index,
            dim,
            index_path,
            data_path,
        } => {
            let points = read_points(&data_path).map_err(|e| e.to_string())?;
            if let Some((p, _)) = points.first() {
                if p.dim() != dim {
                    return Err(CmdError::Usage(format!(
                        "--dim {dim} but {} has {}-d points",
                        data_path.display(),
                        p.dim()
                    )));
                }
            }
            let n = points.len();
            let store = AnyStore::build(index, &index_path, dim, points)?;
            let (_, len, height) = store.summary();
            writeln!(
                out,
                "built {} at {}: {n} points loaded, {len} stored, height {height}",
                store.kind_name(),
                index_path.display()
            )
            .map_err(|e| CmdError::Failure(e.to_string()))
        }
        Command::Insert {
            index_path,
            data_path,
        } => {
            let points = read_points(&data_path).map_err(|e| e.to_string())?;
            let n = points.len();
            let mut store = AnyStore::open(&index_path)?;
            // Same typed requests the server executes, one per point.
            for (p, id) in &points {
                let req = Request::Insert {
                    point: p.coords().to_vec(),
                    data: *id,
                };
                match sr_wire::execute(&req, store.index_mut(), &sr_obs::Noop) {
                    Response::Ack { .. } => {}
                    Response::Error(RemoteError::Unsupported(_)) => {
                        return Err(CmdError::Failure(
                            "the VAMSplit R-tree is static: rebuild it with `srtool build`"
                                .to_string(),
                        ))
                    }
                    Response::Error(e) => return Err(CmdError::Failure(e.to_string())),
                    other => {
                        return Err(CmdError::Failure(format!(
                            "insert returned a non-ack response: {other:?}"
                        )))
                    }
                }
            }
            store
                .index()
                .flush()
                .map_err(|e| CmdError::Failure(e.to_string()))?;
            let (_, len, height) = store.summary();
            writeln!(
                out,
                "inserted {n} points; index now holds {len}, height {height}"
            )
            .map_err(|e| CmdError::Failure(e.to_string()))
        }
        Command::Knn {
            index_path,
            k,
            query,
            batch,
            threads,
            trace,
            json,
        } => {
            let store = AnyStore::open(&index_path)?;
            if let Some(batch_path) = batch {
                return run_knn_batch(&store, &batch_path, k, threads, trace, json, out);
            }
            let query = query.ok_or_else(|| CmdError::Usage("missing --query".into()))?;
            let k = u32::try_from(k)
                .map_err(|_| CmdError::Usage(format!("--k {k} exceeds the wire limit")))?;
            run_query(&store, "knn", trace, json, out, |rec| {
                let req = Request::Knn {
                    query: query.clone(),
                    k,
                };
                response_rows(sr_wire::execute_read(&req, store.index(), rec))
            })
        }
        Command::Range {
            index_path,
            radius,
            query,
            trace,
            json,
        } => {
            let store = AnyStore::open(&index_path)?;
            run_query(&store, "range", trace, json, out, |rec| {
                let req = Request::Range {
                    query: query.clone(),
                    radius,
                };
                response_rows(sr_wire::execute_read(&req, store.index(), rec))
            })
        }
        Command::Stats { index_path, json } => {
            let store = AnyStore::open(&index_path)?;
            let (dim, len, height) = store.summary();
            let io = store.pager().stats();
            let cap = store.pager().cache_capacity();
            let page_size = store.pager().page_size();
            let ws = store.pager().wal_stats();
            let e = |err: std::io::Error| CmdError::Failure(err.to_string());
            if json {
                // Same document a served Stats request answers with
                // (minus the service-lifetime "metrics" member).
                writeln!(out, "{}", sr_wire::stats_json(store.index())).map_err(e)
            } else {
                writeln!(
                    out,
                    "{}: {len} points, {dim} dimensions, height {height}",
                    store.kind_name()
                )
                .map_err(e)?;
                writeln!(out, "pager: {page_size} B pages, buffer pool {cap} pages").map_err(e)?;
                let hit_rate = io
                    .cache_hit_rate()
                    .map_or_else(|| "n/a".to_string(), |r| format!("{:.1}%", r * 100.0));
                writeln!(
                    out,
                    "io since open: {} tree reads ({} node, {} leaf), \
                     {} physical reads, cache {} hits / {} misses / {} evictions \
                     (hit rate {hit_rate})",
                    io.tree_reads(),
                    io.logical_reads(PageKind::Node),
                    io.logical_reads(PageKind::Leaf),
                    io.physical_reads(),
                    io.cache_hits(),
                    io.cache_misses(),
                    io.cache_evictions(),
                )
                .map_err(e)?;
                writeln!(
                    out,
                    "wal: {} B, {} frames appended, {} commits, {} truncations, \
                     {} replays ({} frames reapplied, {} dropped, {} torn tails)",
                    ws.wal_bytes,
                    ws.frames_appended,
                    ws.commits,
                    ws.truncations,
                    ws.replays,
                    ws.replayed_frames,
                    ws.dropped_frames,
                    ws.torn_tails,
                )
                .map_err(e)
            }
        }
        Command::Verify { index_path } => {
            let store = AnyStore::open(&index_path)?;
            let summary = store.verify()?;
            writeln!(out, "{} OK: {summary}", store.kind_name())
                .map_err(|e| CmdError::Failure(e.to_string()))
        }
        Command::Fuzz {
            seed,
            ops,
            dim,
            dist,
            page_size,
            verify_every,
        } => {
            let spec = WorkloadSpec::standard(ops, dim, dist);
            let tape = generate(&spec, seed);
            let cfg = DiffConfig {
                page_size,
                verify_every,
                ..DiffConfig::default()
            };
            match run_tape(&tape, &cfg) {
                Ok(r) => writeln!(
                    out,
                    "fuzz OK: {} ops over {} {dim}-d data (seed {seed:#x}): \
                     {} inserts, {} deletes, {} knn, {} range, \
                     {} verify sweeps, {} live at end",
                    r.ops,
                    dist.name(),
                    r.inserts,
                    r.deletes,
                    r.knns,
                    r.ranges,
                    r.verifies,
                    r.final_live
                )
                .map_err(|e| CmdError::Failure(e.to_string())),
                Err(d) => {
                    // Nonzero exit with the minimized reproduction in
                    // the error text, same shape the tier-1 tests print.
                    let minimized = minimize(&tape, &cfg, 60);
                    Err(CmdError::Failure(failure_report(&tape, &minimized, &d)))
                }
            }
        }
        Command::Lint {
            json,
            root,
            rule,
            stats,
        } => {
            let root = root
                .or_else(|| {
                    let cwd = std::env::current_dir().ok()?;
                    sr_lint::find_workspace_root(&cwd)
                })
                .ok_or_else(|| "no workspace root found (pass --root)".to_string())?;
            let started = std::time::Instant::now();
            let mut report = sr_lint::lint_workspace(&root).map_err(|e| e.to_string())?;
            let elapsed_ms = started.elapsed().as_millis();
            if let Some(r) = &rule {
                report.retain_rule(r);
            }
            if json {
                write!(out, "{}", report.to_json()).map_err(|e| e.to_string())?;
            } else {
                for d in &report.diagnostics {
                    writeln!(out, "{d}").map_err(|e| e.to_string())?;
                }
                writeln!(
                    out,
                    "srlint: {} violation(s), {} escape hatch(es) in use",
                    report.diagnostics.len(),
                    report.hatches_used
                )
                .map_err(|e| e.to_string())?;
            }
            if stats {
                let per_rule: Vec<String> = report
                    .family_counts()
                    .iter()
                    .filter(|(_, n)| *n > 0)
                    .map(|(fam, n)| format!("{fam}={n}"))
                    .collect();
                let findings = if per_rule.is_empty() {
                    "none".to_string()
                } else {
                    per_rule.join(" ")
                };
                writeln!(
                    out,
                    "srlint-stats: files={} findings: {} elapsed_ms={}",
                    report.files_scanned, findings, elapsed_ms
                )
                .map_err(|e| e.to_string())?;
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(CmdError::Failure(format!(
                    "srlint found {} violation(s)",
                    report.diagnostics.len()
                )))
            }
        }
        Command::Serve {
            index_path,
            addr,
            threads,
            max_conns,
            max_batch,
        } => {
            let store = AnyStore::open(&index_path)?;
            let kind = store.kind_name();
            let (_, len, _) = store.summary();
            let cfg = sr_serve::ServeConfig {
                addr,
                threads,
                max_conns,
                max_batch,
                max_body: sr_wire::DEFAULT_MAX_BODY,
            };
            let server = sr_serve::Server::start(store.into_index(), cfg)
                .map_err(|e| CmdError::Failure(e.to_string()))?;
            // One parseable line, flushed before blocking, so scripts
            // (and the CI smoke job) can discover the bound port.
            writeln!(
                out,
                "listening on {} ({kind}, {len} points)",
                server.local_addr()
            )
            .map_err(|e| CmdError::Failure(e.to_string()))?;
            out.flush().map_err(|e| CmdError::Failure(e.to_string()))?;
            server.wait().map_err(|e| CmdError::Failure(e.to_string()))
        }
        Command::Client { addr, op } => run_client(&addr, op, out),
        Command::Help => writeln!(out, "{HELP}").map_err(|e| CmdError::Failure(e.to_string())),
    }
}

/// Run one `srtool client` operation against a serving `srtool serve`.
/// Every failure on or en route to the server is [`CmdError::Remote`]
/// (exit 3).
fn run_client(addr: &str, op: ClientOp, out: &mut dyn Write) -> Result<(), CmdError> {
    let remote = |e: sr_serve::ServeError| CmdError::Remote(e.to_string());
    let io_err = |e: std::io::Error| CmdError::Failure(e.to_string());
    let mut client = sr_serve::Client::connect(addr).map_err(remote)?;
    match op {
        ClientOp::Ping => {
            client.ping().map_err(remote)?;
            writeln!(out, "pong").map_err(io_err)
        }
        ClientOp::Knn { query, k, batch } => {
            if let Some(batch_path) = batch {
                let queries: Vec<Vec<f32>> = read_points(&batch_path)
                    .map_err(|e| e.to_string())?
                    .into_iter()
                    .map(|(p, _)| p.coords().to_vec())
                    .collect();
                let reqs: Vec<Request> = queries
                    .into_iter()
                    .map(|query| Request::Knn { query, k })
                    .collect();
                // Pipelined: the server coalesces the whole run into
                // one sr-exec batch. Output matches offline
                // `srtool knn --batch` byte for byte.
                let resps = client.pipeline(&reqs).map_err(remote)?;
                for (qidx, resp) in resps.iter().enumerate() {
                    match resp {
                        Response::Rows(rows) => {
                            for r in rows {
                                writeln!(out, "{qidx}\t{}\t{}", r.data, r.dist).map_err(io_err)?;
                            }
                        }
                        Response::Error(e) => return Err(CmdError::Remote(e.to_string())),
                        other => {
                            return Err(CmdError::Remote(format!("unexpected response: {other:?}")))
                        }
                    }
                }
                Ok(())
            } else {
                let query = query.ok_or_else(|| CmdError::Usage("missing --query".into()))?;
                let rows = client.knn(&query, k).map_err(remote)?;
                for r in rows {
                    writeln!(out, "{}\t{}", r.data, r.dist).map_err(io_err)?;
                }
                Ok(())
            }
        }
        ClientOp::Range { query, radius } => {
            let rows = client.range(&query, radius).map_err(remote)?;
            for r in rows {
                writeln!(out, "{}\t{}", r.data, r.dist).map_err(io_err)?;
            }
            Ok(())
        }
        ClientOp::Insert { data_path } => {
            let points = read_points(&data_path).map_err(|e| e.to_string())?;
            let n = points.len();
            for (p, id) in &points {
                client.insert(p.coords(), *id).map_err(remote)?;
            }
            writeln!(out, "inserted {n} points").map_err(io_err)
        }
        ClientOp::Stats => {
            let json = client.stats().map_err(remote)?;
            writeln!(out, "{json}").map_err(io_err)
        }
        ClientOp::Shutdown => {
            client.shutdown().map_err(remote)?;
            writeln!(out, "server shutting down").map_err(io_err)
        }
    }
}
