//! Command execution.

use std::io::Write;

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec};
use sr_geometry::Point;
use sr_testkit::{failure_report, generate, minimize, run_tape, DiffConfig, WorkloadSpec};

use crate::args::{Command, GenKind};
use crate::data::{read_points, write_points};
use crate::store::AnyStore;

/// Execute a parsed command, writing output to `out`.
pub fn run(cmd: Command, out: &mut dyn Write) -> Result<(), String> {
    match cmd {
        Command::Gen {
            kind,
            n,
            dim,
            seed,
            clusters,
            out: path,
        } => {
            let points: Vec<Point> = match kind {
                GenKind::Uniform => uniform(n, dim, seed),
                GenKind::Histogram => real_sim(n, dim, seed),
                GenKind::Cluster => {
                    let per = (n / clusters.max(1)).max(1);
                    cluster(
                        ClusterSpec {
                            clusters: clusters.max(1),
                            points_per_cluster: per,
                            max_radius: 0.1,
                        },
                        dim,
                        seed,
                    )
                }
            };
            let with_ids: Vec<(Point, u64)> = points
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, i as u64))
                .collect();
            write_points(&path, &with_ids).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "wrote {} points ({dim}-d) to {}",
                with_ids.len(),
                path.display()
            )
            .map_err(|e| e.to_string())
        }
        Command::Build {
            index,
            dim,
            index_path,
            data_path,
        } => {
            let points = read_points(&data_path).map_err(|e| e.to_string())?;
            if let Some((p, _)) = points.first() {
                if p.dim() != dim {
                    return Err(format!(
                        "--dim {dim} but {} has {}-d points",
                        data_path.display(),
                        p.dim()
                    ));
                }
            }
            let n = points.len();
            let store = AnyStore::build(index, &index_path, dim, points)?;
            let (_, len, height) = store.summary();
            writeln!(
                out,
                "built {} at {}: {n} points loaded, {len} stored, height {height}",
                store.kind_name(),
                index_path.display()
            )
            .map_err(|e| e.to_string())
        }
        Command::Insert {
            index_path,
            data_path,
        } => {
            let points = read_points(&data_path).map_err(|e| e.to_string())?;
            let n = points.len();
            let mut store = AnyStore::open(&index_path)?;
            store.insert(points)?;
            let (_, len, height) = store.summary();
            writeln!(
                out,
                "inserted {n} points; index now holds {len}, height {height}"
            )
            .map_err(|e| e.to_string())
        }
        Command::Knn {
            index_path,
            k,
            query,
        } => {
            let store = AnyStore::open(&index_path)?;
            let hits = store.knn(&query, k)?;
            for (id, dist) in hits {
                writeln!(out, "{id}\t{dist}").map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Range {
            index_path,
            radius,
            query,
        } => {
            let store = AnyStore::open(&index_path)?;
            let hits = store.range(&query, radius)?;
            for (id, dist) in hits {
                writeln!(out, "{id}\t{dist}").map_err(|e| e.to_string())?;
            }
            Ok(())
        }
        Command::Stats { index_path } => {
            let store = AnyStore::open(&index_path)?;
            let (dim, len, height) = store.summary();
            writeln!(
                out,
                "{}: {len} points, {dim} dimensions, height {height}",
                store.kind_name()
            )
            .map_err(|e| e.to_string())
        }
        Command::Verify { index_path } => {
            let store = AnyStore::open(&index_path)?;
            let summary = store.verify()?;
            writeln!(out, "{} OK: {summary}", store.kind_name()).map_err(|e| e.to_string())
        }
        Command::Fuzz {
            seed,
            ops,
            dim,
            dist,
            page_size,
            verify_every,
        } => {
            let spec = WorkloadSpec::standard(ops, dim, dist);
            let tape = generate(&spec, seed);
            let cfg = DiffConfig {
                page_size,
                verify_every,
                ..DiffConfig::default()
            };
            match run_tape(&tape, &cfg) {
                Ok(r) => writeln!(
                    out,
                    "fuzz OK: {} ops over {} {dim}-d data (seed {seed:#x}): \
                     {} inserts, {} deletes, {} knn, {} range, \
                     {} verify sweeps, {} live at end",
                    r.ops,
                    dist.name(),
                    r.inserts,
                    r.deletes,
                    r.knns,
                    r.ranges,
                    r.verifies,
                    r.final_live
                )
                .map_err(|e| e.to_string()),
                Err(d) => {
                    // Nonzero exit with the minimized reproduction in
                    // the error text, same shape the tier-1 tests print.
                    let minimized = minimize(&tape, &cfg, 60);
                    Err(failure_report(&tape, &minimized, &d))
                }
            }
        }
        Command::Lint { json, root } => {
            let root = root
                .or_else(|| {
                    let cwd = std::env::current_dir().ok()?;
                    sr_lint::find_workspace_root(&cwd)
                })
                .ok_or_else(|| "no workspace root found (pass --root)".to_string())?;
            let report = sr_lint::lint_workspace(&root).map_err(|e| e.to_string())?;
            if json {
                write!(out, "{}", report.to_json()).map_err(|e| e.to_string())?;
            } else {
                for d in &report.diagnostics {
                    writeln!(out, "{d}").map_err(|e| e.to_string())?;
                }
                writeln!(
                    out,
                    "srlint: {} violation(s), {} escape hatch(es) in use",
                    report.diagnostics.len(),
                    report.hatches_used
                )
                .map_err(|e| e.to_string())?;
            }
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "srlint found {} violation(s)",
                    report.diagnostics.len()
                ))
            }
        }
    }
}
