//! Hand-rolled argument parsing (the workspace's dependency policy
//! admits no CLI framework; the grammar is small enough not to need
//! one).
//!
//! Every way user input can be malformed maps to a variant of
//! [`ArgError`]; the binary prints the error plus the usage banner and
//! exits non-zero.

use std::fmt;
use std::path::PathBuf;

use sr_testkit::DataDist;

/// The usage banner printed alongside argument errors.
pub const USAGE: &str =
    "usage: srtool <gen|build|insert|knn|range|stats|verify|serve|client|fuzz|lint> ...\n\
     see `srtool --help`";

/// The `srtool --help` text: command grammar plus the exit-code
/// taxonomy scripts rely on.
pub const HELP: &str = "\
srtool — build, query, and serve SR-tree-family index files

  srtool gen     --kind uniform|cluster|histogram --n 10000 --dim 16 --seed 7 out.tsv
  srtool build   --index sr|ss|rstar|kdb|vam --dim 16 index.pages data.tsv
  srtool insert  index.pages data.tsv
  srtool knn     index.pages --k 21 --query 0.1,0.2,...  (or --batch q.tsv --threads 8)
  srtool range   index.pages --radius 0.5 --query 0.1,0.2,...
  srtool stats   index.pages [--json]
  srtool verify  index.pages
  srtool serve   index.pages [--addr 127.0.0.1:7878] [--threads 4]
                 [--max-conns 64] [--max-batch 128]
  srtool client  ping|knn|range|insert|stats|shutdown --addr HOST:PORT
                 [--k N] [--query v,..] [--batch q.tsv] [--radius R] [--data d.tsv]
  srtool fuzz    --seed 0xd1ff0001 --ops 2000 --dim 8 --dist uniform|cluster|real
  srtool lint    [--json] [--root <workspace-root>] [--rule <id>] [--stats]

Data files are TSV: one point per line, `id <TAB> c0 <TAB> c1 ...`.

`serve` answers typed wire requests over TCP until a `shutdown`
request arrives; it then drains in-flight connections and flushes, so
the index reopens with zero WAL replays. Connections past --max-conns
are answered with a typed `overloaded` error, never silently dropped.

exit codes:
  0  success
  1  execution failure (bad data file, corrupt index, lint findings)
  2  usage error (malformed arguments or semantically invalid input)
  3  remote error (`client` could not reach the server, or the server
     answered with a typed error such as overloaded)";

/// A malformed `srtool` invocation. Each variant pinpoints the flag or
/// argument at fault so the message tells the user what to fix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A flag's value failed to parse or is out of range.
    BadValue { flag: &'static str, detail: String },
    /// A required flag was not given.
    MissingFlag(&'static str),
    /// A flag appeared twice.
    DuplicateFlag(&'static str),
    /// A flag was given with no value after it.
    MissingValue(&'static str),
    /// Wrong number of positional arguments.
    WrongPositionals { want: usize, got: usize },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given"),
            ArgError::UnknownCommand(cmd) => write!(f, "unknown command {cmd:?}"),
            ArgError::BadValue { flag, detail } => write!(f, "bad {flag}: {detail}"),
            ArgError::MissingFlag(flag) => write!(f, "missing {flag}"),
            ArgError::DuplicateFlag(flag) => write!(f, "{flag} given twice"),
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::WrongPositionals { want, got } => {
                write!(f, "expected {want} positional argument(s), got {got}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Which index structure a command targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// The SR-tree (default).
    Sr,
    /// The SS-tree.
    Ss,
    /// The R\*-tree.
    Rstar,
    /// The K-D-B-tree.
    Kdb,
    /// The static VAMSplit R-tree.
    Vam,
}

impl IndexKind {
    fn from_str(s: &str) -> Result<Self, ArgError> {
        match s {
            "sr" => Ok(IndexKind::Sr),
            "ss" => Ok(IndexKind::Ss),
            "rstar" | "r*" => Ok(IndexKind::Rstar),
            "kdb" => Ok(IndexKind::Kdb),
            "vam" => Ok(IndexKind::Vam),
            other => Err(ArgError::BadValue {
                flag: "--index",
                detail: format!("unknown index kind {other:?} (sr|ss|rstar|kdb|vam)"),
            }),
        }
    }
}

/// Which synthetic data set `gen` produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenKind {
    /// Uniform in the unit cube (§3.1).
    Uniform,
    /// The §5.4 cluster data set.
    Cluster,
    /// Simulated color histograms (the "real data set" stand-in).
    Histogram,
}

impl GenKind {
    fn from_str(s: &str) -> Result<Self, ArgError> {
        match s {
            "uniform" => Ok(GenKind::Uniform),
            "cluster" => Ok(GenKind::Cluster),
            "histogram" | "real" => Ok(GenKind::Histogram),
            other => Err(ArgError::BadValue {
                flag: "--kind",
                detail: format!("unknown data kind {other:?} (uniform|cluster|histogram)"),
            }),
        }
    }
}

/// A fully parsed srtool invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a TSV data file.
    Gen {
        kind: GenKind,
        n: usize,
        dim: usize,
        seed: u64,
        clusters: usize,
        out: PathBuf,
    },
    /// Create an index file and load a TSV into it.
    Build {
        index: IndexKind,
        dim: usize,
        index_path: PathBuf,
        data_path: PathBuf,
    },
    /// Insert a TSV into an existing (dynamic) index.
    Insert {
        index_path: PathBuf,
        data_path: PathBuf,
    },
    /// k-nearest-neighbor query — one `--query` vector, or a `--batch`
    /// file of query vectors fanned across `--threads` workers.
    Knn {
        index_path: PathBuf,
        k: usize,
        /// Single query vector (`--query`); exclusive with `batch`.
        query: Option<Vec<f32>>,
        /// TSV file of query vectors (`--batch`); exclusive with `query`.
        batch: Option<PathBuf>,
        /// Worker threads for batch mode (>= 1; ignored with `--query`).
        threads: usize,
        /// Emit a per-query metrics line (expansions, prune breakdown,
        /// I/O window) after the results.
        trace: bool,
        /// Machine-readable output: one JSON object instead of TSV rows.
        json: bool,
    },
    /// Range query.
    Range {
        index_path: PathBuf,
        radius: f64,
        query: Vec<f32>,
        trace: bool,
        json: bool,
    },
    /// Print index metadata, parameters, and I/O statistics.
    Stats { index_path: PathBuf, json: bool },
    /// Run the structural-invariant checker.
    Verify { index_path: PathBuf },
    /// Replay a differential-fuzz op tape (opt-in; this is the replay
    /// side of the `SEED=` lines the tier-1 fuzz tests print).
    Fuzz {
        seed: u64,
        ops: usize,
        dim: usize,
        dist: DataDist,
        page_size: usize,
        verify_every: usize,
    },
    /// Run the srlint static-analysis pass over the workspace.
    Lint {
        json: bool,
        root: Option<PathBuf>,
        /// Keep only one family (`L7`) or exact rule (`L7/unguarded-access`).
        rule: Option<String>,
        /// Append a one-line run summary (files, findings, elapsed ms).
        stats: bool,
    },
    /// Serve an index over TCP until a `shutdown` request drains it.
    Serve {
        index_path: PathBuf,
        /// Listen address (port 0 picks an ephemeral port).
        addr: String,
        /// Worker threads per coalesced query batch.
        threads: usize,
        /// Admission cap: the next connection past this gets a typed
        /// `overloaded` error.
        max_conns: usize,
        /// Most pipelined requests coalesced per batch round.
        max_batch: usize,
    },
    /// Drive a running `serve` instance.
    Client {
        /// Server address, `HOST:PORT`.
        addr: String,
        op: ClientOp,
    },
    /// Print the command grammar and exit-code taxonomy.
    Help,
}

/// One `srtool client` operation.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientOp {
    /// Liveness round-trip.
    Ping,
    /// k-NN — one `--query` vector or a pipelined `--batch` file.
    Knn {
        query: Option<Vec<f32>>,
        k: u32,
        batch: Option<PathBuf>,
    },
    /// Range query.
    Range { query: Vec<f32>, radius: f64 },
    /// Insert a TSV of points.
    Insert { data_path: PathBuf },
    /// Fetch the service stats JSON document.
    Stats,
    /// Ask the server to drain, flush, and exit.
    Shutdown,
}

/// Parse `argv[1..]`.
pub fn parse(args: &[String]) -> Result<Command, ArgError> {
    let mut it = args.iter().map(|s| s.as_str());
    let verb = it.next().ok_or(ArgError::MissingCommand)?;
    let rest: Vec<&str> = it.collect();
    match verb {
        "gen" => parse_gen(&rest),
        "build" => parse_build(&rest),
        "insert" => {
            let pos = positionals(&rest, 2)?;
            Ok(Command::Insert {
                index_path: pos[0].into(),
                data_path: pos[1].into(),
            })
        }
        "knn" => {
            let pos = positionals(&rest, 1)?;
            let k: usize = flag(&rest, "--k")?
                .unwrap_or("21")
                .parse()
                .map_err(bad("--k"))?;
            let query = flag(&rest, "--query")?.map(parse_query).transpose()?;
            let batch = flag(&rest, "--batch")?.map(PathBuf::from);
            match (&query, &batch) {
                (None, None) => return Err(ArgError::MissingFlag("--query")),
                (Some(_), Some(_)) => {
                    return Err(ArgError::BadValue {
                        flag: "--batch",
                        detail: "exclusive with --query: give one or the other".into(),
                    })
                }
                _ => {}
            }
            let threads: usize = flag(&rest, "--threads")?
                .unwrap_or("1")
                .parse()
                .map_err(bad("--threads"))?;
            if threads == 0 {
                return Err(ArgError::BadValue {
                    flag: "--threads",
                    detail: "must be at least 1".into(),
                });
            }
            Ok(Command::Knn {
                index_path: pos[0].into(),
                k,
                query,
                batch,
                threads,
                trace: bool_flag(&rest, "--trace")?,
                json: bool_flag(&rest, "--json")?,
            })
        }
        "range" => {
            let pos = positionals(&rest, 1)?;
            let radius: f64 = flag(&rest, "--radius")?
                .ok_or(ArgError::MissingFlag("--radius"))?
                .parse()
                .map_err(bad("--radius"))?;
            // Reject at parse time so a bad radius is a usage error
            // (exit 2), matching the trees' TreeError::InvalidRadius.
            if radius.is_nan() || radius < 0.0 {
                return Err(ArgError::BadValue {
                    flag: "--radius",
                    detail: format!("{radius} must be non-negative"),
                });
            }
            Ok(Command::Range {
                index_path: pos[0].into(),
                radius,
                query: parse_query(
                    flag(&rest, "--query")?.ok_or(ArgError::MissingFlag("--query"))?,
                )?,
                trace: bool_flag(&rest, "--trace")?,
                json: bool_flag(&rest, "--json")?,
            })
        }
        "stats" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Stats {
                index_path: pos[0].into(),
                json: bool_flag(&rest, "--json")?,
            })
        }
        "verify" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Verify {
                index_path: pos[0].into(),
            })
        }
        "serve" => parse_serve(&rest),
        "client" => parse_client(&rest),
        "--help" | "-h" | "help" => Ok(Command::Help),
        "fuzz" => parse_fuzz(&rest),
        "lint" => {
            let mut json = false;
            let mut stats = false;
            let mut root = None;
            let mut rule = None;
            let mut i = 0;
            while i < rest.len() {
                match rest[i] {
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--stats" => {
                        stats = true;
                        i += 1;
                    }
                    "--root" => {
                        let v = rest.get(i + 1).ok_or(ArgError::MissingValue("--root"))?;
                        root = Some(PathBuf::from(v));
                        i += 2;
                    }
                    "--rule" => {
                        let v = rest.get(i + 1).ok_or(ArgError::MissingValue("--rule"))?;
                        let family = v.split('/').next().unwrap_or("");
                        if !sr_lint::RULE_FAMILIES.contains(&family) {
                            return Err(ArgError::BadValue {
                                flag: "--rule",
                                detail: format!(
                                    "{v:?} names no rule family (expected one of {})",
                                    sr_lint::RULE_FAMILIES.join(", ")
                                ),
                            });
                        }
                        rule = Some((*v).to_string());
                        i += 2;
                    }
                    other => {
                        return Err(ArgError::BadValue {
                            flag: "lint",
                            detail: format!(
                                "unknown argument {other:?} (--json, --root <dir>, --rule <id>, \
                                 --stats)"
                            ),
                        })
                    }
                }
            }
            Ok(Command::Lint {
                json,
                root,
                rule,
                stats,
            })
        }
        other => Err(ArgError::UnknownCommand(other.to_string())),
    }
}

fn parse_gen(rest: &[&str]) -> Result<Command, ArgError> {
    let pos = positionals(rest, 1)?;
    Ok(Command::Gen {
        kind: GenKind::from_str(flag(rest, "--kind")?.unwrap_or("uniform"))?,
        n: flag(rest, "--n")?
            .unwrap_or("10000")
            .parse()
            .map_err(bad("--n"))?,
        dim: flag(rest, "--dim")?
            .unwrap_or("16")
            .parse()
            .map_err(bad("--dim"))?,
        seed: flag(rest, "--seed")?
            .unwrap_or("42")
            .parse()
            .map_err(bad("--seed"))?,
        clusters: flag(rest, "--clusters")?
            .unwrap_or("100")
            .parse()
            .map_err(bad("--clusters"))?,
        out: pos[0].into(),
    })
}

fn parse_build(rest: &[&str]) -> Result<Command, ArgError> {
    let pos = positionals(rest, 2)?;
    Ok(Command::Build {
        index: IndexKind::from_str(flag(rest, "--index")?.unwrap_or("sr"))?,
        dim: flag(rest, "--dim")?
            .unwrap_or("16")
            .parse()
            .map_err(bad("--dim"))?,
        index_path: pos[0].into(),
        data_path: pos[1].into(),
    })
}

fn parse_serve(rest: &[&str]) -> Result<Command, ArgError> {
    let pos = positionals(rest, 1)?;
    let threads: usize = flag(rest, "--threads")?
        .unwrap_or("4")
        .parse()
        .map_err(bad("--threads"))?;
    if threads == 0 {
        return Err(ArgError::BadValue {
            flag: "--threads",
            detail: "must be at least 1".into(),
        });
    }
    let max_conns: usize = flag(rest, "--max-conns")?
        .unwrap_or("64")
        .parse()
        .map_err(bad("--max-conns"))?;
    if max_conns == 0 {
        return Err(ArgError::BadValue {
            flag: "--max-conns",
            detail: "must be at least 1".into(),
        });
    }
    let max_batch: usize = flag(rest, "--max-batch")?
        .unwrap_or("128")
        .parse()
        .map_err(bad("--max-batch"))?;
    if max_batch == 0 {
        return Err(ArgError::BadValue {
            flag: "--max-batch",
            detail: "must be at least 1".into(),
        });
    }
    Ok(Command::Serve {
        index_path: pos[0].into(),
        addr: flag(rest, "--addr")?
            .unwrap_or("127.0.0.1:7878")
            .to_string(),
        threads,
        max_conns,
        max_batch,
    })
}

fn parse_client(rest: &[&str]) -> Result<Command, ArgError> {
    let pos = positionals(rest, 1)?;
    let addr = flag(rest, "--addr")?
        .ok_or(ArgError::MissingFlag("--addr"))?
        .to_string();
    let op = match pos[0] {
        "ping" => ClientOp::Ping,
        "knn" => {
            let k: u32 = flag(rest, "--k")?
                .unwrap_or("21")
                .parse()
                .map_err(bad("--k"))?;
            let query = flag(rest, "--query")?.map(parse_query).transpose()?;
            let batch = flag(rest, "--batch")?.map(PathBuf::from);
            match (&query, &batch) {
                (None, None) => return Err(ArgError::MissingFlag("--query")),
                (Some(_), Some(_)) => {
                    return Err(ArgError::BadValue {
                        flag: "--batch",
                        detail: "exclusive with --query: give one or the other".into(),
                    })
                }
                _ => {}
            }
            ClientOp::Knn { query, k, batch }
        }
        "range" => {
            let radius: f64 = flag(rest, "--radius")?
                .ok_or(ArgError::MissingFlag("--radius"))?
                .parse()
                .map_err(bad("--radius"))?;
            if radius.is_nan() || radius < 0.0 {
                return Err(ArgError::BadValue {
                    flag: "--radius",
                    detail: format!("{radius} must be non-negative"),
                });
            }
            ClientOp::Range {
                query: parse_query(
                    flag(rest, "--query")?.ok_or(ArgError::MissingFlag("--query"))?,
                )?,
                radius,
            }
        }
        "insert" => ClientOp::Insert {
            data_path: flag(rest, "--data")?
                .ok_or(ArgError::MissingFlag("--data"))?
                .into(),
        },
        "stats" => ClientOp::Stats,
        "shutdown" => ClientOp::Shutdown,
        other => {
            return Err(ArgError::BadValue {
                flag: "client",
                detail: format!(
                    "unknown operation {other:?} (ping|knn|range|insert|stats|shutdown)"
                ),
            })
        }
    };
    Ok(Command::Client { addr, op })
}

fn parse_fuzz(rest: &[&str]) -> Result<Command, ArgError> {
    positionals(rest, 0)?;
    let dist_s = flag(rest, "--dist")?.unwrap_or("uniform");
    let ops: usize = flag(rest, "--ops")?
        .unwrap_or("2000")
        .parse()
        .map_err(bad("--ops"))?;
    if ops == 0 {
        return Err(ArgError::BadValue {
            flag: "--ops",
            detail: "must be at least 1".into(),
        });
    }
    let dim: usize = flag(rest, "--dim")?
        .unwrap_or("8")
        .parse()
        .map_err(bad("--dim"))?;
    if !(1..=32).contains(&dim) {
        return Err(ArgError::BadValue {
            flag: "--dim",
            detail: format!("{dim} out of range (1..=32)"),
        });
    }
    let page_size: usize = flag(rest, "--page-size")?
        .unwrap_or("2048")
        .parse()
        .map_err(bad("--page-size"))?;
    // 2 KiB guarantees every structure can hold >= 2 entries per node
    // at the paper's 512-byte data areas up to --dim 32.
    if !(2048..=65536).contains(&page_size) {
        return Err(ArgError::BadValue {
            flag: "--page-size",
            detail: format!("{page_size} out of range (2048..=65536)"),
        });
    }
    Ok(Command::Fuzz {
        seed: parse_seed(flag(rest, "--seed")?.unwrap_or("42"))?,
        ops,
        dim,
        dist: DataDist::parse(dist_s).ok_or_else(|| ArgError::BadValue {
            flag: "--dist",
            detail: format!("unknown distribution {dist_s:?} (uniform|cluster|real)"),
        })?,
        page_size,
        verify_every: flag(rest, "--verify-every")?
            .unwrap_or("500")
            .parse()
            .map_err(bad("--verify-every"))?,
    })
}

/// A seed, decimal or `0x`-hex — the failure reports print hex, so the
/// replay line must round-trip both spellings.
fn parse_seed(s: &str) -> Result<u64, ArgError> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(bad("--seed"))
}

/// Flags that take no value (everything else is `--name value`).
const BOOL_FLAGS: &[&str] = &["--trace", "--json"];

/// Extract `--name value` from an argument slice.
fn flag<'a>(rest: &[&'a str], name: &'static str) -> Result<Option<&'a str>, ArgError> {
    let mut found = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == name {
            let v = rest.get(i + 1).ok_or(ArgError::MissingValue(name))?;
            if found.is_some() {
                return Err(ArgError::DuplicateFlag(name));
            }
            found = Some(*v);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(found)
}

/// Whether a valueless flag is present.
fn bool_flag(rest: &[&str], name: &'static str) -> Result<bool, ArgError> {
    match rest.iter().filter(|a| **a == name).count() {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ArgError::DuplicateFlag(name)),
    }
}

/// Non-flag arguments, validated for count.
fn positionals<'a>(rest: &[&'a str], want: usize) -> Result<Vec<&'a str>, ArgError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            // Boolean flags occupy one slot, valued flags two.
            i += if BOOL_FLAGS.contains(&rest[i]) { 1 } else { 2 };
        } else {
            out.push(rest[i]);
            i += 1;
        }
    }
    if out.len() != want {
        return Err(ArgError::WrongPositionals {
            want,
            got: out.len(),
        });
    }
    Ok(out)
}

fn parse_query(s: &str) -> Result<Vec<f32>, ArgError> {
    let coords: Result<Vec<f32>, _> = s.split(',').map(|c| c.trim().parse::<f32>()).collect();
    let coords = coords.map_err(bad("--query"))?;
    if coords.is_empty() {
        return Err(ArgError::BadValue {
            flag: "--query",
            detail: "empty query vector".into(),
        });
    }
    Ok(coords)
}

fn bad<E: fmt::Display>(flag: &'static str) -> impl Fn(E) -> ArgError {
    move |e| ArgError::BadValue {
        flag,
        detail: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, ArgError> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_gen_defaults() {
        let cmd = p(&["gen", "out.tsv"]).unwrap();
        match cmd {
            Command::Gen {
                kind, n, dim, seed, ..
            } => {
                assert_eq!(kind, GenKind::Uniform);
                assert_eq!((n, dim, seed), (10000, 16, 42));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_gen_with_flags() {
        let cmd = p(&[
            "gen",
            "--kind",
            "cluster",
            "--n",
            "500",
            "--dim",
            "8",
            "--clusters",
            "5",
            "x.tsv",
        ])
        .unwrap();
        match cmd {
            Command::Gen {
                kind,
                n,
                dim,
                clusters,
                out,
                ..
            } => {
                assert_eq!(kind, GenKind::Cluster);
                assert_eq!((n, dim, clusters), (500, 8, 5));
                assert_eq!(out, std::path::PathBuf::from("x.tsv"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_build() {
        let cmd = p(&["build", "--index", "ss", "--dim", "4", "i.pages", "d.tsv"]).unwrap();
        match cmd {
            Command::Build { index, dim, .. } => {
                assert_eq!(index, IndexKind::Ss);
                assert_eq!(dim, 4);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_knn_query_vector() {
        let cmd = p(&["knn", "i.pages", "--k", "5", "--query", "0.1, 0.2,0.3"]).unwrap();
        match cmd {
            Command::Knn {
                k,
                query,
                batch,
                threads,
                trace,
                json,
                ..
            } => {
                assert_eq!(k, 5);
                assert_eq!(query, Some(vec![0.1, 0.2, 0.3]));
                assert_eq!(batch, None);
                assert_eq!(threads, 1);
                assert!(!trace && !json);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_knn_batch_mode() {
        let cmd = p(&["knn", "i.pages", "--batch", "q.tsv", "--threads", "8"]).unwrap();
        match cmd {
            Command::Knn {
                query,
                batch,
                threads,
                ..
            } => {
                assert_eq!(query, None);
                assert_eq!(batch, Some(PathBuf::from("q.tsv")));
                assert_eq!(threads, 8);
            }
            _ => panic!("wrong command"),
        }
        // --query and --batch are mutually exclusive; one is required.
        assert!(matches!(
            p(&["knn", "i.pages", "--query", "1,2", "--batch", "q.tsv"]),
            Err(ArgError::BadValue {
                flag: "--batch",
                ..
            })
        ));
        assert_eq!(
            p(&["knn", "i.pages", "--threads", "4"]),
            Err(ArgError::MissingFlag("--query"))
        );
        assert!(matches!(
            p(&["knn", "i.pages", "--batch", "q.tsv", "--threads", "0"]),
            Err(ArgError::BadValue {
                flag: "--threads",
                ..
            })
        ));
    }

    #[test]
    fn parse_trace_and_json_flags() {
        // Boolean flags must not swallow the following argument — here
        // `--trace` sits directly before the positional path.
        let cmd = p(&["knn", "--trace", "i.pages", "--json", "--query", "1,2"]).unwrap();
        match cmd {
            Command::Knn {
                index_path,
                trace,
                json,
                ..
            } => {
                assert_eq!(index_path, PathBuf::from("i.pages"));
                assert!(trace && json);
            }
            _ => panic!("wrong command"),
        }
        assert_eq!(
            p(&["knn", "i.pages", "--trace", "--trace", "--query", "1"]),
            Err(ArgError::DuplicateFlag("--trace"))
        );
        match p(&["stats", "i.pages", "--json"]).unwrap() {
            Command::Stats { json, .. } => assert!(json),
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn negative_or_nan_radius_is_a_usage_error() {
        for r in ["-1", "-0.5", "NaN"] {
            assert!(
                matches!(
                    p(&["range", "i.pages", "--radius", r, "--query", "1,2"]),
                    Err(ArgError::BadValue {
                        flag: "--radius",
                        ..
                    })
                ),
                "radius {r} must be rejected at parse time"
            );
        }
        // Zero and +inf remain valid radii.
        assert!(p(&["range", "i.pages", "--radius", "0", "--query", "1"]).is_ok());
        assert!(p(&["range", "i.pages", "--radius", "inf", "--query", "1"]).is_ok());
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            p(&["knn", "i.pages"]),
            Err(ArgError::MissingFlag("--query"))
        );
        assert_eq!(
            p(&["frobnicate"]),
            Err(ArgError::UnknownCommand("frobnicate".to_string()))
        );
        assert_eq!(p(&[]), Err(ArgError::MissingCommand));
        assert_eq!(
            p(&["gen"]),
            Err(ArgError::WrongPositionals { want: 1, got: 0 })
        );
        assert!(matches!(
            p(&["build", "--index", "nope", "a", "b"]),
            Err(ArgError::BadValue {
                flag: "--index",
                ..
            })
        ));
        assert!(matches!(
            p(&["knn", "i.pages", "--query", "a,b"]),
            Err(ArgError::BadValue {
                flag: "--query",
                ..
            })
        ));
        assert_eq!(
            p(&["range", "i.pages", "--query", "1"]),
            Err(ArgError::MissingFlag("--radius"))
        );
        assert_eq!(
            p(&["knn", "i.pages", "--query"]),
            Err(ArgError::MissingValue("--query"))
        );
    }

    #[test]
    fn error_messages_name_the_flag() {
        let err = p(&["knn", "i.pages", "--k", "many", "--query", "1"]).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { flag: "--k", .. }));
        assert!(err.to_string().starts_with("bad --k:"), "{err}");
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert_eq!(
            p(&["gen", "--n", "1", "--n", "2", "o.tsv"]),
            Err(ArgError::DuplicateFlag("--n"))
        );
    }

    #[test]
    fn parse_lint() {
        assert_eq!(
            p(&["lint"]).unwrap(),
            Command::Lint {
                json: false,
                root: None,
                rule: None,
                stats: false,
            }
        );
        assert_eq!(
            p(&["lint", "--json", "--root", "/tmp/ws"]).unwrap(),
            Command::Lint {
                json: true,
                root: Some(PathBuf::from("/tmp/ws")),
                rule: None,
                stats: false,
            }
        );
        assert_eq!(
            p(&["lint", "--rule", "L7", "--stats"]).unwrap(),
            Command::Lint {
                json: false,
                root: None,
                rule: Some("L7".to_string()),
                stats: true,
            }
        );
        assert_eq!(
            p(&["lint", "--rule", "L7/unguarded-access"]).unwrap(),
            Command::Lint {
                json: false,
                root: None,
                rule: Some("L7/unguarded-access".to_string()),
                stats: false,
            }
        );
        assert!(p(&["lint", "--rule", "L9"]).is_err());
        assert!(p(&["lint", "--rule"]).is_err());
        assert!(p(&["lint", "--frobnicate"]).is_err());
    }

    #[test]
    fn parse_fuzz_defaults() {
        let cmd = p(&["fuzz"]).unwrap();
        match cmd {
            Command::Fuzz {
                seed,
                ops,
                dim,
                dist,
                page_size,
                verify_every,
            } => {
                assert_eq!((seed, ops, dim), (42, 2000, 8));
                assert_eq!(dist, DataDist::Uniform);
                assert_eq!((page_size, verify_every), (2048, 500));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_fuzz_replay_line_round_trips() {
        // Exactly the spelling `sr_testkit::seed_line` prints.
        let cmd = p(&[
            "fuzz",
            "--seed",
            "0xd1ff0002",
            "--ops",
            "2000",
            "--dim",
            "8",
            "--dist",
            "cluster",
        ])
        .unwrap();
        match cmd {
            Command::Fuzz {
                seed,
                ops,
                dim,
                dist,
                ..
            } => {
                assert_eq!((seed, ops, dim), (0xD1FF_0002, 2000, 8));
                assert_eq!(dist, DataDist::Clustered);
            }
            _ => panic!("wrong command"),
        }
        // Decimal seeds keep working too.
        assert!(matches!(
            p(&["fuzz", "--seed", "7"]).unwrap(),
            Command::Fuzz { seed: 7, .. }
        ));
        assert!(p(&["fuzz", "--dist", "zipf"]).is_err());
        assert!(p(&["fuzz", "--seed", "0xgg"]).is_err());
        assert!(p(&["fuzz", "stray-positional"]).is_err());
        assert!(p(&["fuzz", "--ops", "0"]).is_err());
        assert!(p(&["fuzz", "--dim", "0"]).is_err());
        assert!(p(&["fuzz", "--dim", "33"]).is_err());
        assert!(p(&["fuzz", "--page-size", "64"]).is_err());
    }
}
