//! Hand-rolled argument parsing (the workspace's dependency policy
//! admits no CLI framework; the grammar is small enough not to need
//! one).

use std::path::PathBuf;

use sr_testkit::DataDist;

/// Which index structure a command targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// The SR-tree (default).
    Sr,
    /// The SS-tree.
    Ss,
    /// The R\*-tree.
    Rstar,
    /// The K-D-B-tree.
    Kdb,
    /// The static VAMSplit R-tree.
    Vam,
}

impl IndexKind {
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sr" => Ok(IndexKind::Sr),
            "ss" => Ok(IndexKind::Ss),
            "rstar" | "r*" => Ok(IndexKind::Rstar),
            "kdb" => Ok(IndexKind::Kdb),
            "vam" => Ok(IndexKind::Vam),
            other => Err(format!(
                "unknown index kind {other:?} (sr|ss|rstar|kdb|vam)"
            )),
        }
    }
}

/// Which synthetic data set `gen` produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenKind {
    /// Uniform in the unit cube (§3.1).
    Uniform,
    /// The §5.4 cluster data set.
    Cluster,
    /// Simulated color histograms (the "real data set" stand-in).
    Histogram,
}

impl GenKind {
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "uniform" => Ok(GenKind::Uniform),
            "cluster" => Ok(GenKind::Cluster),
            "histogram" | "real" => Ok(GenKind::Histogram),
            other => Err(format!(
                "unknown data kind {other:?} (uniform|cluster|histogram)"
            )),
        }
    }
}

/// A fully parsed srtool invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a TSV data file.
    Gen {
        kind: GenKind,
        n: usize,
        dim: usize,
        seed: u64,
        clusters: usize,
        out: PathBuf,
    },
    /// Create an index file and load a TSV into it.
    Build {
        index: IndexKind,
        dim: usize,
        index_path: PathBuf,
        data_path: PathBuf,
    },
    /// Insert a TSV into an existing (dynamic) index.
    Insert {
        index_path: PathBuf,
        data_path: PathBuf,
    },
    /// k-nearest-neighbor query.
    Knn {
        index_path: PathBuf,
        k: usize,
        query: Vec<f32>,
    },
    /// Range query.
    Range {
        index_path: PathBuf,
        radius: f64,
        query: Vec<f32>,
    },
    /// Print index metadata and parameters.
    Stats { index_path: PathBuf },
    /// Run the structural-invariant checker.
    Verify { index_path: PathBuf },
    /// Replay a differential-fuzz op tape (opt-in; this is the replay
    /// side of the `SEED=` lines the tier-1 fuzz tests print).
    Fuzz {
        seed: u64,
        ops: usize,
        dim: usize,
        dist: DataDist,
        page_size: usize,
        verify_every: usize,
    },
}

/// Parse `argv[1..]`.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().map(|s| s.as_str());
    let verb = it.next().ok_or_else(usage)?;
    let rest: Vec<&str> = it.collect();
    match verb {
        "gen" => parse_gen(&rest),
        "build" => parse_build(&rest),
        "insert" => {
            let pos = positionals(&rest, 2)?;
            Ok(Command::Insert {
                index_path: pos[0].into(),
                data_path: pos[1].into(),
            })
        }
        "knn" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Knn {
                index_path: pos[0].into(),
                k: flag(&rest, "--k")?
                    .unwrap_or("21")
                    .parse()
                    .map_err(bad("--k"))?,
                query: parse_query(flag(&rest, "--query")?.ok_or("missing --query")?)?,
            })
        }
        "range" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Range {
                index_path: pos[0].into(),
                radius: flag(&rest, "--radius")?
                    .ok_or("missing --radius")?
                    .parse()
                    .map_err(|e| format!("bad --radius: {e}"))?,
                query: parse_query(flag(&rest, "--query")?.ok_or("missing --query")?)?,
            })
        }
        "stats" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Stats {
                index_path: pos[0].into(),
            })
        }
        "verify" => {
            let pos = positionals(&rest, 1)?;
            Ok(Command::Verify {
                index_path: pos[0].into(),
            })
        }
        "fuzz" => parse_fuzz(&rest),
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn parse_gen(rest: &[&str]) -> Result<Command, String> {
    let pos = positionals(rest, 1)?;
    Ok(Command::Gen {
        kind: GenKind::from_str(flag(rest, "--kind")?.unwrap_or("uniform"))?,
        n: flag(rest, "--n")?
            .unwrap_or("10000")
            .parse()
            .map_err(bad("--n"))?,
        dim: flag(rest, "--dim")?
            .unwrap_or("16")
            .parse()
            .map_err(bad("--dim"))?,
        seed: flag(rest, "--seed")?
            .unwrap_or("42")
            .parse()
            .map_err(bad("--seed"))?,
        clusters: flag(rest, "--clusters")?
            .unwrap_or("100")
            .parse()
            .map_err(bad("--clusters"))?,
        out: pos[0].into(),
    })
}

fn parse_build(rest: &[&str]) -> Result<Command, String> {
    let pos = positionals(rest, 2)?;
    Ok(Command::Build {
        index: IndexKind::from_str(flag(rest, "--index")?.unwrap_or("sr"))?,
        dim: flag(rest, "--dim")?
            .unwrap_or("16")
            .parse()
            .map_err(bad("--dim"))?,
        index_path: pos[0].into(),
        data_path: pos[1].into(),
    })
}

fn parse_fuzz(rest: &[&str]) -> Result<Command, String> {
    positionals(rest, 0)?;
    let dist_s = flag(rest, "--dist")?.unwrap_or("uniform");
    let ops: usize = flag(rest, "--ops")?
        .unwrap_or("2000")
        .parse()
        .map_err(bad("--ops"))?;
    if ops == 0 {
        return Err("--ops must be at least 1".into());
    }
    let dim: usize = flag(rest, "--dim")?
        .unwrap_or("8")
        .parse()
        .map_err(bad("--dim"))?;
    if !(1..=32).contains(&dim) {
        return Err(format!("--dim {dim} out of range (1..=32)"));
    }
    let page_size: usize = flag(rest, "--page-size")?
        .unwrap_or("2048")
        .parse()
        .map_err(bad("--page-size"))?;
    // 2 KiB guarantees every structure can hold >= 2 entries per node
    // at the paper's 512-byte data areas up to --dim 32.
    if !(2048..=65536).contains(&page_size) {
        return Err(format!(
            "--page-size {page_size} out of range (2048..=65536)"
        ));
    }
    Ok(Command::Fuzz {
        seed: parse_seed(flag(rest, "--seed")?.unwrap_or("42"))?,
        ops,
        dim,
        dist: DataDist::parse(dist_s)
            .ok_or_else(|| format!("unknown --dist {dist_s:?} (uniform|cluster|real)"))?,
        page_size,
        verify_every: flag(rest, "--verify-every")?
            .unwrap_or("500")
            .parse()
            .map_err(bad("--verify-every"))?,
    })
}

/// A seed, decimal or `0x`-hex — the failure reports print hex, so the
/// replay line must round-trip both spellings.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("bad --seed: {e}"))
}

/// Extract `--name value` from an argument slice.
fn flag<'a>(rest: &[&'a str], name: &str) -> Result<Option<&'a str>, String> {
    let mut found = None;
    let mut i = 0;
    while i < rest.len() {
        if rest[i] == name {
            let v = rest
                .get(i + 1)
                .ok_or_else(|| format!("{name} needs a value"))?;
            if found.is_some() {
                return Err(format!("{name} given twice"));
            }
            found = Some(*v);
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(found)
}

/// Non-flag arguments, validated for count.
fn positionals<'a>(rest: &[&'a str], want: usize) -> Result<Vec<&'a str>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with("--") {
            i += 2; // skip flag + value
        } else {
            out.push(rest[i]);
            i += 1;
        }
    }
    if out.len() != want {
        return Err(format!(
            "expected {want} positional argument(s), got {}",
            out.len()
        ));
    }
    Ok(out)
}

fn parse_query(s: &str) -> Result<Vec<f32>, String> {
    let coords: Result<Vec<f32>, _> = s.split(',').map(|c| c.trim().parse::<f32>()).collect();
    let coords = coords.map_err(|e| format!("bad --query: {e}"))?;
    if coords.is_empty() {
        return Err("empty --query".into());
    }
    Ok(coords)
}

fn bad(name: &'static str) -> impl Fn(std::num::ParseIntError) -> String {
    move |e| format!("bad {name}: {e}")
}

fn usage() -> String {
    "usage: srtool <gen|build|insert|knn|range|stats|verify|fuzz> ...\n\
     see `srtool --help` output in the README"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Command, String> {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_gen_defaults() {
        let cmd = p(&["gen", "out.tsv"]).unwrap();
        match cmd {
            Command::Gen {
                kind, n, dim, seed, ..
            } => {
                assert_eq!(kind, GenKind::Uniform);
                assert_eq!((n, dim, seed), (10000, 16, 42));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_gen_with_flags() {
        let cmd = p(&[
            "gen",
            "--kind",
            "cluster",
            "--n",
            "500",
            "--dim",
            "8",
            "--clusters",
            "5",
            "x.tsv",
        ])
        .unwrap();
        match cmd {
            Command::Gen {
                kind,
                n,
                dim,
                clusters,
                out,
                ..
            } => {
                assert_eq!(kind, GenKind::Cluster);
                assert_eq!((n, dim, clusters), (500, 8, 5));
                assert_eq!(out, std::path::PathBuf::from("x.tsv"));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_build() {
        let cmd = p(&["build", "--index", "ss", "--dim", "4", "i.pages", "d.tsv"]).unwrap();
        match cmd {
            Command::Build { index, dim, .. } => {
                assert_eq!(index, IndexKind::Ss);
                assert_eq!(dim, 4);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_knn_query_vector() {
        let cmd = p(&["knn", "i.pages", "--k", "5", "--query", "0.1, 0.2,0.3"]).unwrap();
        match cmd {
            Command::Knn { k, query, .. } => {
                assert_eq!(k, 5);
                assert_eq!(query, vec![0.1, 0.2, 0.3]);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(p(&["knn", "i.pages"]).is_err()); // missing --query
        assert!(p(&["frobnicate"]).is_err());
        assert!(p(&["gen"]).is_err()); // missing out path
        assert!(p(&["build", "--index", "nope", "a", "b"]).is_err());
        assert!(p(&["knn", "i.pages", "--query", "a,b"]).is_err());
        assert!(p(&["range", "i.pages", "--query", "1"]).is_err()); // missing radius
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(p(&["gen", "--n", "1", "--n", "2", "o.tsv"]).is_err());
    }

    #[test]
    fn parse_fuzz_defaults() {
        let cmd = p(&["fuzz"]).unwrap();
        match cmd {
            Command::Fuzz {
                seed,
                ops,
                dim,
                dist,
                page_size,
                verify_every,
            } => {
                assert_eq!((seed, ops, dim), (42, 2000, 8));
                assert_eq!(dist, DataDist::Uniform);
                assert_eq!((page_size, verify_every), (2048, 500));
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_fuzz_replay_line_round_trips() {
        // Exactly the spelling `sr_testkit::seed_line` prints.
        let cmd = p(&[
            "fuzz",
            "--seed",
            "0xd1ff0002",
            "--ops",
            "2000",
            "--dim",
            "8",
            "--dist",
            "cluster",
        ])
        .unwrap();
        match cmd {
            Command::Fuzz {
                seed,
                ops,
                dim,
                dist,
                ..
            } => {
                assert_eq!((seed, ops, dim), (0xD1FF_0002, 2000, 8));
                assert_eq!(dist, DataDist::Clustered);
            }
            _ => panic!("wrong command"),
        }
        // Decimal seeds keep working too.
        assert!(matches!(
            p(&["fuzz", "--seed", "7"]).unwrap(),
            Command::Fuzz { seed: 7, .. }
        ));
        assert!(p(&["fuzz", "--dist", "zipf"]).is_err());
        assert!(p(&["fuzz", "--seed", "0xgg"]).is_err());
        assert!(p(&["fuzz", "stray-positional"]).is_err());
        assert!(p(&["fuzz", "--ops", "0"]).is_err());
        assert!(p(&["fuzz", "--dim", "0"]).is_err());
        assert!(p(&["fuzz", "--dim", "33"]).is_err());
        assert!(p(&["fuzz", "--page-size", "64"]).is_err());
    }
}
