//! Opening, building, and querying any of the five on-disk index types
//! behind one `Box<dyn SpatialIndex>`. Files are self-describing (each
//! tree writes a magic into the page-file metadata), so `open` sniffs
//! the type; everything after construction goes through the trait, so
//! there are no per-tree `match` arms left on the query path.

use std::path::Path;

use sr_geometry::Point;
use sr_kdbtree::KdbTree;
use sr_query::SpatialIndex;
use sr_rstar::RstarTree;
use sr_sstree::SsTree;
use sr_tree::SrTree;
use sr_vamsplit::VamTree;

use crate::args::IndexKind;

/// Any on-disk index, dispatched through [`SpatialIndex`].
pub struct AnyStore {
    index: Box<dyn SpatialIndex>,
}

impl AnyStore {
    /// Create an index of `kind` at `path` and load `points`.
    pub fn build(
        kind: IndexKind,
        path: &Path,
        dim: usize,
        points: Vec<(Point, u64)>,
    ) -> Result<AnyStore, String> {
        let e = |err: &dyn std::fmt::Display| format!("{}: {err}", path.display());
        // Construction is the one per-kind step: the VAMSplit R-tree
        // bulk-loads, the four dynamic trees insert point by point.
        let index: Box<dyn SpatialIndex> = match kind {
            IndexKind::Vam => Box::new(VamTree::build_at(path, points, dim).map_err(|x| e(&x))?),
            IndexKind::Sr => {
                let mut t = SrTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                Box::new(t)
            }
            IndexKind::Ss => {
                let mut t = SsTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                Box::new(t)
            }
            IndexKind::Rstar => {
                let mut t = RstarTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                Box::new(t)
            }
            IndexKind::Kdb => {
                let mut t = KdbTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                Box::new(t)
            }
        };
        index.flush().map_err(|x| e(&x))?;
        Ok(AnyStore { index })
    }

    /// Open an existing index file, detecting its type from the metadata
    /// magic.
    pub fn open(path: &Path) -> Result<AnyStore, String> {
        if let Ok(t) = SrTree::open(path) {
            return Ok(AnyStore { index: Box::new(t) });
        }
        if let Ok(t) = SsTree::open(path) {
            return Ok(AnyStore { index: Box::new(t) });
        }
        if let Ok(t) = RstarTree::open(path) {
            return Ok(AnyStore { index: Box::new(t) });
        }
        if let Ok(t) = KdbTree::open(path) {
            return Ok(AnyStore { index: Box::new(t) });
        }
        if let Ok(t) = VamTree::open(path) {
            return Ok(AnyStore { index: Box::new(t) });
        }
        Err(format!("{}: not a recognizable index file", path.display()))
    }

    /// The trait object itself, for callers (batch execution, request
    /// dispatch) that want the [`SpatialIndex`] API directly.
    pub fn index(&self) -> &dyn SpatialIndex {
        self.index.as_ref()
    }

    /// Mutable access for write-shaped requests (`sr_wire::execute`).
    pub fn index_mut(&mut self) -> &mut dyn SpatialIndex {
        self.index.as_mut()
    }

    /// Give up the store, keeping the boxed index — how `srtool serve`
    /// hands ownership to the server.
    pub fn into_index(self) -> Box<dyn SpatialIndex> {
        self.index
    }

    /// Human-readable type name.
    pub fn kind_name(&self) -> &'static str {
        self.index.kind_name()
    }

    /// (dim, len, height).
    pub fn summary(&self) -> (usize, u64, u32) {
        (self.index.dim(), self.index.len(), self.index.height())
    }

    /// The underlying page file (I/O statistics, buffer-pool control).
    pub fn pager(&self) -> &sr_pager::PageFile {
        self.index.pager()
    }

    /// Run the structure's invariant checker, returning a summary line.
    pub fn verify(&self) -> Result<String, String> {
        self.index.verify().map_err(|e| e.to_string())
    }
}
