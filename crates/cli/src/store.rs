//! Opening, building, and querying any of the five on-disk index types
//! behind one enum. Files are self-describing (each tree writes a magic
//! into the page-file metadata), so `open` sniffs the type.

use std::path::Path;

use sr_geometry::Point;
use sr_kdbtree::KdbTree;
use sr_rstar::RstarTree;
use sr_sstree::SsTree;
use sr_tree::SrTree;
use sr_vamsplit::VamTree;

use crate::args::IndexKind;

/// Any on-disk index.
pub enum AnyStore {
    Sr(SrTree),
    Ss(SsTree),
    Rstar(RstarTree),
    Kdb(KdbTree),
    Vam(VamTree),
}

impl AnyStore {
    /// Create an index of `kind` at `path` and load `points`.
    pub fn build(
        kind: IndexKind,
        path: &Path,
        dim: usize,
        points: Vec<(Point, u64)>,
    ) -> Result<AnyStore, String> {
        let e = |err: &dyn std::fmt::Display| format!("{}: {err}", path.display());
        match kind {
            IndexKind::Vam => {
                let t = VamTree::build_at(path, points, dim).map_err(|x| e(&x))?;
                t.flush().map_err(|x| e(&x))?;
                Ok(AnyStore::Vam(t))
            }
            IndexKind::Sr => {
                let mut t = SrTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                t.flush().map_err(|x| e(&x))?;
                Ok(AnyStore::Sr(t))
            }
            IndexKind::Ss => {
                let mut t = SsTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                t.flush().map_err(|x| e(&x))?;
                Ok(AnyStore::Ss(t))
            }
            IndexKind::Rstar => {
                let mut t = RstarTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                t.flush().map_err(|x| e(&x))?;
                Ok(AnyStore::Rstar(t))
            }
            IndexKind::Kdb => {
                let mut t = KdbTree::create(path, dim).map_err(|x| e(&x))?;
                for (p, id) in points {
                    t.insert(p, id).map_err(|x| e(&x))?;
                }
                t.flush().map_err(|x| e(&x))?;
                Ok(AnyStore::Kdb(t))
            }
        }
    }

    /// Open an existing index file, detecting its type from the metadata
    /// magic.
    pub fn open(path: &Path) -> Result<AnyStore, String> {
        if let Ok(t) = SrTree::open(path) {
            return Ok(AnyStore::Sr(t));
        }
        if let Ok(t) = SsTree::open(path) {
            return Ok(AnyStore::Ss(t));
        }
        if let Ok(t) = RstarTree::open(path) {
            return Ok(AnyStore::Rstar(t));
        }
        if let Ok(t) = KdbTree::open(path) {
            return Ok(AnyStore::Kdb(t));
        }
        if let Ok(t) = VamTree::open(path) {
            return Ok(AnyStore::Vam(t));
        }
        Err(format!("{}: not a recognizable index file", path.display()))
    }

    /// Human-readable type name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AnyStore::Sr(_) => "SR-tree",
            AnyStore::Ss(_) => "SS-tree",
            AnyStore::Rstar(_) => "R*-tree",
            AnyStore::Kdb(_) => "K-D-B-tree",
            AnyStore::Vam(_) => "VAMSplit R-tree",
        }
    }

    /// (dim, len, height).
    pub fn summary(&self) -> (usize, u64, u32) {
        match self {
            AnyStore::Sr(t) => (t.dim(), t.len(), t.height()),
            AnyStore::Ss(t) => (t.dim(), t.len(), t.height()),
            AnyStore::Rstar(t) => (t.dim(), t.len(), t.height()),
            AnyStore::Kdb(t) => (t.dim(), t.len(), t.height()),
            AnyStore::Vam(t) => (t.dim(), t.len(), t.height()),
        }
    }

    /// Insert points (errors for the static VAMSplit R-tree).
    pub fn insert(&mut self, points: Vec<(Point, u64)>) -> Result<(), String> {
        match self {
            AnyStore::Sr(t) => {
                for (p, id) in points {
                    t.insert(p, id).map_err(|e| e.to_string())?;
                }
                t.flush().map_err(|e| e.to_string())
            }
            AnyStore::Ss(t) => {
                for (p, id) in points {
                    t.insert(p, id).map_err(|e| e.to_string())?;
                }
                t.flush().map_err(|e| e.to_string())
            }
            AnyStore::Rstar(t) => {
                for (p, id) in points {
                    t.insert(p, id).map_err(|e| e.to_string())?;
                }
                t.flush().map_err(|e| e.to_string())
            }
            AnyStore::Kdb(t) => {
                for (p, id) in points {
                    t.insert(p, id).map_err(|e| e.to_string())?;
                }
                t.flush().map_err(|e| e.to_string())
            }
            AnyStore::Vam(_) => {
                Err("the VAMSplit R-tree is static: rebuild it with `srtool build`".into())
            }
        }
    }

    /// k-NN query, returning `(id, distance)` pairs.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<(u64, f64)>, String> {
        self.knn_traced(query, k, &sr_obs::Noop)
    }

    /// [`AnyStore::knn`] with a metrics recorder (see `sr-obs`).
    pub fn knn_traced(
        &self,
        query: &[f32],
        k: usize,
        rec: &dyn sr_obs::Recorder,
    ) -> Result<Vec<(u64, f64)>, String> {
        let hits = match self {
            AnyStore::Sr(t) => t.knn_traced(query, k, rec).map_err(|e| e.to_string())?,
            AnyStore::Ss(t) => t.knn_traced(query, k, rec).map_err(|e| e.to_string())?,
            AnyStore::Rstar(t) => t.knn_traced(query, k, rec).map_err(|e| e.to_string())?,
            AnyStore::Kdb(t) => t.knn_traced(query, k, rec).map_err(|e| e.to_string())?,
            AnyStore::Vam(t) => t.knn_traced(query, k, rec).map_err(|e| e.to_string())?,
        };
        Ok(hits.iter().map(|n| (n.data, n.dist2.sqrt())).collect())
    }

    /// Range query, returning `(id, distance)` pairs.
    pub fn range(&self, query: &[f32], radius: f64) -> Result<Vec<(u64, f64)>, String> {
        self.range_traced(query, radius, &sr_obs::Noop)
    }

    /// [`AnyStore::range`] with a metrics recorder.
    pub fn range_traced(
        &self,
        query: &[f32],
        radius: f64,
        rec: &dyn sr_obs::Recorder,
    ) -> Result<Vec<(u64, f64)>, String> {
        let hits = match self {
            AnyStore::Sr(t) => t
                .range_traced(query, radius, rec)
                .map_err(|e| e.to_string())?,
            AnyStore::Ss(t) => t
                .range_traced(query, radius, rec)
                .map_err(|e| e.to_string())?,
            AnyStore::Rstar(t) => t
                .range_traced(query, radius, rec)
                .map_err(|e| e.to_string())?,
            AnyStore::Kdb(t) => t
                .range_traced(query, radius, rec)
                .map_err(|e| e.to_string())?,
            AnyStore::Vam(t) => t
                .range_traced(query, radius, rec)
                .map_err(|e| e.to_string())?,
        };
        Ok(hits.iter().map(|n| (n.data, n.dist2.sqrt())).collect())
    }

    /// The underlying page file (I/O statistics, buffer-pool control).
    pub fn pager(&self) -> &sr_pager::PageFile {
        match self {
            AnyStore::Sr(t) => t.pager(),
            AnyStore::Ss(t) => t.pager(),
            AnyStore::Rstar(t) => t.pager(),
            AnyStore::Kdb(t) => t.pager(),
            AnyStore::Vam(t) => t.pager(),
        }
    }

    /// Run the structure's invariant checker, returning a summary line.
    pub fn verify(&self) -> Result<String, String> {
        match self {
            AnyStore::Sr(t) => sr_tree::verify::check(t)
                .map(|r| {
                    format!(
                        "{} nodes, {} leaves, {} points",
                        r.nodes, r.leaves, r.points
                    )
                })
                .map_err(|e| e.to_string()),
            AnyStore::Ss(t) => sr_sstree::verify::check(t)
                .map(|r| {
                    format!(
                        "{} nodes, {} leaves, {} points",
                        r.nodes, r.leaves, r.points
                    )
                })
                .map_err(|e| e.to_string()),
            AnyStore::Rstar(t) => sr_rstar::verify::check(t)
                .map(|r| {
                    format!(
                        "{} nodes, {} leaves, {} points",
                        r.nodes, r.leaves, r.points
                    )
                })
                .map_err(|e| e.to_string()),
            AnyStore::Kdb(t) => sr_kdbtree::verify::check(t)
                .map(|r| {
                    format!(
                        "{} nodes, {} leaves ({} empty), {} points",
                        r.nodes, r.leaves, r.empty_leaves, r.points
                    )
                })
                .map_err(|e| e.to_string()),
            AnyStore::Vam(t) => sr_vamsplit::verify::check(t)
                .map(|r| {
                    format!(
                        "{} nodes, {} leaves ({} full), {} points",
                        r.nodes, r.leaves, r.full_leaves, r.points
                    )
                })
                .map_err(|e| e.to_string()),
        }
    }
}
