//! `srtool` — a command-line interface for the SR-tree reproduction.
//!
//! The library half holds the argument parsing and command execution so
//! they can be unit- and integration-tested; the `srtool` binary is a
//! thin wrapper.
//!
//! ```text
//! srtool gen     --kind uniform|cluster|histogram --n 10000 --dim 16 --seed 7 out.tsv
//! srtool build   --index sr|ss|rstar|kdb|vam --dim 16 index.pages data.tsv
//! srtool insert  index.pages data.tsv
//! srtool knn     index.pages --k 21 --query 0.1,0.2,...     (or --query-id N)
//! srtool range   index.pages --radius 0.5 --query 0.1,0.2,...
//! srtool stats   index.pages
//! srtool verify  index.pages
//! srtool serve   index.pages --addr 127.0.0.1:7878 --threads 4 --max-conns 64
//! srtool client  ping|knn|range|insert|stats|shutdown --addr HOST:PORT ...
//! srtool fuzz    --seed 0xd1ff0001 --ops 2000 --dim 8 --dist uniform|cluster|real
//! srtool lint    [--json] [--root <workspace-root>]
//! ```
//!
//! Data files are TSV: one point per line, `id <TAB> c0 <TAB> c1 ...`.
//! Exit codes: 0 success, 1 execution failure, 2 usage error, 3 remote
//! (`client`) error — see `srtool --help`.

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod data;
pub mod store;

pub use args::{parse, ArgError, ClientOp, Command};
pub use commands::CmdError;
pub use data::DataError;

/// Run a parsed command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), CmdError> {
    commands::run(cmd, out)
}
