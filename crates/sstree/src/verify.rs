//! Structural-invariant checker for the SS-tree.
//!
//! Checks:
//! * every stored bounding sphere contains every point of its child
//!   subtree (the correctness precondition of k-NN pruning);
//! * every stored sphere equals the region recomputed from the child
//!   node (centers and radii are maintained deterministically);
//! * stored subtree weights match actual point counts;
//! * fanout bounds, uniform leaf depth, metadata count.

use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::SsTree;

/// Summary of a verified tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Internal nodes visited.
    pub nodes: u64,
    /// Leaves visited.
    pub leaves: u64,
    /// Points counted.
    pub points: u64,
}

/// Walk the whole tree, validating every structural invariant.
///
/// # Errors
/// [`TreeError::Corrupt`] naming the offending page and invariant;
/// [`TreeError::Pager`] when a page cannot be read at all.
pub fn check(tree: &SsTree) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let root_level = (tree.height - 1) as u16;
    walk(tree, tree.root, root_level, true, &mut report)?;
    if report.points != tree.len() {
        return Err(TreeError::Corrupt(format!(
            "metadata says {} points, tree holds {}",
            tree.len(),
            report.points
        )));
    }
    Ok(report)
}

fn walk(
    tree: &SsTree,
    id: PageId,
    level: u16,
    is_root: bool,
    report: &mut VerifyReport,
) -> Result<Vec<(Vec<f32>, u64)>> {
    let node = tree.read_node(id, level)?;
    let (min, max) = if node.is_leaf() {
        (tree.params().min_leaf, tree.params().max_leaf)
    } else {
        (tree.params().min_node, tree.params().max_node)
    };
    if !is_root && (node.len() < min || node.len() > max) {
        return Err(TreeError::Corrupt(format!(
            "page {id} (level {level}): {} entries outside [{min}, {max}]",
            node.len()
        )));
    }
    match node {
        Node::Leaf(entries) => {
            report.leaves += 1;
            report.points += entries.len() as u64;
            Ok(entries
                .iter()
                .map(|e| (e.point.coords().to_vec(), e.data))
                .collect())
        }
        Node::Inner { entries, .. } => {
            report.nodes += 1;
            let mut all = Vec::new();
            for e in &entries {
                let child_node = tree.read_node(e.child, level - 1)?;
                if child_node.len() == 0 {
                    return Err(TreeError::Corrupt(format!(
                        "page {} is an empty non-root node",
                        e.child
                    )));
                }
                // Stored region must equal the deterministic recomputation.
                let recomputed = child_node.region()?;
                if recomputed != e.sphere {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: stored sphere {:?} differs from child {} region {:?}",
                        e.sphere, e.child, recomputed
                    )));
                }
                if e.weight != child_node.weight() {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: stored weight {} differs from child {} weight {}",
                        e.weight,
                        e.child,
                        child_node.weight()
                    )));
                }
                let pts = walk(tree, e.child, level - 1, false, report)?;
                // Every point beneath must lie inside the stored sphere.
                for (p, _) in &pts {
                    if !e.sphere.contains_point(p, 1e-5) {
                        return Err(TreeError::Corrupt(format!(
                            "page {id}: point {p:?} escapes the sphere of child {}",
                            e.child
                        )));
                    }
                }
                all.extend(pts);
            }
            Ok(all)
        }
    }
}
