//! SS-tree insertion: nearest-centroid ChooseSubtree and the aggressive
//! forced-reinsertion policy ("reinsert unless reinsertion has been made
//! at the same node or leaf", §2.3 of the paper).

use std::collections::HashSet;

use sr_geometry::Point;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::split;
use crate::tree::SsTree;

/// An entry being inserted at some level.
pub(crate) enum AnyEntry {
    Leaf(LeafEntry),
    Inner(InnerEntry),
}

impl AnyEntry {
    /// The centroid of the entry — what ChooseSubtree measures distance
    /// to.
    fn center(&self) -> &Point {
        match self {
            AnyEntry::Leaf(e) => &e.point,
            AnyEntry::Inner(e) => e.sphere.center(),
        }
    }
}

/// Insert one point.
pub(crate) fn insert_point(tree: &mut SsTree, point: Point, data: u64) -> Result<()> {
    // The SS-tree rule tracks which *nodes* have already reinserted during
    // this insertion, not which levels.
    let mut reinserted: HashSet<PageId> = HashSet::new();
    insert_at_level(
        tree,
        AnyEntry::Leaf(LeafEntry { point, data }),
        0,
        &mut reinserted,
    )?;
    tree.count += 1;
    tree.save_meta()?;
    Ok(())
}

/// Insert `entry` at `target_level` with overflow treatment.
pub(crate) fn insert_at_level(
    tree: &mut SsTree,
    entry: AnyEntry,
    target_level: u16,
    reinserted: &mut HashSet<PageId>,
) -> Result<()> {
    debug_assert!((target_level as u32) < tree.height);
    let path = choose_path(tree, entry.center(), target_level)?;
    let &target = path
        .last()
        .ok_or_else(|| TreeError::Corrupt("empty insertion path".into()))?;
    let mut node = tree.read_node(target, target_level)?;
    match (entry, &mut node) {
        (AnyEntry::Leaf(e), Node::Leaf(entries)) => entries.push(e),
        (AnyEntry::Inner(e), Node::Inner { entries, .. }) => entries.push(e),
        _ => {
            return Err(TreeError::Corrupt(
                "insertion target level does not match the node kind on disk".into(),
            ))
        }
    }

    let mut idx = path.len() - 1;
    loop {
        if node.len() <= tree.max_for(&node) {
            tree.write_node(path[idx], &node)?;
            propagate_regions(tree, &path, idx, &node)?;
            return Ok(());
        }
        if idx == 0 {
            split_root(tree, node)?;
            return Ok(());
        }
        if !reinserted.contains(&path[idx]) {
            // --- forced reinsertion (per-node rule) ---
            reinserted.insert(path[idx]);
            let level = node.level();
            let removed = remove_farthest(tree, &mut node)?;
            tree.write_node(path[idx], &node)?;
            propagate_regions(tree, &path, idx, &node)?;
            for e in removed.into_iter().rev() {
                insert_at_level(tree, e, level, reinserted)?;
            }
            return Ok(());
        }
        // --- split ---
        let (a, b) = split::split_node(&tree.params, node);
        let b_id = tree.allocate_node(&b)?;
        tree.write_node(path[idx], &a)?;
        let (a_region, a_weight) = (a.region()?, a.weight());
        let (b_region, b_weight) = (b.region()?, b.weight());
        idx -= 1;
        let level = (tree.height as usize - 1 - idx) as u16;
        let mut parent = tree.read_node(path[idx], level)?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == path[idx + 1])
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            slot.sphere = a_region;
            slot.weight = a_weight;
            entries.push(InnerEntry {
                sphere: b_region,
                weight: b_weight,
                child: b_id,
            });
        } else {
            return Err(TreeError::Corrupt(
                "parent of a split node is not an inner node".into(),
            ));
        }
        node = parent;
    }
}

/// Descend from the root toward `target_level`, at each node choosing the
/// child whose centroid is nearest to the entry's center.
fn choose_path(tree: &SsTree, center: &Point, target_level: u16) -> Result<Vec<PageId>> {
    let mut path = vec![tree.root];
    let mut level = (tree.height - 1) as u16;
    let mut id = tree.root;
    while level > target_level {
        let node = tree.read_node(id, level)?;
        let entries = match &node {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "leaf found above the target level while descending".into(),
                ))
            }
        };
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let d = e.sphere.center().dist2(center);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        id = entries[best].child;
        path.push(id);
        level -= 1;
    }
    Ok(path)
}

/// After writing `node` at `path[idx]`, refresh the (sphere, weight)
/// entries recorded for it in every ancestor.
pub(crate) fn propagate_regions(
    tree: &SsTree,
    path: &[sr_pager::PageId],
    idx: usize,
    node: &Node,
) -> Result<()> {
    let mut child_region = node.region()?;
    let mut child_weight = node.weight();
    let mut child_id = path[idx];
    for j in (0..idx).rev() {
        let level = (tree.height as usize - 1 - j) as u16;
        let mut parent = tree.read_node(path[j], level)?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child_id)
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            if slot.sphere == child_region && slot.weight == child_weight {
                return Ok(());
            }
            slot.sphere = child_region;
            slot.weight = child_weight;
        }
        tree.write_node(path[j], &parent)?;
        child_region = parent.region()?;
        child_weight = parent.weight();
        child_id = path[j];
    }
    Ok(())
}

/// Remove the reinsert fraction of entries farthest from the node's
/// centroid, farthest-first.
fn remove_farthest(tree: &SsTree, node: &mut Node) -> Result<Vec<AnyEntry>> {
    let center = node.centroid()?;
    let p = if node.is_leaf() {
        tree.params.reinsert_leaf
    } else {
        tree.params.reinsert_node
    };
    match node {
        Node::Leaf(entries) => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                entries[b]
                    .point
                    .dist2(&center)
                    .total_cmp(&entries[a].point.dist2(&center))
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Leaf)
                .collect())
        }
        Node::Inner { entries, .. } => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                entries[b]
                    .sphere
                    .center()
                    .dist2(&center)
                    .total_cmp(&entries[a].sphere.center().dist2(&center))
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Inner)
                .collect())
        }
    }
}

/// Remove `victims` (indices) from `entries`, preserving the victims'
/// order in the returned vector.
fn extract<T>(entries: &mut Vec<T>, victims: &[usize]) -> Vec<T> {
    let mut sorted = victims.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut removed: Vec<(usize, T)> = sorted.into_iter().map(|i| (i, entries.remove(i))).collect();
    let mut out = Vec::with_capacity(victims.len());
    for &v in victims {
        // `victims` holds distinct indices, so every lookup hits.
        if let Some(pos) = removed.iter().position(|(i, _)| *i == v) {
            out.push(removed.remove(pos).1);
        }
    }
    out
}

/// Split an overflowing root, growing the tree by one level.
fn split_root(tree: &mut SsTree, node: Node) -> Result<()> {
    let level = node.level();
    let (a, b) = split::split_node(&tree.params, node);
    let a_id = tree.allocate_node(&a)?;
    let b_id = tree.allocate_node(&b)?;
    let new_root = Node::Inner {
        level: level + 1,
        entries: vec![
            InnerEntry {
                sphere: a.region()?,
                weight: a.weight(),
                child: a_id,
            },
            InnerEntry {
                sphere: b.region()?,
                weight: b.weight(),
                child: b_id,
            },
        ],
    };
    tree.pf.free(tree.root)?;
    let root_id = tree.allocate_node(&new_root)?;
    tree.root = root_id;
    tree.height += 1;
    tree.save_meta()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_geometry::Sphere;

    #[test]
    fn extract_preserves_requested_order() {
        let mut entries = vec![10, 20, 30, 40];
        let got = extract(&mut entries, &[3, 0]);
        assert_eq!(got, vec![40, 10]);
        assert_eq!(entries, vec![20, 30]);
    }

    #[test]
    fn remove_farthest_takes_centroid_outliers() {
        // Unlike the R*-tree, the SS-tree measures from the *centroid*,
        // so a single extreme outlier is removed first.
        let pf = sr_pager::PageFile::create_in_memory(1024).unwrap();
        let tree = crate::tree::SsTree::create_from(pf, 2, 64).unwrap();
        let mut node = Node::Leaf(
            (0..9)
                .map(|i| LeafEntry {
                    point: Point::new(if i == 8 {
                        vec![1000.0, 1000.0]
                    } else {
                        vec![i as f32 * 0.1, 0.0]
                    }),
                    data: i as u64,
                })
                .collect(),
        );
        let removed = remove_farthest(&tree, &mut node).unwrap();
        match &removed[0] {
            AnyEntry::Leaf(e) => assert_eq!(e.data, 8, "outlier should go first"),
            AnyEntry::Inner(_) => panic!("expected leaf entry"),
        }
    }

    #[test]
    fn any_entry_center_is_point_or_sphere_center() {
        let leaf = AnyEntry::Leaf(LeafEntry {
            point: Point::new(vec![1.0, 2.0]),
            data: 0,
        });
        assert_eq!(leaf.center().coords(), &[1.0, 2.0]);
        let inner = AnyEntry::Inner(InnerEntry {
            sphere: Sphere::new(Point::new(vec![3.0, 4.0]), 1.0),
            weight: 5,
            child: 1,
        });
        assert_eq!(inner.center().coords(), &[3.0, 4.0]);
    }
}
