//! The SS-tree (White & Jain, ICDE 1996) — the similarity-indexing
//! baseline the SR-tree improves on (paper §2.3).
//!
//! A disk-based, height-balanced tree whose regions are **bounding
//! spheres** centered on the centroid of the underlying points:
//!
//! * **Insertion** descends to the subtree whose centroid is nearest to
//!   the new point;
//! * **Forced reinsertion** runs on overflow *unless reinsertion has
//!   already been made at the same node or leaf* during this insertion —
//!   more aggressive than the R\*-tree's once-per-level rule, promoting
//!   dynamic reorganization;
//! * **Split** picks the dimension with the highest variance of the child
//!   centroids and the split position minimizing the two groups' summed
//!   variance;
//! * a node entry stores `D + 1` floats (center + radius) against a
//!   rectangle's `2·D`, nearly doubling fanout — 55 vs the R\*-tree's 30
//!   entries at `D = 16` with 8 KiB pages.
//!
//! Nearest-neighbor queries run the Roussopoulos et al. depth-first
//! search from [`sr_query`], scoring regions with the distance to the
//! sphere surface.
//!
//! ```
//! use sr_sstree::SsTree;
//! use sr_geometry::Point;
//!
//! let mut tree = SsTree::create_in_memory(2, 8192).unwrap();
//! for (i, xy) in [[0.0f32, 0.0], [1.0, 1.0], [0.2, 0.1]].iter().enumerate() {
//!     tree.insert(Point::new(xy.to_vec()), i as u64).unwrap();
//! }
//! let hits = tree.knn(&[0.0, 0.0], 2).unwrap();
//! assert_eq!(hits[0].data, 0);
//! ```

#![forbid(unsafe_code)]
// Tree internals index into child/entry vectors whose bounds are
// maintained as structural invariants (checked by `verify`); the
// clippy index ban applies to the audited geometry/pager hot paths.
#![allow(clippy::indexing_slicing)]

mod delete;
mod error;
mod insert;
mod node;
mod params;
mod search;
mod split;
mod tree;
pub mod verify;

pub use error::{Result, TreeError};
pub use params::SsParams;
pub use tree::SsTree;

pub use sr_query::Neighbor;
