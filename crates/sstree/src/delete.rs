//! Deletion for the SS-tree — the R-tree condense algorithm (the paper,
//! §4.3, uses the same for all three structures), with underflowing
//! subtrees dissolved into points and reinserted.

use std::collections::HashSet;

use sr_geometry::CONTAINMENT_EPS;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::insert::{insert_at_level, propagate_regions, AnyEntry};
use crate::node::{LeafEntry, Node};
use crate::tree::SsTree;

/// Delete the exact entry `(point, data)`. Returns whether it was found.
pub(crate) fn delete(tree: &mut SsTree, point: &sr_geometry::Point, data: u64) -> Result<bool> {
    if tree.is_empty() || tree.height == 0 {
        return Ok(false);
    }
    let root_level = (tree.height - 1) as u16;
    let Some(path) = find_leaf(tree, tree.root, root_level, point, data)? else {
        return Ok(false);
    };

    let &leaf_id = path
        .last()
        .ok_or_else(|| TreeError::Corrupt("empty deletion path".into()))?;
    let mut node = tree.read_node(leaf_id, 0)?;
    if let Node::Leaf(entries) = &mut node {
        let pos = entries
            .iter()
            .position(|e| e.point == *point && e.data == data)
            .ok_or_else(|| {
                TreeError::Corrupt("find_leaf returned a leaf without the entry".into())
            })?;
        entries.remove(pos);
    }

    let mut orphans: Vec<LeafEntry> = Vec::new();
    let mut idx = path.len() - 1;
    loop {
        if idx == 0 {
            tree.write_node(path[0], &node)?;
            break;
        }
        if node.len() < tree.min_for(&node) {
            collect_points(tree, &node, &mut orphans)?;
            tree.pf.free(path[idx])?;
            idx -= 1;
            let level = (tree.height as usize - 1 - idx) as u16;
            let mut parent = tree.read_node(path[idx], level)?;
            if let Node::Inner { entries, .. } = &mut parent {
                let pos = entries
                    .iter()
                    .position(|e| e.child == path[idx + 1])
                    .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
                entries.remove(pos);
            }
            node = parent;
        } else {
            tree.write_node(path[idx], &node)?;
            propagate_regions(tree, &path, idx, &node)?;
            break;
        }
    }

    shrink_root(tree)?;

    for e in orphans {
        let mut reinserted: HashSet<PageId> = HashSet::new();
        insert_at_level(tree, AnyEntry::Leaf(e), 0, &mut reinserted)?;
    }

    tree.count -= 1;
    tree.save_meta()?;
    Ok(true)
}

/// DFS for the leaf holding the exact entry. Sphere regions can overlap,
/// so several children may need probing; the sphere-containment test
/// prunes the impossible ones.
fn find_leaf(
    tree: &SsTree,
    id: PageId,
    level: u16,
    point: &sr_geometry::Point,
    data: u64,
) -> Result<Option<Vec<PageId>>> {
    let node = tree.read_node(id, level)?;
    match node {
        Node::Leaf(entries) => {
            if entries.iter().any(|e| e.point == *point && e.data == data) {
                Ok(Some(vec![id]))
            } else {
                Ok(None)
            }
        }
        Node::Inner { entries, .. } => {
            for e in &entries {
                // Tolerant sphere test: the sphere is rebuilt from rounded
                // f32 centroids, so the stored point can sit a few ulps
                // outside it. An exact test here made delete silently miss
                // live entries.
                if e.sphere.contains_point(point.coords(), CONTAINMENT_EPS) {
                    if let Some(mut path) = find_leaf(tree, e.child, level - 1, point, data)? {
                        path.insert(0, id);
                        return Ok(Some(path));
                    }
                }
            }
            Ok(None)
        }
    }
}

fn collect_points(tree: &SsTree, node: &Node, out: &mut Vec<LeafEntry>) -> Result<()> {
    match node {
        Node::Leaf(entries) => out.extend(entries.iter().cloned()),
        Node::Inner { level, entries } => {
            for e in entries {
                let child = tree.read_node(e.child, level - 1)?;
                collect_points(tree, &child, out)?;
                tree.pf.free(e.child)?;
            }
        }
    }
    Ok(())
}

fn shrink_root(tree: &mut SsTree) -> Result<()> {
    loop {
        let root_level = (tree.height - 1) as u16;
        if root_level == 0 {
            return Ok(());
        }
        let node = tree.read_node(tree.root, root_level)?;
        let entries = match &node {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "root is a leaf but the recorded height says otherwise".into(),
                ))
            }
        };
        match entries.len() {
            0 => {
                tree.pf.free(tree.root)?;
                let leaf = Node::Leaf(Vec::new());
                tree.root = tree.allocate_node(&leaf)?;
                tree.height = 1;
                tree.save_meta()?;
                return Ok(());
            }
            1 => {
                let child = entries[0].child;
                tree.pf.free(tree.root)?;
                tree.root = child;
                tree.height -= 1;
                tree.save_meta()?;
            }
            _ => return Ok(()),
        }
    }
}
