//! Error type shared by all tree operations.

use std::fmt;

use sr_pager::PagerError;

/// Result alias for SS-tree operations.
pub type Result<T> = std::result::Result<T, TreeError>;

/// Errors from tree operations.
#[derive(Debug)]
pub enum TreeError {
    /// Underlying page I/O failed.
    Pager(PagerError),
    /// A point of the wrong dimensionality was offered.
    DimensionMismatch {
        /// Dimensionality the tree was created with.
        expected: usize,
        /// Dimensionality of the offending point.
        got: usize,
    },
    /// The page file does not contain this kind of index (bad magic or
    /// incompatible version in the tree metadata).
    NotThisIndex(String),
    /// A range query was asked with a negative or NaN radius.
    InvalidRadius(f64),
    /// A structural invariant of the tree does not hold — a decoded page
    /// contradicts itself or its parent. Always a sign of on-disk
    /// corruption or an internal bug; never raised on well-formed input.
    Corrupt(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Pager(e) => write!(f, "page I/O failed: {e}"),
            TreeError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: tree is {expected}-d, point is {got}-d"
                )
            }
            TreeError::NotThisIndex(msg) => write!(f, "not a valid index file: {msg}"),
            TreeError::InvalidRadius(r) => {
                write!(f, "invalid range radius {r}: must be non-negative")
            }
            TreeError::Corrupt(msg) => write!(f, "tree structure corrupt: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TreeError::Pager(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PagerError> for TreeError {
    fn from(e: PagerError) -> Self {
        TreeError::Pager(e)
    }
}

impl From<TreeError> for sr_query::IndexError {
    fn from(e: TreeError) -> Self {
        use sr_query::IndexError;
        match e {
            TreeError::Pager(p) => IndexError::Pager(p),
            TreeError::DimensionMismatch { expected, got } => {
                IndexError::DimensionMismatch { expected, got }
            }
            TreeError::NotThisIndex(s) => IndexError::NotThisIndex(s),
            TreeError::InvalidRadius(r) => IndexError::InvalidRadius(r),
            TreeError::Corrupt(s) => IndexError::Corrupt(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_dimensions() {
        let e = TreeError::DimensionMismatch {
            expected: 16,
            got: 3,
        };
        assert!(e.to_string().contains("16"));
        assert!(e.to_string().contains("3"));
    }
}
