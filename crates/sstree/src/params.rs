//! Capacity parameters for the SS-tree, derived from the page size
//! (Table 1 of the paper).
//!
//! On-disk sizes per entry (coordinates stored as 8-byte floats):
//!
//! * node entry = bounding sphere (`(D+1)·8` bytes: center + radius)
//!   + subtree point count (4) + child pointer (8);
//! * leaf entry = point (`D·8`) + data area (512 default).
//!
//! At `D = 16` with 8 KiB pages this gives 55 node entries — nearly twice
//! the R\*-tree's 30, the fanout advantage §2.3 describes — and 12 leaf
//! entries.

/// Per-node header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// Capacity and policy parameters of an SS-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SsParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in an internal node.
    pub max_node: usize,
    /// Minimum entries in a non-root internal node (40%).
    pub min_node: usize,
    /// Maximum entries in a leaf.
    pub max_leaf: usize,
    /// Minimum entries in a non-root leaf (40%).
    pub min_leaf: usize,
    /// Entries removed by forced reinsertion (30%, ≥ 1).
    pub reinsert_node: usize,
    /// Entries removed by forced reinsertion from a leaf.
    pub reinsert_leaf: usize,
}

impl SsParams {
    /// Derive parameters from the usable page payload, dimensionality,
    /// and per-entry data area.
    ///
    /// # Panics
    /// Panics if the page cannot hold at least 2 entries per node and
    /// leaf, or if `data_area < 8`.
    #[allow(clippy::panic)] // documented contract panic; fallible callers use try_derive
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        match Self::try_derive(page_capacity, dim, data_area) {
            Some(p) => p,
            // srlint: allow(panic) -- documented contract panic on
            // construction-time configuration; fallible callers (the
            // on-disk open path) go through `try_derive`.
            None => panic!(
                "invalid parameters: page_capacity={page_capacity} dim={dim} \
                 data_area={data_area} (need dim > 0, data_area >= 8, and at \
                 least 2 entries per node and leaf)"
            ),
        }
    }

    /// Non-panicking variant of [`SsParams::derive`] for parameters read
    /// back from disk: returns `None` wherever `derive` would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(SsParams {
            dim,
            data_area,
            max_node,
            min_node: min_fill(max_node),
            max_leaf,
            min_leaf: min_fill(max_leaf),
            reinsert_node: reinsert_count(max_node),
            reinsert_leaf: reinsert_count(max_leaf),
        })
    }

    /// Bytes of one internal-node entry on disk.
    pub fn node_entry_bytes(dim: usize) -> usize {
        (dim + 1) * 8 + 4 + 8
    }

    /// Bytes of one leaf entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

pub(crate) fn min_fill(max: usize) -> usize {
    ((max * 2) / 5).max(2).min(max / 2)
}

pub(crate) fn reinsert_count(max: usize) -> usize {
    ((max * 3) / 10).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_at_16_dimensions() {
        let p = SsParams::derive(8187, 16, 512);
        // node entry = 17*8 + 12 = 148 → (8187-4)/148 = 55
        assert_eq!(p.max_node, 55);
        assert_eq!(p.max_leaf, 12);
        // fanout nearly double the R*-tree's 30 (§2.3)
        assert!(p.max_node >= 2 * 30 - 6);
    }

    #[test]
    fn minimums_are_forty_percent() {
        let p = SsParams::derive(8187, 16, 512);
        assert_eq!(p.min_node, 22);
        assert_eq!(p.min_leaf, 4);
        assert_eq!(p.reinsert_node, 16);
        assert_eq!(p.reinsert_leaf, 3);
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn tiny_page_rejected() {
        let _ = SsParams::derive(200, 64, 512);
    }
}
