//! Query plumbing: regions are scored by distance to the bounding-sphere
//! surface.

use sr_geometry::dist2;
use sr_pager::PageId;
use sr_query::{Expansion, KnnSource, Neighbor};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::SsTree;

struct Source<'a> {
    tree: &'a SsTree,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.points.push(Neighbor {
                        dist2: dist2(e.point.coords(), query),
                        data: e.data,
                    });
                }
            }
            Node::Inner { entries, .. } => {
                for e in &entries {
                    out.branches
                        .push((e.sphere.min_dist2(query), (e.child, level - 1)));
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn knn(tree: &SsTree, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
    sr_query::knn(&Source { tree }, query, k)
}

pub(crate) fn range(tree: &SsTree, query: &[f32], radius: f64) -> Result<Vec<Neighbor>> {
    sr_query::range(&Source { tree }, query, radius)
}

pub(crate) fn contains(tree: &SsTree, point: &sr_geometry::Point, data: u64) -> Result<bool> {
    fn walk(
        tree: &SsTree,
        id: PageId,
        level: u16,
        point: &sr_geometry::Point,
        data: u64,
    ) -> Result<bool> {
        match tree.read_node(id, level)? {
            Node::Leaf(entries) => Ok(entries.iter().any(|e| e.point == *point && e.data == data)),
            Node::Inner { entries, .. } => {
                for e in &entries {
                    if e.sphere.contains_point(point.coords(), 0.0)
                        && walk(tree, e.child, level - 1, point, data)?
                    {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
    walk(tree, tree.root, (tree.height - 1) as u16, point, data)
}
