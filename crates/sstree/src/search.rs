//! Query plumbing: regions are scored by distance to the bounding-sphere
//! surface.

use sr_geometry::{dist2, CONTAINMENT_EPS};
use sr_obs::Recorder;
use sr_pager::PageId;
use sr_query::{Expansion, KnnSource, Neighbor, QueryError};

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::SsTree;

struct Source<'a> {
    tree: &'a SsTree,
}

impl KnnSource for Source<'_> {
    type Node = (PageId, u16);
    type Error = TreeError;

    fn root(&self) -> std::result::Result<Option<Self::Node>, TreeError> {
        // Guard the `height - 1` below: an empty tree has nothing to
        // search, and a height of 0 (corrupt metadata) would underflow.
        if self.tree.is_empty() || self.tree.height == 0 {
            return Ok(None);
        }
        Ok(Some((self.tree.root, (self.tree.height - 1) as u16)))
    }

    fn expand(
        &self,
        &(id, level): &Self::Node,
        query: &[f32],
        out: &mut Expansion<Self::Node>,
    ) -> std::result::Result<(), TreeError> {
        match self.tree.read_node(id, level)? {
            Node::Leaf(entries) => {
                for e in &entries {
                    out.push_point(dist2(e.point.coords(), query), e.data);
                }
            }
            Node::Inner { entries, .. } => {
                for e in &entries {
                    out.push_sphere_branch(e.sphere.min_dist2(query), (e.child, level - 1));
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn knn<R: Recorder + ?Sized>(
    tree: &SsTree,
    query: &[f32],
    k: usize,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::knn_with(&Source { tree }, query, k, rec)
}

pub(crate) fn range<R: Recorder + ?Sized>(
    tree: &SsTree,
    query: &[f32],
    radius: f64,
    rec: &R,
) -> Result<Vec<Neighbor>> {
    sr_query::range_with(&Source { tree }, query, radius, rec).map_err(|e| match e {
        QueryError::InvalidRadius(r) => TreeError::InvalidRadius(r),
        QueryError::Source(e) => e,
    })
}

pub(crate) fn contains(tree: &SsTree, point: &sr_geometry::Point, data: u64) -> Result<bool> {
    fn walk(
        tree: &SsTree,
        id: PageId,
        level: u16,
        point: &sr_geometry::Point,
        data: u64,
    ) -> Result<bool> {
        match tree.read_node(id, level)? {
            Node::Leaf(entries) => Ok(entries.iter().any(|e| e.point == *point && e.data == data)),
            Node::Inner { entries, .. } => {
                for e in &entries {
                    // Spheres are rebuilt from rounded f32 centroids, so a
                    // stored point can sit a few ulps outside its sphere;
                    // an exact test made contains/delete miss live entries.
                    if e.sphere.contains_point(point.coords(), CONTAINMENT_EPS)
                        && walk(tree, e.child, level - 1, point, data)?
                    {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }
    if tree.is_empty() || tree.height == 0 {
        return Ok(false);
    }
    walk(tree, tree.root, (tree.height - 1) as u16, point, data)
}
