//! In-memory node representation, region computation, and page codec.

use sr_geometry::{
    bounding_sphere_of_points, enclosing_radius_spheres, next_radius_up, Centroid, Point, Sphere,
};
use sr_pager::{put_leaf_columns, LeafColumns, PageCodec, PageId, PageReader};

use crate::error::{Result, TreeError};
use crate::params::{SsParams, NODE_HEADER};

/// One point stored in a leaf.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub point: Point,
    pub data: u64,
}

/// One child reference stored in an internal node: the child's bounding
/// sphere, the number of points beneath it (the `w` of the paper's node
/// layout, which weights the centroid computation), and the child page.
#[derive(Clone, Debug)]
pub(crate) struct InnerEntry {
    pub sphere: Sphere,
    pub weight: u64,
    pub child: PageId,
}

/// A materialized node. Level 0 is the leaf level.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Inner {
        level: u16,
        entries: Vec<InnerEntry>,
    },
}

impl Node {
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// Total points in this node's subtree.
    pub fn weight(&self) -> u64 {
        match self {
            Node::Leaf(e) => e.len() as u64,
            Node::Inner { entries, .. } => entries.iter().map(|e| e.weight).sum(),
        }
    }

    /// The SS-tree region of this node: a sphere centered on the weighted
    /// centroid, with radius `d_s` — just enough to enclose every child
    /// sphere (every point, for a leaf).
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] for an empty or zero-weight node — both are
    /// reachable from a corrupted page, never from a well-formed tree.
    pub fn region(&self) -> Result<Sphere> {
        match self {
            Node::Leaf(entries) => {
                let pts: Vec<&[f32]> = entries.iter().map(|e| e.point.coords()).collect();
                bounding_sphere_of_points(&pts)
                    .ok_or_else(|| TreeError::Corrupt("region of an empty leaf".into()))
            }
            Node::Inner { entries, .. } => {
                let first = entries
                    .first()
                    .ok_or_else(|| TreeError::Corrupt("region of an empty node".into()))?;
                let mut c = Centroid::new(first.sphere.dim());
                for e in entries {
                    c.add(e.sphere.center().coords(), e.weight);
                }
                let center = c.finish().ok_or_else(|| {
                    TreeError::Corrupt("zero total weight in an internal node".into())
                })?;
                let d_s = enclosing_radius_spheres(
                    &center,
                    entries
                        .iter()
                        .map(|e| (e.sphere.center().coords(), e.sphere.radius())),
                );
                Ok(Sphere::new(center, next_radius_up(d_s)))
            }
        }
    }

    /// The centroid this node's region would be centered on — the target
    /// of the SS-tree's nearest-centroid ChooseSubtree.
    pub fn centroid(&self) -> Result<Point> {
        Ok(self.region()?.center().clone())
    }

    /// Serialize into a page payload.
    ///
    /// # Errors
    /// [`TreeError::Corrupt`] when the node violates the on-disk format's
    /// field widths or the encoded entries overrun `capacity`.
    pub fn encode(&self, params: &SsParams, capacity: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; capacity];
        let mut c = PageCodec::new(&mut buf);
        match self {
            Node::Leaf(entries) => {
                // Columnar (dimension-major) layout shared by every index
                // crate — same total bytes as the old row-major form, so
                // the fanout arithmetic is untouched.
                let refs: Vec<(&[f32], u64)> =
                    entries.iter().map(|e| (e.point.coords(), e.data)).collect();
                put_leaf_columns(&mut c, params.dim, params.data_area, &refs)?;
            }
            Node::Inner { entries, .. } => {
                c.put_u16(self.level())?;
                let n = u16::try_from(self.len()).map_err(|_| {
                    TreeError::Corrupt(format!("{} entries overflow the u16 count", self.len()))
                })?;
                c.put_u16(n)?;
                for e in entries {
                    let weight = u32::try_from(e.weight).map_err(|_| {
                        TreeError::Corrupt(format!(
                            "subtree weight {} overflows the u32 field",
                            e.weight
                        ))
                    })?;
                    c.put_coords(e.sphere.center().coords())?;
                    c.put_f64(f64::from(e.sphere.radius()))?;
                    c.put_u32(weight)?;
                    c.put_u64(e.child)?;
                }
            }
        }
        let len = c.pos();
        buf.truncate(len);
        Ok(buf)
    }

    /// Deserialize from a page payload, validating every field whose
    /// misvalue would later feed a panicking constructor: sphere radii must
    /// be finite and non-negative, coordinates finite.
    pub fn decode(payload: &[u8], params: &SsParams) -> Result<Node> {
        if payload.len() < NODE_HEADER {
            return Err(TreeError::NotThisIndex("node page too short".into()));
        }
        let mut c = PageReader::new(payload);
        let level = c.get_u16()?;
        let n = usize::from(c.get_u16()?);
        if level == 0 {
            let need = n * SsParams::leaf_entry_bytes(params.dim, params.data_area);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated leaf page".into()));
            }
            let cols = LeafColumns::parse(payload, params.dim)?;
            let mut entries = Vec::with_capacity(n);
            let mut coords = Vec::with_capacity(params.dim);
            for (i, data) in cols.data_ids().enumerate() {
                cols.point_into(i, &mut coords)?;
                if !all_finite(&coords) {
                    return Err(TreeError::Corrupt("non-finite leaf coordinate".into()));
                }
                // On-disk bytes are untrusted input: the fallible
                // constructor turns a zero-dimensional page into a typed
                // error instead of a panic.
                let point = Point::try_new(coords.as_slice())
                    .map_err(|e| TreeError::Corrupt(e.to_string()))?;
                entries.push(LeafEntry { point, data });
            }
            Ok(Node::Leaf(entries))
        } else {
            let need = n * SsParams::node_entry_bytes(params.dim);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated node page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let center = c.get_coords(params.dim)?;
                let radius = c.get_f64()? as f32;
                let weight = u64::from(c.get_u32()?);
                let child = c.get_u64()?;
                if !all_finite(&center) || !radius.is_finite() || radius < 0.0 {
                    return Err(TreeError::Corrupt("invalid bounding sphere on disk".into()));
                }
                entries.push(InnerEntry {
                    sphere: Sphere::new(
                        Point::try_new(center).map_err(|e| TreeError::Corrupt(e.to_string()))?,
                        radius,
                    ),
                    weight,
                    child,
                });
            }
            Ok(Node::Inner { level, entries })
        }
    }
}

/// True when every coordinate is a finite float (rejects NaN and ±∞, both
/// of which would poison centroid and distance arithmetic downstream).
fn all_finite(coords: &[f32]) -> bool {
    coords.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SsParams {
        SsParams::derive(8187, 3, 512)
    }

    #[test]
    fn leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![LeafEntry {
            point: Point::new(vec![1.5, -2.0, 0.25]),
            data: 7,
        }]);
        let bytes = node.encode(&p, 8187).unwrap();
        let back = Node::decode(&bytes, &p).unwrap();
        if let Node::Leaf(e) = back {
            assert_eq!(e[0].point.coords(), &[1.5, -2.0, 0.25]);
            assert_eq!(e[0].data, 7);
        } else {
            panic!("expected leaf");
        }
    }

    #[test]
    fn inner_roundtrip() {
        let p = params();
        let node = Node::Inner {
            level: 2,
            entries: vec![InnerEntry {
                sphere: Sphere::new(Point::new(vec![0.5, 0.5, 0.5]), 1.25),
                weight: 99,
                child: 31,
            }],
        };
        let bytes = node.encode(&p, 8187).unwrap();
        let back = Node::decode(&bytes, &p).unwrap();
        if let Node::Inner { entries, level } = back {
            assert_eq!(level, 2);
            assert_eq!(entries[0].sphere.radius(), 1.25);
            assert_eq!(entries[0].weight, 99);
            assert_eq!(entries[0].child, 31);
        } else {
            panic!("expected inner");
        }
    }

    #[test]
    fn leaf_region_contains_points() {
        let node = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![0.0, 0.0, 0.0]),
                data: 0,
            },
            LeafEntry {
                point: Point::new(vec![1.0, 1.0, 1.0]),
                data: 1,
            },
            LeafEntry {
                point: Point::new(vec![0.5, 0.3, 0.9]),
                data: 2,
            },
        ]);
        let s = node.region().unwrap();
        if let Node::Leaf(entries) = &node {
            for e in entries {
                assert!(s.contains_point(e.point.coords(), 0.0));
            }
        }
        assert_eq!(node.weight(), 3);
    }

    #[test]
    fn inner_region_contains_child_spheres() {
        let mk = |x: f32, r: f32, w: u64| InnerEntry {
            sphere: Sphere::new(Point::new(vec![x, 0.0, 0.0]), r),
            weight: w,
            child: 0,
        };
        let node = Node::Inner {
            level: 1,
            entries: vec![mk(0.0, 0.5, 10), mk(4.0, 1.0, 30)],
        };
        let s = node.region().unwrap();
        if let Node::Inner { entries, .. } = &node {
            for e in entries {
                assert!(
                    s.contains_sphere(&e.sphere, 1e-6),
                    "child sphere escaped: parent {s:?} child {:?}",
                    e.sphere
                );
            }
        }
        // centroid weighted 10:30 toward x=4 → x = 3.0
        assert!((s.center()[0] - 3.0).abs() < 1e-6);
        assert_eq!(node.weight(), 40);
    }
}
