//! Seeded workload tapes: concrete operation sequences for the
//! differential executor.
//!
//! A tape is *materialized* — every operation carries its full operands
//! (the point, the id, the query, the radius) rather than being derived
//! from a seed at replay time. That choice is what makes shrinking work:
//! any subsequence of a tape is itself a valid tape and replays
//! identically, because deleting an `Insert` merely turns the matching
//! `Delete` into a consistent not-found in both the trees and the model.

use sr_dataset::{cluster, real_sim, uniform, ClusterSpec, SeededRng};
use sr_geometry::Point;

/// One operation of a workload tape, with all operands materialized.
#[derive(Clone, Debug)]
pub enum Op {
    /// Insert `point` with payload `id`.
    Insert(Point, u64),
    /// Delete the entry `(point, id)`; may be a miss.
    Delete(Point, u64),
    /// k-nearest-neighbor query.
    Knn(Point, usize),
    /// Range query with the given radius.
    Range(Point, f64),
}

impl Op {
    /// Short tag for failure messages.
    pub fn tag(&self) -> &'static str {
        match self {
            Op::Insert(..) => "insert",
            Op::Delete(..) => "delete",
            Op::Knn(..) => "knn",
            Op::Range(..) => "range",
        }
    }
}

/// The data distribution the tape's points are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataDist {
    /// Uniform in the unit cube (§3.1).
    Uniform,
    /// Clustered (§5.4).
    Clustered,
    /// Simulated color-histogram vectors (§3.1 "real data").
    RealSim,
}

impl DataDist {
    /// Parse the `srtool fuzz --dist` spelling.
    pub fn parse(s: &str) -> Option<DataDist> {
        match s {
            "uniform" => Some(DataDist::Uniform),
            "cluster" | "clustered" => Some(DataDist::Clustered),
            "real" | "realsim" | "real-sim" => Some(DataDist::RealSim),
            _ => None,
        }
    }

    /// The canonical spelling, for `SEED=` replay lines.
    pub fn name(&self) -> &'static str {
        match self {
            DataDist::Uniform => "uniform",
            DataDist::Clustered => "cluster",
            DataDist::RealSim => "real",
        }
    }
}

/// Shape of a generated workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Total number of operations on the tape.
    pub ops: usize,
    /// Dimensionality of every point.
    pub dim: usize,
    /// Distribution the insert points are drawn from.
    pub dist: DataDist,
    /// Relative weights of insert / delete / knn / range draws.
    /// Inserts are forced while the live set is empty.
    pub weights: [u32; 4],
}

impl WorkloadSpec {
    /// The mix used by the tier-1 fuzz tests: insert-heavy with steady
    /// churn and a query every few steps.
    pub fn standard(ops: usize, dim: usize, dist: DataDist) -> Self {
        WorkloadSpec {
            ops,
            dim,
            dist,
            weights: [55, 25, 15, 5],
        }
    }
}

/// A fully materialized operation sequence.
#[derive(Clone, Debug)]
pub struct OpTape {
    /// Seed the tape was generated from (kept for reporting).
    pub seed: u64,
    /// Dimensionality of every point on the tape.
    pub dim: usize,
    /// Distribution tag (kept for reporting).
    pub dist: DataDist,
    /// The operations.
    pub ops: Vec<Op>,
}

/// Generate a tape deterministically from `seed`.
///
/// Every inserted point is distinct (the K-D-B-tree cannot store more
/// coincident points than fit one page, so coincident-point behavior is
/// covered by dedicated tests, not the differential fuzzer). Deletes
/// target a live entry 90% of the time and a guaranteed miss otherwise,
/// exercising the not-found path. Queries are sampled near live data so
/// they traverse meaningful subtrees.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> OpTape {
    assert!(spec.dim > 0 && spec.ops > 0);
    let mut rng = SeededRng::seed_from_u64(seed);

    // Draw the insert pool: one distinct point per potential insert.
    let mut pool = match spec.dist {
        DataDist::Uniform => uniform(spec.ops, spec.dim, seed ^ 0xDA7A_0001),
        DataDist::Clustered => {
            let clusters = (spec.ops / 64).max(2);
            cluster(
                ClusterSpec {
                    clusters,
                    points_per_cluster: spec.ops / clusters + 1,
                    max_radius: 0.08,
                },
                spec.dim,
                seed ^ 0xDA7A_0002,
            )
        }
        DataDist::RealSim => real_sim(spec.ops, spec.dim, seed ^ 0xDA7A_0003),
    };
    // Enforce distinctness (coincidences are astronomically rare for
    // continuous generators, but the guarantee matters).
    pool.sort_by(|a, b| a.coords().partial_cmp(b.coords()).unwrap());
    pool.dedup();
    rng.shuffle(&mut pool);

    let total_w: u32 = spec.weights.iter().sum();
    let mut ops = Vec::with_capacity(spec.ops);
    let mut live: Vec<(Point, u64)> = Vec::new();
    let mut next_id = 0u64;

    for _ in 0..spec.ops {
        let mut roll = rng.random_range(0..total_w as usize) as u32;
        let choice = spec
            .weights
            .iter()
            .position(|&w| {
                if roll < w {
                    true
                } else {
                    roll -= w;
                    false
                }
            })
            .unwrap_or(0);
        let choice = if live.is_empty() || (choice == 0 && pool.is_empty()) {
            if pool.is_empty() {
                2 // both exhausted-insert and empty-live: fall back to knn
            } else {
                0
            }
        } else {
            choice
        };
        match choice {
            0 => {
                let p = pool.pop().expect("pool sized to the op budget");
                ops.push(Op::Insert(p.clone(), next_id));
                live.push((p, next_id));
                next_id += 1;
            }
            1 => {
                if rng.random_bool(0.9) {
                    let i = rng.random_range(0..live.len());
                    let (p, id) = live.swap_remove(i);
                    ops.push(Op::Delete(p, id));
                } else {
                    // Guaranteed miss: an id no insert ever used.
                    let i = rng.random_range(0..live.len());
                    let p = live[i].0.clone();
                    ops.push(Op::Delete(p, u64::MAX - next_id));
                }
            }
            2 => {
                let q = query_point(&mut rng, &live, spec.dim);
                let k = 1 + rng.random_range(0..10);
                ops.push(Op::Knn(q, k));
            }
            _ => {
                let q = query_point(&mut rng, &live, spec.dim);
                let radius = 0.05 + 0.45 * rng.random::<f64>();
                ops.push(Op::Range(q, radius));
            }
        }
    }
    OpTape {
        seed,
        dim: spec.dim,
        dist: spec.dist,
        ops,
    }
}

/// A query point: a live point perturbed slightly (so it lands inside
/// populated regions but is rarely an exact data point), or a uniform
/// point when nothing is live.
fn query_point(rng: &mut SeededRng, live: &[(Point, u64)], dim: usize) -> Point {
    if live.is_empty() {
        return Point::new((0..dim).map(|_| rng.random::<f32>()).collect::<Vec<_>>());
    }
    let base = &live[rng.random_range(0..live.len())].0;
    let coords: Vec<f32> = base
        .coords()
        .iter()
        .map(|&c| c + (rng.random::<f32>() - 0.5) * 0.02)
        .collect();
    Point::new(coords)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::standard(500, 4, DataDist::Uniform);
        let a = generate(&spec, 42);
        let b = generate(&spec, 42);
        assert_eq!(a.ops.len(), b.ops.len());
        for (x, y) in a.ops.iter().zip(b.ops.iter()) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        let c = generate(&spec, 43);
        assert!(
            a.ops
                .iter()
                .zip(c.ops.iter())
                .any(|(x, y)| format!("{x:?}") != format!("{y:?}")),
            "different seeds must differ"
        );
    }

    #[test]
    fn inserted_points_are_distinct() {
        let spec = WorkloadSpec::standard(800, 4, DataDist::Clustered);
        let tape = generate(&spec, 7);
        let mut seen = Vec::new();
        for op in &tape.ops {
            if let Op::Insert(p, _) = op {
                assert!(!seen.contains(p), "duplicate insert point");
                seen.push(p.clone());
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn op_mix_roughly_matches_weights() {
        let spec = WorkloadSpec::standard(2_000, 4, DataDist::Uniform);
        let tape = generate(&spec, 11);
        let inserts = tape.ops.iter().filter(|o| o.tag() == "insert").count();
        let deletes = tape.ops.iter().filter(|o| o.tag() == "delete").count();
        let queries = tape.ops.len() - inserts - deletes;
        assert!(inserts > deletes, "{inserts} inserts vs {deletes} deletes");
        assert!(queries > 100, "only {queries} queries");
        assert_eq!(tape.ops.len(), 2_000);
    }

    #[test]
    fn all_distributions_generate() {
        for dist in [DataDist::Uniform, DataDist::Clustered, DataDist::RealSim] {
            let spec = WorkloadSpec::standard(200, 8, dist);
            let tape = generate(&spec, 3);
            assert_eq!(tape.ops.len(), 200);
            assert_eq!(tape.dim, 8);
        }
    }

    #[test]
    fn dist_parse_round_trips() {
        for dist in [DataDist::Uniform, DataDist::Clustered, DataDist::RealSim] {
            assert_eq!(DataDist::parse(dist.name()), Some(dist));
        }
        assert_eq!(DataDist::parse("nope"), None);
    }
}
