//! Crash-point recovery harness.
//!
//! The WAL's contract (see `sr_pager::wal` and DESIGN.md §WAL) is that a
//! crash at *any* I/O point leaves the store recoverable to the most
//! recent committed checkpoint — or, if the crash interrupted a commit,
//! to either side of that commit (atomicity). This module packages the
//! machinery the crash-recovery suites share:
//!
//! * [`AnyTree`] — one enum over the four dynamic index structures so a
//!   single driver can run the identical workload through each, with
//!   errors flattened to `String` (a crashed run surfaces whatever typed
//!   error the tree wraps the injected fault in; the harness only cares
//!   *that* it failed, [`FaultHandle::crashed`] tells it *why*);
//! * [`SharedParts`] / [`faulted_parts`] / [`reopen`] — a memory-backed
//!   page-store + log-store pair whose clones share bytes, wrapped in one
//!   fault state spanning both halves. After the faulted `PageFile` dies,
//!   [`reopen`] replays the WAL from the surviving bytes exactly like a
//!   process restart would;
//! * [`matches_model`] — oracle-exact equivalence: recovered tree and
//!   [`Model`] must agree on length, pass the structure's own
//!   invariant `verify`, and answer a probe set of k-NN and range
//!   queries identically (ids and distances).

use sr_geometry::Point;
use sr_kdbtree::KdbTree;
use sr_pager::{
    FaultHandle, FaultInjector, LogStore, MemLogStore, MemPageStore, PageFile, PageStore,
};
use sr_query::Neighbor;
use sr_rstar::RstarTree;
use sr_sstree::SsTree;
use sr_tree::SrTree;
use sr_vamsplit::VamTree;

use crate::diff::check_answer;
use crate::model::Model;

/// Which dynamic index structure a crash run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeKind {
    /// The paper's SR-tree (`sr-tree` crate).
    Sr,
    /// The SS-tree baseline.
    Ss,
    /// The R*-tree baseline.
    Rstar,
    /// The K-D-B-tree baseline.
    Kdb,
}

/// All four dynamic structures, in fleet order.
pub const DYNAMIC_KINDS: [TreeKind; 4] =
    [TreeKind::Sr, TreeKind::Ss, TreeKind::Rstar, TreeKind::Kdb];

impl TreeKind {
    /// Stable name used in failure messages.
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Sr => "sr-tree",
            TreeKind::Ss => "ss-tree",
            TreeKind::Rstar => "rstar-tree",
            TreeKind::Kdb => "kdb-tree",
        }
    }
}

/// One of the four dynamic trees behind a uniform, `String`-error API.
pub enum AnyTree {
    /// SR-tree.
    Sr(SrTree),
    /// SS-tree.
    Ss(SsTree),
    /// R*-tree.
    Rstar(RstarTree),
    /// K-D-B-tree.
    Kdb(KdbTree),
}

impl AnyTree {
    /// Create a fresh tree of `kind` on `pf`.
    pub fn create(
        kind: TreeKind,
        pf: PageFile,
        dim: usize,
        data_area: usize,
    ) -> Result<Self, String> {
        match kind {
            TreeKind::Sr => SrTree::create_from(pf, dim, data_area)
                .map(AnyTree::Sr)
                .map_err(|e| e.to_string()),
            TreeKind::Ss => SsTree::create_from(pf, dim, data_area)
                .map(AnyTree::Ss)
                .map_err(|e| e.to_string()),
            TreeKind::Rstar => RstarTree::create_from(pf, dim, data_area)
                .map(AnyTree::Rstar)
                .map_err(|e| e.to_string()),
            TreeKind::Kdb => KdbTree::create_from(pf, dim, data_area)
                .map(AnyTree::Kdb)
                .map_err(|e| e.to_string()),
        }
    }

    /// Open an existing tree of `kind` from `pf`.
    pub fn open(kind: TreeKind, pf: PageFile) -> Result<Self, String> {
        match kind {
            TreeKind::Sr => SrTree::open_from(pf)
                .map(AnyTree::Sr)
                .map_err(|e| e.to_string()),
            TreeKind::Ss => SsTree::open_from(pf)
                .map(AnyTree::Ss)
                .map_err(|e| e.to_string()),
            TreeKind::Rstar => RstarTree::open_from(pf)
                .map(AnyTree::Rstar)
                .map_err(|e| e.to_string()),
            TreeKind::Kdb => KdbTree::open_from(pf)
                .map(AnyTree::Kdb)
                .map_err(|e| e.to_string()),
        }
    }

    /// Insert one point.
    pub fn insert(&mut self, point: Point, data: u64) -> Result<(), String> {
        match self {
            AnyTree::Sr(t) => t.insert(point, data).map_err(|e| e.to_string()),
            AnyTree::Ss(t) => t.insert(point, data).map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => t.insert(point, data).map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => t.insert(point, data).map_err(|e| e.to_string()),
        }
    }

    /// Delete one (point, id) pair; `Ok(true)` if it was present.
    pub fn delete(&mut self, point: &Point, data: u64) -> Result<bool, String> {
        match self {
            AnyTree::Sr(t) => t.delete(point, data).map_err(|e| e.to_string()),
            AnyTree::Ss(t) => t.delete(point, data).map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => t.delete(point, data).map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => t.delete(point, data).map_err(|e| e.to_string()),
        }
    }

    /// Commit: tree meta + pager flush (WAL commit marker + checkpoint).
    pub fn flush(&self) -> Result<(), String> {
        match self {
            AnyTree::Sr(t) => t.flush().map_err(|e| e.to_string()),
            AnyTree::Ss(t) => t.flush().map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => t.flush().map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => t.flush().map_err(|e| e.to_string()),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        match self {
            AnyTree::Sr(t) => t.len(),
            AnyTree::Ss(t) => t.len(),
            AnyTree::Rstar(t) => t.len(),
            AnyTree::Kdb(t) => t.len(),
        }
    }

    /// Whether the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// k nearest neighbors.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, String> {
        match self {
            AnyTree::Sr(t) => t.knn(query, k).map_err(|e| e.to_string()),
            AnyTree::Ss(t) => t.knn(query, k).map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => t.knn(query, k).map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => t.knn(query, k).map_err(|e| e.to_string()),
        }
    }

    /// All entries within `radius` of `query`.
    pub fn range(&self, query: &[f32], radius: f64) -> Result<Vec<Neighbor>, String> {
        match self {
            AnyTree::Sr(t) => t.range(query, radius).map_err(|e| e.to_string()),
            AnyTree::Ss(t) => t.range(query, radius).map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => t.range(query, radius).map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => t.range(query, radius).map_err(|e| e.to_string()),
        }
    }

    /// Run the structure's own invariant checker.
    pub fn verify(&self) -> Result<(), String> {
        match self {
            AnyTree::Sr(t) => sr_tree::verify::check(t)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            AnyTree::Ss(t) => sr_sstree::verify::check(t)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            AnyTree::Rstar(t) => sr_rstar::verify::check(t)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            AnyTree::Kdb(t) => sr_kdbtree::verify::check(t)
                .map(|_| ())
                .map_err(|e| e.to_string()),
        }
    }

    /// The pager underneath (for stats assertions).
    pub fn pager(&self) -> &PageFile {
        match self {
            AnyTree::Sr(t) => t.pager(),
            AnyTree::Ss(t) => t.pager(),
            AnyTree::Rstar(t) => t.pager(),
            AnyTree::Kdb(t) => t.pager(),
        }
    }
}

/// Run the VAMSplit verifier on a recovered static tree.
pub fn verify_vam(tree: &VamTree) -> Result<(), String> {
    sr_vamsplit::verify::check(tree)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Cloneable handles on the surviving bytes of a faulted store pair.
///
/// `MemPageStore` and `MemLogStore` clones share their byte buffers, so
/// holding these while the faulted [`PageFile`] lives — and reopening
/// from fresh clones after it dies — models a process crash: everything
/// the "process" wrote before the fault latched is visible, everything
/// after is gone because the latch failed it.
pub struct SharedParts {
    /// Shares pages with the store the faulted pager writes through.
    pub store: MemPageStore,
    /// Shares log bytes with the WAL the faulted pager appends to.
    pub log: MemLogStore,
}

/// Build a memory-backed (page store, log store) pair wrapped in one
/// fault state, plus cloneable handles on the underlying bytes.
pub fn faulted_parts(
    page_size: usize,
) -> (
    Box<dyn PageStore>,
    Box<dyn LogStore>,
    FaultHandle,
    SharedParts,
) {
    let store = MemPageStore::new(page_size);
    let log = MemLogStore::new();
    let shared = SharedParts {
        store: store.clone(),
        log: log.clone(),
    };
    let (s, l, handle) = FaultInjector::wrap_parts(Box::new(store), Box::new(log));
    (s, l, handle, shared)
}

/// Reopen a pager over the surviving bytes, replaying the WAL exactly
/// as a process restart would. Fails only if no committed state ever
/// reached the store (e.g. the crash hit the pager's own creation
/// commit).
pub fn reopen(shared: &SharedParts) -> sr_pager::Result<PageFile> {
    PageFile::open_from_parts(Box::new(shared.store.clone()), Box::new(shared.log.clone()))
}

/// Oracle-exact equivalence between a recovered tree and a [`Model`]
/// snapshot: same length, invariants hold, and identical answers (ids
/// and distances) on every probe query.
pub fn matches_model(
    tree: &AnyTree,
    model: &Model,
    queries: &[Point],
    k: usize,
    radius: f64,
) -> Result<(), String> {
    if tree.len() != model.len() as u64 {
        return Err(format!("len {} != oracle {}", tree.len(), model.len()));
    }
    tree.verify().map_err(|e| format!("verify: {e}"))?;
    for (qi, q) in queries.iter().enumerate() {
        let got = tree
            .knn(q.coords(), k)
            .map_err(|e| format!("knn[{qi}]: {e}"))?;
        let want = model.knn(q.coords(), k);
        check_answer("recovered", &got, &want, true).map_err(|e| format!("knn[{qi}]: {e}"))?;
        let got = tree
            .range(q.coords(), radius)
            .map_err(|e| format!("range[{qi}]: {e}"))?;
        let want = model.range(q.coords(), radius);
        check_answer("recovered", &got, &want, true).map_err(|e| format!("range[{qi}]: {e}"))?;
    }
    Ok(())
}
