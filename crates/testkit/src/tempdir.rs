//! A scoped temporary directory that cleans up after itself.
//!
//! The integration suites used to leak `srtree-integration-{pid}`
//! directories on every run; this guard removes the whole directory on
//! drop. Each instance gets a unique path (pid + process-wide counter),
//! so tests running in parallel within one binary never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named directory under the system temp dir, removed
/// (recursively) when the guard is dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create `<system-temp>/<prefix>-<pid>-<n>`.
    pub fn new(prefix: &str) -> io::Result<Self> {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path)?;
        Ok(TempDir { path })
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for a file inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best effort: a failure to clean up must never fail a test.
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let kept;
        {
            let td = TempDir::new("sr-testkit-unit").unwrap();
            kept = td.path().to_path_buf();
            assert!(kept.is_dir());
            fs::write(td.file("x.bin"), b"abc").unwrap();
        }
        assert!(!kept.exists(), "directory must be removed on drop");
    }

    #[test]
    fn instances_do_not_collide() {
        let a = TempDir::new("sr-testkit-unit").unwrap();
        let b = TempDir::new("sr-testkit-unit").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
