//! Deterministic test harness for the SR-tree reproduction.
//!
//! The paper's evaluation (§5) rests on five index structures answering
//! identical queries over the same page store; this crate is the
//! machinery that keeps them honest:
//!
//! * [`workload`] — seeded, fully materialized operation tapes
//!   (insert / delete / k-NN / range) over the paper's three data
//!   distributions;
//! * [`model`] — the brute-force oracle every structure is compared to;
//! * [`diff`] — the differential executor: replay one tape through the
//!   SR-, SS-, R*-, K-D-B-, and VAMSplit trees, assert agreement with
//!   the oracle, run each crate's invariant `verify` on an interval,
//!   and on failure shrink the tape and print a replayable `SEED=`
//!   line;
//! * [`crash`] — the crash-point recovery harness: a fault-wrapped
//!   store pair whose surviving bytes can be reopened like a process
//!   restart, one [`AnyTree`] API over the four dynamic structures,
//!   and oracle-exact recovery checking ([`matches_model`]);
//! * [`stress`] — the seeded-schedule concurrency stress harness:
//!   N threads of deterministic mixed query traffic over one shared
//!   index, yield/spin perturbation drawn from per-thread seeds, and
//!   exact I/O-accounting checks at the join point;
//! * [`TempDir`] — a scoped temp-directory guard for tests that touch
//!   real files;
//! * fault injection — re-exported from `sr_pager` ([`FaultInjector`],
//!   [`FaultHandle`]) so test code needs only this crate.
//!
//! Replay workflow: any failure output contains a line like
//! `SEED=0x2a (replay: srtool fuzz --seed 0x2a --ops 2000 --dim 8
//! --dist uniform)`. Running that command (or re-running the failing
//! test with `SRTREE_FUZZ_SEED=0x2a`) regenerates the identical tape.

#![forbid(unsafe_code)]

pub mod crash;
pub mod diff;
pub mod model;
pub mod stress;
pub mod tempdir;
pub mod workload;

pub use crash::{
    faulted_parts, matches_model, reopen, AnyTree, SharedParts, TreeKind, DYNAMIC_KINDS,
};
pub use diff::{
    check_answer, failure_report, minimize, run_tape, seed_line, DiffConfig, DiffReport,
    Divergence, DIST2_TOL,
};
pub use model::Model;
pub use sr_pager::{FaultHandle, FaultInjector, FaultKind, FaultStats};
pub use stress::{run_stress, total_logical_reads, StressConfig, StressReport};
pub use tempdir::TempDir;
pub use workload::{generate, DataDist, Op, OpTape, WorkloadSpec};

/// Run one full differential fuzz case: generate, replay, and on
/// failure minimize + panic with a replayable report.
///
/// This is the entry point the tier-1 tests and `srtool fuzz` share.
pub fn fuzz_case(spec: &WorkloadSpec, seed: u64, cfg: &DiffConfig) -> DiffReport {
    let tape = generate(spec, seed);
    match run_tape(&tape, cfg) {
        Ok(report) => report,
        Err(d) => {
            let minimized = minimize(&tape, cfg, 60);
            panic!("{}", failure_report(&tape, &minimized, &d));
        }
    }
}
