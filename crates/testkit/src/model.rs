//! The oracle: a trivially correct reference implementation of the
//! index contract, backed by a flat vector and brute-force search.
//!
//! Extracted from the ad-hoc `Model` structs the integration suites
//! grew independently; the differential executor compares every tree
//! against this single source of truth.

use sr_geometry::Point;
use sr_query::{brute_force_knn, brute_force_range, Neighbor};

/// Reference set mirroring what every index should contain.
#[derive(Clone, Debug, Default)]
pub struct Model {
    /// The live `(point, id)` entries, in insertion order.
    pub live: Vec<(Point, u64)>,
}

impl Model {
    /// An empty model.
    pub fn new() -> Self {
        Model { live: Vec::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the model is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Record an insert.
    pub fn insert(&mut self, point: Point, id: u64) {
        self.live.push((point, id));
    }

    /// Remove `(point, id)` if present; returns whether it was live,
    /// matching the `delete` contract of every tree.
    pub fn delete(&mut self, point: &Point, id: u64) -> bool {
        match self.live.iter().position(|(p, i)| *i == id && p == point) {
            Some(pos) => {
                self.live.swap_remove(pos);
                true
            }
            None => false,
        }
    }

    /// Ground-truth k-NN over the live set.
    pub fn knn(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        brute_force_knn(self.live.iter().map(|(p, id)| (p.coords(), *id)), query, k)
    }

    /// Ground-truth range query over the live set.
    pub fn range(&self, query: &[f32], radius: f64) -> Vec<Neighbor> {
        brute_force_range(
            self.live.iter().map(|(p, id)| (p.coords(), *id)),
            query,
            radius,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(coords: &[f32]) -> Point {
        Point::new(coords.to_vec())
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut m = Model::new();
        m.insert(p(&[0.0, 0.0]), 1);
        m.insert(p(&[1.0, 1.0]), 2);
        assert_eq!(m.len(), 2);
        assert!(m.delete(&p(&[0.0, 0.0]), 1));
        assert!(!m.delete(&p(&[0.0, 0.0]), 1), "second delete is a miss");
        assert!(!m.delete(&p(&[1.0, 1.0]), 99), "wrong id is a miss");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn knn_orders_by_distance() {
        let mut m = Model::new();
        m.insert(p(&[0.0, 0.0]), 0);
        m.insert(p(&[3.0, 0.0]), 1);
        m.insert(p(&[1.0, 0.0]), 2);
        let got = m.knn(&[0.0, 0.0], 3);
        assert_eq!(
            got.iter().map(|n| n.data).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn range_respects_radius() {
        let mut m = Model::new();
        m.insert(p(&[0.0, 0.0]), 0);
        m.insert(p(&[0.5, 0.0]), 1);
        m.insert(p(&[2.0, 0.0]), 2);
        let got = m.range(&[0.0, 0.0], 1.0);
        assert_eq!(got.iter().map(|n| n.data).collect::<Vec<_>>(), vec![0, 1]);
    }
}
