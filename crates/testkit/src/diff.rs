//! The differential executor: one op tape, five index structures, one
//! oracle.
//!
//! Every operation on the tape is applied to the SR-, SS-, R*-, and
//! K-D-B-trees and to the brute-force [`Model`]; queries must agree with
//! the oracle to within floating-point tolerance (and, thanks to the
//! deterministic tie-breaking shared by all structures, in their id
//! lists too). The VAMSplit R-tree is build-only, so it is rebuilt from
//! the model's live set on a configurable query cadence and checked the
//! same way. Each crate's invariant `verify` runs at a configurable
//! interval.
//!
//! On divergence the executor returns a [`Divergence`] naming the step,
//! the structure, and the disagreement; [`minimize`] shrinks the tape to
//! a (locally) minimal failing subsequence, and [`failure_report`]
//! renders both plus the copy-pastable `SEED=` replay line.

use sr_kdbtree::KdbTree;
use sr_query::Neighbor;
use sr_rstar::RstarTree;
use sr_sstree::SsTree;
use sr_tree::SrTree;
use sr_vamsplit::VamTree;

use sr_query::LeafScan;

use crate::model::Model;
use crate::workload::{Op, OpTape};

/// Distance-squared tolerance for oracle agreement, matching the
/// integration suites.
pub const DIST2_TOL: f64 = 1e-9;

/// Tuning knobs for a differential run.
#[derive(Clone, Copy, Debug)]
pub struct DiffConfig {
    /// Page size for every tree (small pages force deep trees and many
    /// splits, which is where bugs live).
    pub page_size: usize,
    /// Run every crate's invariant `verify` after this many operations
    /// (and once at the end). `0` disables interval checks.
    pub verify_every: usize,
    /// Check the (static, rebuilt-from-model) VAMSplit tree on every
    /// Nth query. `0` disables VAM checks.
    pub vam_every: usize,
    /// Also require id-list equality with the oracle, not just
    /// distances. All structures share deterministic tie-breaking, so
    /// this holds and catches payload mix-ups distances cannot.
    pub check_ids: bool,
    /// After the default (early-abandon) answer is checked against the
    /// oracle, re-run each k-NN through the `Scalar` and `Columnar`
    /// leaf-scan kernels and require bit-identical results — `dist2`
    /// equal by `to_bits`, ids equal rank by rank. The kernels share one
    /// pinned accumulation order, so anything short of bitwise equality
    /// is a kernel bug, not floating-point noise.
    pub compare_scans: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            page_size: 2048,
            verify_every: 500,
            vam_every: 8,
            check_ids: true,
            compare_scans: true,
        }
    }
}

/// What a differential run did (on success).
#[derive(Clone, Copy, Debug, Default)]
pub struct DiffReport {
    /// Operations replayed.
    pub ops: usize,
    /// Inserts applied.
    pub inserts: usize,
    /// Deletes applied (hits and misses).
    pub deletes: usize,
    /// k-NN queries compared.
    pub knns: usize,
    /// Range queries compared.
    pub ranges: usize,
    /// Full five-structure verify sweeps run.
    pub verifies: usize,
    /// VAMSplit rebuilds performed.
    pub vam_rebuilds: usize,
    /// Scalar/Columnar kernel answers proven bit-identical to the
    /// default scan (two per k-NN per structure when `compare_scans`).
    pub scan_checks: usize,
    /// Live entries at the end of the tape.
    pub final_live: usize,
}

/// A disagreement between a structure and the oracle (or an internal
/// error / invariant violation).
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the offending op on the tape (tape length for end-of-run
    /// verification failures).
    pub step: usize,
    /// `insert` / `delete` / `knn` / `range` / `verify`.
    pub op: String,
    /// Which structure disagreed.
    pub structure: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {} ({}): {} diverged: {}",
            self.step, self.op, self.structure, self.detail
        )
    }
}

struct Fleet {
    sr: SrTree,
    ss: SsTree,
    rstar: RstarTree,
    kdb: KdbTree,
    vam: Option<VamTree>,
    vam_dirty: bool,
}

impl Fleet {
    fn create(dim: usize, page_size: usize) -> Result<Fleet, String> {
        Ok(Fleet {
            sr: SrTree::create_in_memory(dim, page_size).map_err(|e| e.to_string())?,
            ss: SsTree::create_in_memory(dim, page_size).map_err(|e| e.to_string())?,
            rstar: RstarTree::create_in_memory(dim, page_size).map_err(|e| e.to_string())?,
            kdb: KdbTree::create_in_memory(dim, page_size).map_err(|e| e.to_string())?,
            vam: None,
            vam_dirty: true,
        })
    }
}

/// Compare one query answer against the oracle's: equal length, dist²
/// within [`DIST2_TOL`] rank by rank, and (optionally) identical id
/// lists. Shared by the differential executor and the crash-recovery
/// harness.
pub fn check_answer(
    structure: &'static str,
    got: &[Neighbor],
    want: &[Neighbor],
    check_ids: bool,
) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} results, oracle has {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if (g.dist2 - w.dist2).abs() >= DIST2_TOL {
            return Err(format!("rank {i}: dist2 {} vs oracle {}", g.dist2, w.dist2));
        }
    }
    if check_ids {
        let got_ids: Vec<u64> = got.iter().map(|n| n.data).collect();
        let want_ids: Vec<u64> = want.iter().map(|n| n.data).collect();
        if got_ids != want_ids {
            return Err(format!("ids {got_ids:?} vs oracle {want_ids:?}"));
        }
    }
    let _ = structure;
    Ok(())
}

/// Require `alt` to be bit-identical to `base`: same length, same ids,
/// same `dist2` bit patterns rank by rank. Used by the kernel-ablation
/// arm: the three leaf-scan kernels pin one accumulation order, so this
/// is an equality the implementation promises, not a tolerance check.
fn check_scan_identical(base: &[Neighbor], alt: &[Neighbor], scan: LeafScan) -> Result<(), String> {
    if base.len() != alt.len() {
        return Err(format!(
            "{scan:?} scan returned {} results, default scan {}",
            alt.len(),
            base.len()
        ));
    }
    for (i, (b, a)) in base.iter().zip(alt.iter()).enumerate() {
        if b.dist2.to_bits() != a.dist2.to_bits() || b.data != a.data {
            return Err(format!(
                "{scan:?} scan rank {i}: ({}, id {}) not bit-identical to \
                 default scan ({}, id {})",
                a.dist2, a.data, b.dist2, b.data
            ));
        }
    }
    Ok(())
}

/// Replay `tape` through all five structures and the oracle.
///
/// Returns the run's statistics, or the first [`Divergence`] found.
pub fn run_tape(tape: &OpTape, cfg: &DiffConfig) -> Result<DiffReport, Divergence> {
    let mut fleet = Fleet::create(tape.dim, cfg.page_size).map_err(|e| Divergence {
        step: 0,
        op: "create".into(),
        structure: "fleet",
        detail: e,
    })?;
    let mut model = Model::new();
    let mut report = DiffReport::default();
    let mut queries_seen = 0usize;

    let div = |step: usize, op: &Op, structure: &'static str, detail: String| Divergence {
        step,
        op: op.tag().into(),
        structure,
        detail,
    };

    for (step, op) in tape.ops.iter().enumerate() {
        match op {
            Op::Insert(p, id) => {
                fleet
                    .sr
                    .insert(p.clone(), *id)
                    .map_err(|e| div(step, op, "sr-tree", e.to_string()))?;
                fleet
                    .ss
                    .insert(p.clone(), *id)
                    .map_err(|e| div(step, op, "ss-tree", e.to_string()))?;
                fleet
                    .rstar
                    .insert(p.clone(), *id)
                    .map_err(|e| div(step, op, "rstar-tree", e.to_string()))?;
                fleet
                    .kdb
                    .insert(p.clone(), *id)
                    .map_err(|e| div(step, op, "kdb-tree", e.to_string()))?;
                model.insert(p.clone(), *id);
                fleet.vam_dirty = true;
                report.inserts += 1;
            }
            Op::Delete(p, id) => {
                let want = model.delete(p, *id);
                let results = [
                    (
                        "sr-tree",
                        fleet.sr.delete(p, *id).map_err(|e| e.to_string()),
                    ),
                    (
                        "ss-tree",
                        fleet.ss.delete(p, *id).map_err(|e| e.to_string()),
                    ),
                    (
                        "rstar-tree",
                        fleet.rstar.delete(p, *id).map_err(|e| e.to_string()),
                    ),
                    (
                        "kdb-tree",
                        fleet.kdb.delete(p, *id).map_err(|e| e.to_string()),
                    ),
                ];
                for (name, r) in results {
                    match r {
                        Ok(found) if found == want => {}
                        Ok(found) => {
                            return Err(div(
                                step,
                                op,
                                name,
                                format!("delete returned {found}, oracle says {want}"),
                            ))
                        }
                        Err(e) => return Err(div(step, op, name, e)),
                    }
                }
                fleet.vam_dirty = want || fleet.vam_dirty;
                report.deletes += 1;
            }
            Op::Knn(q, k) => {
                queries_seen += 1;
                let want = model.knn(q.coords(), *k);
                // Check the default (early-abandon) answer against the
                // oracle, then prove the Scalar and Columnar kernels
                // bit-identical to it — the kernel-ablation fuzz arm.
                macro_rules! check_knn {
                    ($name:literal, $tree:expr) => {{
                        let got = $tree
                            .knn(q.coords(), *k)
                            .map_err(|e| div(step, op, $name, e.to_string()))?;
                        check_answer($name, &got, &want, cfg.check_ids)
                            .map_err(|e| div(step, op, $name, e))?;
                        if cfg.compare_scans {
                            for scan in [LeafScan::Scalar, LeafScan::Columnar] {
                                let alt = $tree
                                    .knn_scan_with(q.coords(), *k, scan, &sr_obs::Noop)
                                    .map_err(|e| div(step, op, $name, e.to_string()))?;
                                check_scan_identical(&got, &alt, scan)
                                    .map_err(|e| div(step, op, $name, e))?;
                                report.scan_checks += 1;
                            }
                        }
                    }};
                }
                check_knn!("sr-tree", fleet.sr);
                check_knn!("ss-tree", fleet.ss);
                check_knn!("rstar-tree", fleet.rstar);
                check_knn!("kdb-tree", fleet.kdb);
                if let Some(vam) = vam_for_query(&mut fleet, &model, cfg, queries_seen, &mut report)
                    .map_err(|e| div(step, op, "vam-tree", e))?
                {
                    check_knn!("vam-tree", vam);
                }
                report.knns += 1;
            }
            Op::Range(q, radius) => {
                queries_seen += 1;
                let want = model.range(q.coords(), *radius);
                let answers = [
                    (
                        "sr-tree",
                        fleet
                            .sr
                            .range(q.coords(), *radius)
                            .map_err(|e| e.to_string()),
                    ),
                    (
                        "ss-tree",
                        fleet
                            .ss
                            .range(q.coords(), *radius)
                            .map_err(|e| e.to_string()),
                    ),
                    (
                        "rstar-tree",
                        fleet
                            .rstar
                            .range(q.coords(), *radius)
                            .map_err(|e| e.to_string()),
                    ),
                    (
                        "kdb-tree",
                        fleet
                            .kdb
                            .range(q.coords(), *radius)
                            .map_err(|e| e.to_string()),
                    ),
                ];
                for (name, r) in answers {
                    let got = r.map_err(|e| div(step, op, name, e))?;
                    check_answer(name, &got, &want, cfg.check_ids)
                        .map_err(|e| div(step, op, name, e))?;
                }
                if let Some(vam) = vam_for_query(&mut fleet, &model, cfg, queries_seen, &mut report)
                    .map_err(|e| div(step, op, "vam-tree", e))?
                {
                    let got = vam
                        .range(q.coords(), *radius)
                        .map_err(|e| div(step, op, "vam-tree", e.to_string()))?;
                    check_answer("vam-tree", &got, &want, cfg.check_ids)
                        .map_err(|e| div(step, op, "vam-tree", e))?;
                }
                report.ranges += 1;
            }
        }

        if cfg.verify_every > 0 && (step + 1) % cfg.verify_every == 0 {
            verify_fleet(&fleet, &model, step + 1)?;
            report.verifies += 1;
        }
        report.ops += 1;
    }

    verify_fleet(&fleet, &model, tape.ops.len())?;
    report.verifies += 1;
    report.final_live = model.len();
    Ok(report)
}

/// The VAMSplit tree is static: rebuild it from the oracle's live set
/// when dirty, on the configured query cadence.
fn vam_for_query<'a>(
    fleet: &'a mut Fleet,
    model: &Model,
    cfg: &DiffConfig,
    queries_seen: usize,
    report: &mut DiffReport,
) -> Result<Option<&'a VamTree>, String> {
    if cfg.vam_every == 0 || !queries_seen.is_multiple_of(cfg.vam_every) || model.is_empty() {
        return Ok(None);
    }
    if fleet.vam_dirty {
        let vam =
            VamTree::build_in_memory(model.live.clone(), model.live[0].0.dim(), cfg.page_size)
                .map_err(|e| format!("rebuild failed: {e}"))?;
        fleet.vam = Some(vam);
        fleet.vam_dirty = false;
        report.vam_rebuilds += 1;
    }
    Ok(fleet.vam.as_ref())
}

/// Run every structure's invariant checker and compare live counts.
fn verify_fleet(fleet: &Fleet, model: &Model, step: usize) -> Result<(), Divergence> {
    let vdiv = |structure: &'static str, detail: String| Divergence {
        step,
        op: "verify".into(),
        structure,
        detail,
    };
    sr_tree::verify::check(&fleet.sr).map_err(|e| vdiv("sr-tree", e.to_string()))?;
    sr_sstree::verify::check(&fleet.ss).map_err(|e| vdiv("ss-tree", e.to_string()))?;
    sr_rstar::verify::check(&fleet.rstar).map_err(|e| vdiv("rstar-tree", e.to_string()))?;
    sr_kdbtree::verify::check(&fleet.kdb).map_err(|e| vdiv("kdb-tree", e.to_string()))?;
    if let Some(vam) = &fleet.vam {
        if !fleet.vam_dirty {
            sr_vamsplit::verify::check(vam).map_err(|e| vdiv("vam-tree", e.to_string()))?;
        }
    }
    let want = model.len() as u64;
    for (name, len) in [
        ("sr-tree", fleet.sr.len()),
        ("ss-tree", fleet.ss.len()),
        ("rstar-tree", fleet.rstar.len()),
        ("kdb-tree", fleet.kdb.len()),
    ] {
        if len != want {
            return Err(vdiv(name, format!("len {len}, oracle has {want}")));
        }
    }
    Ok(())
}

/// Shrink a failing tape to a locally minimal failing subsequence by
/// bounded chunk removal (a ddmin-style pass): repeatedly try dropping
/// contiguous chunks of halving size, keeping any candidate that still
/// fails. Replays are capped so shrinking cannot dominate a CI run.
pub fn minimize(tape: &OpTape, cfg: &DiffConfig, max_replays: usize) -> OpTape {
    let mut ops = tape.ops.clone();
    let mut replays = 0usize;
    let mut chunk = (ops.len() / 2).max(1);
    while chunk >= 1 && replays < max_replays {
        let mut i = 0;
        let mut shrunk = false;
        while i < ops.len() && replays < max_replays {
            if ops.len() <= 1 {
                break;
            }
            let end = (i + chunk).min(ops.len());
            let mut candidate = ops.clone();
            candidate.drain(i..end);
            if candidate.is_empty() {
                i = end;
                continue;
            }
            let cand_tape = OpTape {
                seed: tape.seed,
                dim: tape.dim,
                dist: tape.dist,
                ops: candidate,
            };
            replays += 1;
            if run_tape(&cand_tape, cfg).is_err() {
                ops = cand_tape.ops;
                shrunk = true;
                // keep i: the next chunk slid into place
            } else {
                i = end;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        chunk = (chunk / 2).max(1);
        if chunk == 1 && ops.len() > 256 {
            // Single-op passes over huge tapes would blow the replay
            // budget without much benefit; stop at chunk level 2.
            break;
        }
    }
    OpTape {
        seed: tape.seed,
        dim: tape.dim,
        dist: tape.dist,
        ops,
    }
}

/// The copy-pastable replay line for a tape.
pub fn seed_line(tape: &OpTape) -> String {
    format!(
        "SEED={:#x} (replay: srtool fuzz --seed {:#x} --ops {} --dim {} --dist {})",
        tape.seed,
        tape.seed,
        tape.ops.len(),
        tape.dim,
        tape.dist.name()
    )
}

/// Render a full failure report: divergence, replay line, and the
/// minimized tape's shape.
pub fn failure_report(original: &OpTape, minimized: &OpTape, d: &Divergence) -> String {
    let mut out = String::new();
    out.push_str(&format!("differential divergence: {d}\n"));
    out.push_str(&format!("{}\n", seed_line(original)));
    out.push_str(&format!(
        "minimized from {} to {} ops; minimal failing tail:\n",
        original.ops.len(),
        minimized.ops.len()
    ));
    for (i, op) in minimized.ops.iter().enumerate().rev().take(10).rev() {
        out.push_str(&format!("  [{i}] {op:?}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, DataDist, WorkloadSpec};

    #[test]
    fn clean_tape_passes() {
        let spec = WorkloadSpec::standard(300, 4, DataDist::Uniform);
        let tape = generate(&spec, 99);
        let report = run_tape(&tape, &DiffConfig::default()).expect("no divergence");
        assert_eq!(report.ops, 300);
        assert!(report.inserts > 0 && report.knns > 0);
        assert!(report.verifies >= 1);
    }

    /// A tape doctored to contain an insert the model never sees would
    /// be caught — simulate by checking that a wrong oracle answer is
    /// detected via check_answer directly.
    #[test]
    fn check_answer_catches_mismatches() {
        let a = Neighbor {
            dist2: 1.0,
            data: 1,
        };
        let b = Neighbor {
            dist2: 2.0,
            data: 1,
        };
        let c = Neighbor {
            dist2: 1.0,
            data: 2,
        };
        assert!(check_answer("x", &[a], &[a], true).is_ok());
        assert!(
            check_answer("x", &[a], &[b], true).is_err(),
            "dist2 differs"
        );
        assert!(check_answer("x", &[a], &[c], true).is_err(), "id differs");
        assert!(check_answer("x", &[a], &[c], false).is_ok(), "ids off");
        assert!(check_answer("x", &[a], &[a, b], true).is_err(), "length");
    }

    #[test]
    fn minimize_keeps_failures_failing_on_synthetic_case() {
        // Minimization is driven by run_tape; on a passing tape it is a
        // no-op contract-wise (nothing to shrink), so just check the
        // plumbing terminates and preserves tape metadata.
        let spec = WorkloadSpec::standard(50, 2, DataDist::Uniform);
        let tape = generate(&spec, 5);
        let min = minimize(&tape, &DiffConfig::default(), 10);
        assert_eq!(min.seed, tape.seed);
        assert_eq!(min.dim, tape.dim);
    }

    #[test]
    fn seed_line_is_copy_pastable() {
        let spec = WorkloadSpec::standard(10, 2, DataDist::Clustered);
        let tape = generate(&spec, 0xBEEF);
        let line = seed_line(&tape);
        assert!(line.starts_with("SEED=0xbeef"), "{line}");
        assert!(line.contains("srtool fuzz --seed 0xbeef"), "{line}");
        assert!(line.contains("--dist cluster"), "{line}");
    }
}
