//! Seeded-schedule concurrency stress harness.
//!
//! The L7/L8 lint passes reason about the shared read path statically;
//! this module is the dynamic half of that argument. It hammers one
//! shared index from N threads at once and checks that nothing the
//! annotations promise is violated in practice:
//!
//! * every query answer still matches the brute-force oracle (no torn
//!   page view can produce a wrong neighbor list);
//! * the pager's I/O accounting stays exact at the join point —
//!   `cache_misses == physical_reads` and every logical read is exactly
//!   one hit or one miss, summed over all four page kinds;
//! * per-thread [`IoStats`] snapshots only ever move forward (counters
//!   are monotone even when sampled mid-flight from other threads).
//!
//! Interleavings are perturbed *deterministically*: each thread owns a
//! [`SeededRng`] derived from the run seed and its thread index, and
//! draws from it both the query schedule and a yield/spin "chaos" step
//! before every operation. Two runs with the same seed issue the same
//! per-thread operation tapes; the chaos step shifts how those tapes
//! interleave between runs without making the checked answers
//! nondeterministic. There are no dependencies beyond `std` — no loom,
//! no rayon — so the harness runs anywhere the workspace builds.

use sr_dataset::SeededRng;
use sr_geometry::Point;
use sr_pager::{IoStats, PageKind};
use sr_query::SpatialIndex;

use crate::diff::check_answer;
use crate::model::Model;

/// Shape of one stress run. The defaults mirror the tier-1 test:
/// 8 threads of mixed k-NN / range traffic.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Concurrent query threads.
    pub threads: usize,
    /// Operations each thread performs.
    pub ops_per_thread: usize,
    /// Root seed; per-thread streams are derived from it.
    pub seed: u64,
    /// k-NN draws `k` uniformly from `1..=max_k`.
    pub max_k: usize,
    /// Range queries draw a radius uniformly from `(0, max_radius]`.
    pub max_radius: f64,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            threads: 8,
            ops_per_thread: 64,
            seed: 0x5EED,
            max_k: 12,
            max_radius: 0.6,
        }
    }
}

/// Aggregate tallies from one stress run, all threads joined.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// Total operations executed (k-NN + range).
    pub ops: u64,
    /// k-NN operations among [`StressReport::ops`].
    pub knn_ops: u64,
    /// Range operations among [`StressReport::ops`].
    pub range_ops: u64,
    /// Pager counters for the whole run (stats are reset at entry).
    pub io: IoStats,
}

/// Sum of logical reads over all four page kinds.
pub fn total_logical_reads(s: &IoStats) -> u64 {
    [
        PageKind::Meta,
        PageKind::Node,
        PageKind::Leaf,
        PageKind::Free,
    ]
    .iter()
    .map(|&k| s.logical_reads(k))
    .sum()
}

/// Every counter in `now` is at least its value in `prev`.
///
/// This is the torn-snapshot check: the live counters are independent
/// atomics, so a snapshot taken while other threads run may split a
/// miss from its physical read — but no counter may ever appear to run
/// backwards from any single thread's point of view.
fn snapshot_monotone(prev: &IoStats, now: &IoStats) -> bool {
    let kinds = [
        PageKind::Meta,
        PageKind::Node,
        PageKind::Leaf,
        PageKind::Free,
    ];
    kinds
        .iter()
        .all(|&k| now.logical_reads(k) >= prev.logical_reads(k))
        && kinds
            .iter()
            .all(|&k| now.logical_writes(k) >= prev.logical_writes(k))
        && now.physical_reads() >= prev.physical_reads()
        && now.physical_writes() >= prev.physical_writes()
        && now.cache_hits() >= prev.cache_hits()
        && now.cache_misses() >= prev.cache_misses()
        && now.cache_evictions() >= prev.cache_evictions()
}

/// One deterministic schedule perturbation drawn from the thread's rng.
fn chaos_step(rng: &mut SeededRng) {
    match rng.random_range(0..4) {
        0 => std::thread::yield_now(),
        1 => {
            let spins = rng.random_range(1..96);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

struct ThreadTally {
    ops: u64,
    knn_ops: u64,
    range_ops: u64,
}

fn worker(
    index: &dyn SpatialIndex,
    oracle: &Model,
    queries: &[Point],
    cfg: &StressConfig,
    thread_idx: usize,
) -> Result<ThreadTally, String> {
    // Distinct, well-mixed stream per thread; the golden-ratio multiply
    // keeps nearby thread indices from producing correlated streams.
    let mix = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread_idx as u64 + 1);
    let mut rng = SeededRng::seed_from_u64(cfg.seed ^ mix);
    let kind = index.kind_name();
    let mut tally = ThreadTally {
        ops: 0,
        knn_ops: 0,
        range_ops: 0,
    };
    let mut prev = index.io_stats();
    for op in 0..cfg.ops_per_thread {
        chaos_step(&mut rng);
        let q = &queries[rng.random_range(0..queries.len())];
        let fail = |what: &str, detail: String| {
            format!(
                "{kind}: thread {thread_idx} op {op} (seed {:#x}): {what}: {detail}",
                cfg.seed
            )
        };
        if rng.random_bool(0.7) {
            let k = 1 + rng.random_range(0..cfg.max_k);
            let got = index
                .knn(q.coords(), k)
                .map_err(|e| fail("knn failed", e.to_string()))?;
            let want = oracle.knn(q.coords(), k);
            check_answer(kind, &got, &want, true)
                .map_err(|d| fail("knn diverged from oracle", d))?;
            tally.knn_ops += 1;
        } else {
            // Quantized so the radius set stays small and reproducible.
            let radius = cfg.max_radius * (rng.random_range(1..17) as f64 / 16.0);
            let got = index
                .range(q.coords(), radius)
                .map_err(|e| fail("range failed", e.to_string()))?;
            let want = oracle.range(q.coords(), radius);
            // Distance ties at the radius boundary may order ids
            // differently; distances themselves must agree exactly.
            check_answer(kind, &got, &want, false)
                .map_err(|d| fail("range diverged from oracle", d))?;
            tally.range_ops += 1;
        }
        tally.ops += 1;
        let now = index.io_stats();
        if !snapshot_monotone(&prev, &now) {
            return Err(fail(
                "torn stats snapshot",
                format!("a counter ran backwards: {prev:?} -> {now:?}"),
            ));
        }
        prev = now;
    }
    Ok(tally)
}

/// Run one seeded stress round against a shared index.
///
/// Resets the pager's counters, fans `cfg.threads` workers out over the
/// index with `std::thread::scope`, joins them, and checks the
/// quiescent-point accounting identities. Returns the aggregate report
/// or a replay-ready description of the first violation.
pub fn run_stress(
    index: &dyn SpatialIndex,
    oracle: &Model,
    queries: &[Point],
    cfg: &StressConfig,
) -> Result<StressReport, String> {
    assert!(cfg.threads > 0 && cfg.ops_per_thread > 0 && cfg.max_k > 0);
    assert!(!queries.is_empty(), "stress run needs at least one query");
    index.pager().reset_stats();

    let tallies: Vec<Result<ThreadTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|t| scope.spawn(move || worker(index, oracle, queries, cfg, t)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("stress worker panicked".to_string()))
            })
            .collect()
    });

    let mut report = StressReport {
        ops: 0,
        knn_ops: 0,
        range_ops: 0,
        io: index.io_stats(),
    };
    for tally in tallies {
        let tally = tally?;
        report.ops += tally.ops;
        report.knn_ops += tally.knn_ops;
        report.range_ops += tally.range_ops;
    }

    // Quiescent-point accounting: with every worker joined, the paired
    // counters must line up exactly — this is the dynamic witness for
    // the guarded-by annotations on the pager's shared state.
    let io = &report.io;
    let kind = index.kind_name();
    let logical = total_logical_reads(io);
    if io.cache_misses() != io.physical_reads() {
        return Err(format!(
            "{kind}: seed {:#x}: lost a read under {} threads: misses {} != physical reads {}",
            cfg.seed,
            cfg.threads,
            io.cache_misses(),
            io.physical_reads()
        ));
    }
    if io.cache_hits() + io.cache_misses() != logical {
        return Err(format!(
            "{kind}: seed {:#x}: cache accounting drifted: hits {} + misses {} != logical reads {logical}",
            cfg.seed,
            io.cache_hits(),
            io.cache_misses(),
        ));
    }
    if logical < io.physical_reads() {
        return Err(format!(
            "{kind}: seed {:#x}: pool invented reads: logical {logical} < physical {}",
            cfg.seed,
            io.physical_reads()
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_and_schedules_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = SeededRng::seed_from_u64(seed);
            (0..32).map(|_| rng.random_range(0..1000)).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn monotone_check_accepts_equal_and_grown_snapshots() {
        let a = IoStats::new();
        assert!(snapshot_monotone(&a, &a));
    }
}
