//! The typed request/response model — the values every transport and
//! every dispatcher in the workspace agree on.

use crate::error::RemoteError;

/// One operation against an index. The CLI's offline `knn` / `range` /
/// `insert` subcommands, the server's per-connection loop, and the
/// bench load driver all build these; [`crate::execute`] is the one
/// place they are interpreted.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with `Ack { n: 0 }`.
    Ping,
    /// The `k` nearest neighbors of `query`.
    Knn {
        /// Query point.
        query: Vec<f32>,
        /// Number of neighbors.
        k: u32,
    },
    /// Every point within `radius` of `query`.
    Range {
        /// Query point.
        query: Vec<f32>,
        /// Inclusive search radius.
        radius: f64,
    },
    /// Insert one `(point, data)` entry.
    Insert {
        /// The point.
        point: Vec<f32>,
        /// Payload id stored with it.
        data: u64,
    },
    /// Delete one `(point, data)` entry.
    Delete {
        /// The point.
        point: Vec<f32>,
        /// Payload id it was stored with.
        data: u64,
    },
    /// The index + pager + WAL counters as the `stats --json` schema.
    Stats,
    /// Drain in-flight requests, flush the pager (truncating the WAL),
    /// and stop accepting connections.
    Shutdown,
}

impl Request {
    /// Whether this request only reads the index (safe to run on the
    /// shared read path and to coalesce into one `sr-exec` batch).
    pub fn is_read(&self) -> bool {
        !matches!(self, Request::Insert { .. } | Request::Delete { .. })
    }
}

/// One query hit: payload id and Euclidean distance (not squared — the
/// same number the CLI prints).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Payload id.
    pub data: u64,
    /// Euclidean distance from the query point.
    pub dist: f64,
}

/// The answer to one [`Request`].
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Query hits, ascending by distance (ties by payload id).
    Rows(Vec<Row>),
    /// Acknowledgement; `n` counts entries written (1 per insert, 1 per
    /// delete that found its entry, 0 otherwise).
    Ack {
        /// Entries affected.
        n: u64,
    },
    /// The `stats --json` document.
    Stats {
        /// A single-line JSON object (see `sr_wire::stats_json`).
        json: String,
    },
    /// The server refused or failed the request, and says why.
    Error(RemoteError),
}
