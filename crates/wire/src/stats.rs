//! The `stats --json` document, shared by the CLI `stats` subcommand
//! and the serve `Stats` request so both surfaces answer with the same
//! bytes for the same index state. The leading `"schema_version"` field
//! comes from `sr-obs` like every other JSON surface in the workspace.

use sr_pager::{IoStats, PageKind, WalStats};
use sr_query::SpatialIndex;

/// The I/O-window half of a stats/trace line (plus pool capacity).
pub fn io_json(w: &IoStats, cache_capacity: usize) -> String {
    format!(
        "{{\"node_reads\":{},\"leaf_reads\":{},\"physical_reads\":{},\
         \"physical_writes\":{},\"cache_hits\":{},\"cache_misses\":{},\
         \"cache_evictions\":{},\"cache_capacity\":{cache_capacity}}}",
        w.logical_reads(PageKind::Node),
        w.logical_reads(PageKind::Leaf),
        w.physical_reads(),
        w.physical_writes(),
        w.cache_hits(),
        w.cache_misses(),
        w.cache_evictions(),
    )
}

/// The WAL half of a stats line: store-lifetime durability counters.
pub fn wal_json(ws: &WalStats) -> String {
    format!(
        "{{\"frames_appended\":{},\"commits\":{},\"truncations\":{},\
         \"replays\":{},\"replayed_frames\":{},\"dropped_frames\":{},\
         \"torn_tails\":{},\"wal_bytes\":{}}}",
        ws.frames_appended,
        ws.commits,
        ws.truncations,
        ws.replays,
        ws.replayed_frames,
        ws.dropped_frames,
        ws.torn_tails,
        ws.wal_bytes,
    )
}

/// The members shared by [`stats_json`] and [`stats_json_with`],
/// without the enclosing braces.
fn stats_members(index: &dyn SpatialIndex) -> String {
    let pager = index.pager();
    format!(
        "{},\"kind\":\"{}\",\"points\":{},\"dim\":{},\"height\":{},\
         \"page_size\":{},\"io\":{},\"wal\":{}",
        sr_obs::schema_version_field(),
        index.kind_name(),
        index.len(),
        index.dim(),
        index.height(),
        pager.page_size(),
        io_json(&pager.stats(), pager.cache_capacity()),
        wal_json(&pager.wal_stats()),
    )
}

/// The whole `stats --json` document for one index: identity, shape,
/// I/O window since open, WAL counters.
pub fn stats_json(index: &dyn SpatialIndex) -> String {
    format!("{{{}}}", stats_members(index))
}

/// [`stats_json`] plus a trailing `"metrics"` member carrying a query
/// metrics snapshot — the serve `Stats` response, which folds in the
/// service-lifetime recorder on top of the pager-level counters.
pub fn stats_json_with(index: &dyn SpatialIndex, metrics: &sr_obs::MetricsSnapshot) -> String {
    format!(
        "{{{},\"metrics\":{}}}",
        stats_members(index),
        metrics.to_json()
    )
}
