//! The typed request/response protocol between `srtool` and the query
//! service in `sr-serve`.
//!
//! This crate is the API redesign at the center of the serving work:
//! instead of per-subcommand argument plumbing, every query-shaped
//! operation in the workspace — the CLI `knn` / `range` / `insert`
//! subcommands, the server's per-connection dispatch, the bench load
//! driver — builds a typed [`Request`] value and hands it to one
//! [`execute`] entry point over `&mut dyn SpatialIndex`. The transport
//! is then *just* an encoding of those values: a checksummed,
//! length-prefixed binary frame format ([`frame`]) patterned on the
//! pager's WAL frames, with the CRC salted by protocol magic + version
//! the same way WAL frames are salted by truncation epoch.
//!
//! Decoding is total: a torn, truncated, or bit-flipped frame decodes
//! to a typed [`WireError`] (or reports [`Decoded::Incomplete`] when
//! more bytes may still arrive) — never a panic, never a silent
//! misparse. `tests/wire_format.rs` pins the byte format the same way
//! the WAL tests do: round-trips, every single-bit flip rejected,
//! every strict prefix incomplete.
//!
//! Deliberately transport-free: no sockets here, only bytes and
//! dispatch. `sr-serve` owns connections, admission control and
//! batching on top of this crate.

#![forbid(unsafe_code)]

mod error;
mod execute;
mod frame;
mod message;
mod stats;

pub use error::{RemoteError, WireError};
pub use execute::{execute, execute_read, rows_response};
pub use frame::{
    decode_request, decode_response, encode_request, encode_response, Decoded, DEFAULT_MAX_BODY,
    WIRE_MAGIC, WIRE_VERSION,
};
pub use message::{Request, Response, Row};
pub use stats::{io_json, stats_json, stats_json_with, wal_json};
