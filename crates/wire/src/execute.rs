//! The one place [`Request`] values are interpreted.
//!
//! Both the server's per-connection dispatch and the CLI's offline
//! `knn` / `range` / `insert` subcommands call [`execute`] (or
//! [`execute_read`] on the shared read path), so "what does a Knn
//! request do" has exactly one answer regardless of transport. Every
//! failure comes back as a [`Response::Error`] with a typed
//! [`RemoteError`] — executing a request cannot fail out-of-band.

use sr_obs::Recorder;
use sr_query::{IndexError, Neighbor, QuerySpec, SpatialIndex};

use crate::error::RemoteError;
use crate::message::{Request, Response, Row};
use crate::stats::stats_json;

/// Fold an [`IndexError`] into the remote taxonomy: caller mistakes
/// become `BadRequest`/`Unsupported`, everything else `Failed`.
fn remote(e: IndexError) -> RemoteError {
    match e {
        IndexError::Unsupported(what) => RemoteError::Unsupported(what.to_string()),
        IndexError::DimensionMismatch { .. } | IndexError::InvalidRadius(_) => {
            RemoteError::BadRequest(e.to_string())
        }
        other => RemoteError::Failed(other.to_string()),
    }
}

/// Fold a neighbor list into a `Rows` response. Distances cross the
/// wire as Euclidean (`sqrt(dist2)`) `f64`s, so a client printing them
/// matches the offline CLI byte for byte.
pub fn rows_response(rows: &[Neighbor]) -> Response {
    Response::Rows(
        rows.iter()
            .map(|n| Row {
                data: n.data,
                dist: n.dist2.sqrt(),
            })
            .collect(),
    )
}

fn run_query(index: &dyn SpatialIndex, spec: &QuerySpec<'_>, rec: &dyn Recorder) -> Response {
    match index.query(spec, rec) {
        Ok(out) => rows_response(&out.rows),
        Err(e) => Response::Error(remote(e)),
    }
}

/// Execute one request against an index, reads and writes alike.
pub fn execute(req: &Request, index: &mut dyn SpatialIndex, rec: &dyn Recorder) -> Response {
    match req {
        Request::Insert { point, data } => match index.insert(point, *data) {
            Ok(()) => Response::Ack { n: 1 },
            Err(e) => Response::Error(remote(e)),
        },
        Request::Delete { point, data } => match index.delete(point, *data) {
            Ok(found) => Response::Ack {
                n: u64::from(found),
            },
            Err(e) => Response::Error(remote(e)),
        },
        read => execute_read(read, index, rec),
    }
}

/// Execute a read-only request over `&dyn SpatialIndex` — the path the
/// server runs under a shared read lock and coalesces into `sr-exec`
/// batches. A write request arriving here is answered with a typed
/// `BadRequest`, not executed.
pub fn execute_read(req: &Request, index: &dyn SpatialIndex, rec: &dyn Recorder) -> Response {
    match req {
        // Shutdown's side effects (drain + flush) belong to the server
        // loop; as a request *per se* it acknowledges like a ping.
        Request::Ping | Request::Shutdown => Response::Ack { n: 0 },
        Request::Knn { query, k } => run_query(index, &QuerySpec::knn(query, *k as usize), rec),
        Request::Range { query, radius } => {
            run_query(index, &QuerySpec::range(query, *radius), rec)
        }
        Request::Stats => Response::Stats {
            json: stats_json(index),
        },
        Request::Insert { .. } | Request::Delete { .. } => Response::Error(
            RemoteError::BadRequest("write request on a read-only execution path".to_string()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_pager::PageFile;
    use sr_query::{brute_force_knn, brute_force_range, QueryOutput, QueryShape};

    struct Brute {
        pager: PageFile,
        points: Vec<(Vec<f32>, u64)>,
    }

    impl Brute {
        fn sample() -> Brute {
            Brute {
                pager: PageFile::create_in_memory(512).expect("in-memory pager"),
                points: vec![
                    (vec![0.0, 0.0], 0),
                    (vec![1.0, 0.0], 1),
                    (vec![0.0, 2.0], 2),
                ],
            }
        }
    }

    impl SpatialIndex for Brute {
        fn kind_name(&self) -> &'static str {
            "brute"
        }
        fn dim(&self) -> usize {
            2
        }
        fn len(&self) -> u64 {
            self.points.len() as u64
        }
        fn height(&self) -> u32 {
            1
        }
        fn num_leaves(&self) -> Result<u64, IndexError> {
            Ok(1)
        }
        fn insert(&mut self, point: &[f32], data: u64) -> Result<(), IndexError> {
            if point.len() != 2 {
                return Err(IndexError::DimensionMismatch {
                    expected: 2,
                    got: point.len(),
                });
            }
            self.points.push((point.to_vec(), data));
            Ok(())
        }
        fn delete(&mut self, point: &[f32], data: u64) -> Result<bool, IndexError> {
            let before = self.points.len();
            self.points.retain(|(p, d)| !(p == point && *d == data));
            Ok(self.points.len() < before)
        }
        fn query(
            &self,
            spec: &QuerySpec<'_>,
            _rec: &dyn Recorder,
        ) -> Result<QueryOutput, IndexError> {
            let flat = self.points.iter().map(|(p, id)| (p.as_slice(), *id));
            let rows = match spec.shape {
                QueryShape::Knn { k } => brute_force_knn(flat, spec.point, k),
                QueryShape::Range { radius } => {
                    if radius.is_nan() || radius < 0.0 {
                        return Err(IndexError::InvalidRadius(radius));
                    }
                    brute_force_range(flat, spec.point, radius)
                }
            };
            Ok(QueryOutput::from_rows(rows))
        }
        fn pager(&self) -> &PageFile {
            &self.pager
        }
        fn flush(&self) -> Result<(), IndexError> {
            Ok(self.pager.flush()?)
        }
    }

    #[test]
    fn knn_and_range_return_rows_with_sqrt_distances() {
        let mut ix = Brute::sample();
        let resp = execute(
            &Request::Knn {
                query: vec![0.0, 0.0],
                k: 2,
            },
            &mut ix,
            &sr_obs::Noop,
        );
        match resp {
            Response::Rows(rows) => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows.first().map(|r| r.data), Some(0));
                assert_eq!(rows.get(1).map(|r| (r.data, r.dist)), Some((1, 1.0)));
            }
            other => panic!("expected rows, got {other:?}"),
        }
        let resp = execute_read(
            &Request::Range {
                query: vec![0.0, 0.0],
                radius: 1.5,
            },
            &ix,
            &sr_obs::Noop,
        );
        match resp {
            Response::Rows(rows) => {
                assert_eq!(rows.iter().map(|r| r.data).collect::<Vec<_>>(), vec![0, 1])
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn writes_execute_and_are_refused_on_the_read_path() {
        let mut ix = Brute::sample();
        let ins = Request::Insert {
            point: vec![5.0, 5.0],
            data: 9,
        };
        assert_eq!(
            execute(&ins, &mut ix, &sr_obs::Noop),
            Response::Ack { n: 1 }
        );
        assert_eq!(ix.len(), 4);
        let del = Request::Delete {
            point: vec![5.0, 5.0],
            data: 9,
        };
        assert_eq!(
            execute(&del, &mut ix, &sr_obs::Noop),
            Response::Ack { n: 1 }
        );
        assert_eq!(
            execute(&del, &mut ix, &sr_obs::Noop),
            Response::Ack { n: 0 }
        );
        assert!(matches!(
            execute_read(&ins, &ix, &sr_obs::Noop),
            Response::Error(RemoteError::BadRequest(_))
        ));
    }

    #[test]
    fn errors_come_back_typed() {
        let mut ix = Brute::sample();
        let bad_dim = Request::Knn {
            query: vec![1.0, 2.0, 3.0],
            k: 1,
        };
        // brute_force_knn ignores dim, so exercise the taxonomy through
        // insert (DimensionMismatch) and range (InvalidRadius).
        let _ = bad_dim;
        assert!(matches!(
            execute(
                &Request::Insert {
                    point: vec![1.0],
                    data: 0
                },
                &mut ix,
                &sr_obs::Noop
            ),
            Response::Error(RemoteError::BadRequest(_))
        ));
        assert!(matches!(
            execute_read(
                &Request::Range {
                    query: vec![0.0, 0.0],
                    radius: -1.0
                },
                &ix,
                &sr_obs::Noop
            ),
            Response::Error(RemoteError::BadRequest(_))
        ));
        assert_eq!(
            execute_read(&Request::Ping, &ix, &sr_obs::Noop),
            Response::Ack { n: 0 }
        );
    }

    #[test]
    fn stats_carries_the_schema_version() {
        let ix = Brute::sample();
        match execute_read(&Request::Stats, &ix, &sr_obs::Noop) {
            Response::Stats { json } => {
                assert!(json.starts_with("{\"schema_version\":"), "{json}");
                assert!(json.contains("\"kind\":\"brute\""), "{json}");
                assert!(json.contains("\"wal\":"), "{json}");
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }
}
