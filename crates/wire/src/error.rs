//! Typed failure taxonomy for the wire protocol.

use std::fmt;

/// A frame that could not be decoded (or a value that cannot be
/// encoded). Decoding is total: every torn or bit-flipped input maps to
/// one of these variants, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame failed a checksum, declared an unknown kind, or its
    /// body did not parse as the kind's payload. The connection's
    /// framing can no longer be trusted.
    Corrupt {
        /// What failed, for the operator.
        detail: String,
    },
    /// A frame (or a value being encoded) exceeds the size cap.
    TooLarge {
        /// Declared or computed size in bytes.
        len: u64,
        /// The cap in force.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Corrupt { detail } => write!(f, "corrupt wire frame: {detail}"),
            WireError::TooLarge { len, max } => {
                write!(f, "wire frame too large: {len} B exceeds the {max} B cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A failure reported *by the remote end* inside a well-formed
/// [`Response::Error`](crate::Response::Error) frame — the server ran
/// (or refused) the request and said why. Distinct from [`WireError`],
/// which means the bytes themselves were bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The server is at its admission limit; retry later. This is the
    /// typed backpressure signal — an overloaded server answers with
    /// this, it never silently drops a connection.
    Overloaded {
        /// Connections currently admitted.
        active: u64,
        /// The admission limit.
        max: u64,
    },
    /// The server is draining for shutdown and takes no new work.
    ShuttingDown,
    /// The request frame exceeded the server's size cap.
    TooLarge {
        /// Declared frame body size in bytes.
        len: u64,
        /// The server's cap.
        max: u64,
    },
    /// The index does not support the operation (e.g. inserting into
    /// the bulk-load-only VAMSplit R-tree).
    Unsupported(String),
    /// The request was well-formed on the wire but semantically invalid
    /// (dimension mismatch, negative radius, write on a read-only path).
    BadRequest(String),
    /// The request was valid but execution failed (I/O error, index
    /// corruption).
    Failed(String),
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Overloaded { active, max } => {
                write!(f, "server overloaded: {active} of {max} connections in use")
            }
            RemoteError::ShuttingDown => write!(f, "server is shutting down"),
            RemoteError::TooLarge { len, max } => {
                write!(
                    f,
                    "request too large: {len} B exceeds the server's {max} B cap"
                )
            }
            RemoteError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            RemoteError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            RemoteError::Failed(detail) => write!(f, "request failed: {detail}"),
        }
    }
}

impl std::error::Error for RemoteError {}
