//! The binary frame format: checksummed, length-prefixed, total to
//! decode.
//!
//! ```text
//! frame := kind:u8 | body_len:u32le | hcrc:u32le | bcrc:u32le | body
//! ```
//!
//! Both CRCs are CRC-32 (IEEE, the pager's WAL implementation) *salted*
//! with the protocol magic and version — the same trick the WAL plays
//! with its truncation epoch, so a frame from a different protocol
//! version fails its checksum instead of misparsing. `hcrc` covers
//! `kind | body_len` and is verified **before** `body_len` is trusted:
//! a bit flip in the length prefix is caught immediately instead of
//! making the decoder wait forever for bytes that will never come.
//! `bcrc` covers the body.
//!
//! [`decode_request`] / [`decode_response`] are total functions of the
//! input bytes: every outcome is [`Decoded::Frame`], [`Decoded::Incomplete`]
//! (a strict prefix — read more), or a typed [`WireError`]. Request and
//! response kinds live in disjoint namespaces, so a peer that replays a
//! request at a client decodes to `Corrupt`, not to a confused response.

use crate::error::{RemoteError, WireError};
use crate::message::{Request, Response, Row};
use sr_pager::{crc32_begin, crc32_finish, crc32_update};

/// Protocol magic, first half of the CRC salt (`"SRW1"`).
pub const WIRE_MAGIC: u32 = 0x5352_5731;
/// Protocol version, second half of the CRC salt. Bump on any change to
/// the frame layout or the body encodings; old and new peers then
/// reject each other's frames as `Corrupt` instead of misparsing them.
pub const WIRE_VERSION: u16 = 1;

/// Default cap on a frame body. Generous for any realistic query
/// (a 4 MiB body holds a ~1M-dimensional point) while bounding what one
/// connection can make the server buffer.
pub const DEFAULT_MAX_BODY: usize = 4 << 20;

/// kind | body_len | hcrc | bcrc.
const HEADER_LEN: usize = 1 + 4 + 4 + 4;

const KIND_REQ_PING: u8 = 0x01;
const KIND_REQ_KNN: u8 = 0x02;
const KIND_REQ_RANGE: u8 = 0x03;
const KIND_REQ_INSERT: u8 = 0x04;
const KIND_REQ_DELETE: u8 = 0x05;
const KIND_REQ_STATS: u8 = 0x06;
const KIND_REQ_SHUTDOWN: u8 = 0x07;

const KIND_RESP_ROWS: u8 = 0x41;
const KIND_RESP_ACK: u8 = 0x42;
const KIND_RESP_STATS: u8 = 0x43;
const KIND_RESP_ERROR: u8 = 0x44;

/// Wire codes for [`RemoteError`] variants inside an error body.
const ERR_OVERLOADED: u8 = 1;
const ERR_SHUTTING_DOWN: u8 = 2;
const ERR_TOO_LARGE: u8 = 3;
const ERR_UNSUPPORTED: u8 = 4;
const ERR_BAD_REQUEST: u8 = 5;
const ERR_FAILED: u8 = 6;

/// Outcome of a decode attempt over a byte prefix.
#[derive(Debug, Clone, PartialEq)]
pub enum Decoded<T> {
    /// One whole frame decoded; `consumed` bytes belong to it.
    Frame {
        /// The decoded message.
        msg: T,
        /// Bytes of the input the frame occupied.
        consumed: usize,
    },
    /// The input is a strict prefix of a frame — read more bytes.
    Incomplete,
}

/// CRC-32 state seeded with the protocol salt (magic + version).
fn crc_salted() -> u32 {
    let state = crc32_update(crc32_begin(), &WIRE_MAGIC.to_le_bytes());
    crc32_update(state, &WIRE_VERSION.to_le_bytes())
}

fn header_crc(kind: u8, body_len: u32) -> u32 {
    let mut state = crc_salted();
    state = crc32_update(state, &[kind]);
    state = crc32_update(state, &body_len.to_le_bytes());
    crc32_finish(state)
}

fn body_crc(body: &[u8]) -> u32 {
    crc32_finish(crc32_update(crc_salted(), body))
}

fn corrupt(detail: impl Into<String>) -> WireError {
    WireError::Corrupt {
        detail: detail.into(),
    }
}

/// Sequential little-endian reader over a frame body; every short read
/// is a typed `Corrupt`, so body parsing can never panic or misindex.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("body length overflow"))?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| corrupt("body shorter than its declared contents"))?;
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.u32()?.to_le_bytes()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.u64()?.to_le_bytes()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let rest = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        rest
    }

    /// Bytes left to consume: the bound every body-declared element
    /// count must be validated against before it sizes an allocation
    /// or a read loop.
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// A body must be consumed exactly: trailing bytes mean the frame
    /// was built by a different encoder and cannot be trusted.
    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after body contents"))
        }
    }
}

/// A point vector: `dim:u32 | dim × f32`.
fn read_point(r: &mut Reader<'_>) -> Result<Vec<f32>, WireError> {
    let dim = r.u32()? as usize;
    // The declared dimension is attacker-controlled: it must fit the
    // bytes actually present before it sizes the allocation or bounds
    // the read loop.
    let need = dim
        .checked_mul(4)
        .ok_or_else(|| corrupt("point dimension overflows the body length"))?;
    if need > r.remaining() {
        return Err(corrupt("point dimension exceeds body contents"));
    }
    let mut coords = Vec::with_capacity(dim);
    for _ in 0..dim {
        coords.push(r.f32()?);
    }
    Ok(coords)
}

fn push_point(body: &mut Vec<u8>, point: &[f32]) -> Result<(), WireError> {
    let dim = u32::try_from(point.len()).map_err(|_| WireError::TooLarge {
        len: point.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    body.extend_from_slice(&dim.to_le_bytes());
    for c in point {
        body.extend_from_slice(&c.to_le_bytes());
    }
    Ok(())
}

fn read_utf8(bytes: &[u8], what: &str) -> Result<String, WireError> {
    String::from_utf8(bytes.to_vec()).map_err(|_| corrupt(format!("{what} is not valid UTF-8")))
}

/// Assemble `kind | body_len | hcrc | bcrc | body`.
fn seal(kind: u8, body: Vec<u8>) -> Result<Vec<u8>, WireError> {
    let body_len = u32::try_from(body.len()).map_err(|_| WireError::TooLarge {
        len: body.len() as u64,
        max: u64::from(u32::MAX),
    })?;
    let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
    frame.push(kind);
    frame.extend_from_slice(&body_len.to_le_bytes());
    frame.extend_from_slice(&header_crc(kind, body_len).to_le_bytes());
    frame.extend_from_slice(&body_crc(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Encode one request as a wire frame.
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let (kind, body) = match req {
        Request::Ping => (KIND_REQ_PING, Vec::new()),
        Request::Knn { query, k } => {
            let mut body = k.to_le_bytes().to_vec();
            push_point(&mut body, query)?;
            (KIND_REQ_KNN, body)
        }
        Request::Range { query, radius } => {
            let mut body = radius.to_le_bytes().to_vec();
            push_point(&mut body, query)?;
            (KIND_REQ_RANGE, body)
        }
        Request::Insert { point, data } => {
            let mut body = data.to_le_bytes().to_vec();
            push_point(&mut body, point)?;
            (KIND_REQ_INSERT, body)
        }
        Request::Delete { point, data } => {
            let mut body = data.to_le_bytes().to_vec();
            push_point(&mut body, point)?;
            (KIND_REQ_DELETE, body)
        }
        Request::Stats => (KIND_REQ_STATS, Vec::new()),
        Request::Shutdown => (KIND_REQ_SHUTDOWN, Vec::new()),
    };
    seal(kind, body)
}

/// Encode one response as a wire frame.
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let (kind, body) = match resp {
        Response::Rows(rows) => {
            let n = u32::try_from(rows.len()).map_err(|_| WireError::TooLarge {
                len: rows.len() as u64,
                max: u64::from(u32::MAX),
            })?;
            let mut body = n.to_le_bytes().to_vec();
            for row in rows {
                body.extend_from_slice(&row.data.to_le_bytes());
                body.extend_from_slice(&row.dist.to_le_bytes());
            }
            (KIND_RESP_ROWS, body)
        }
        Response::Ack { n } => (KIND_RESP_ACK, n.to_le_bytes().to_vec()),
        Response::Stats { json } => (KIND_RESP_STATS, json.as_bytes().to_vec()),
        Response::Error(err) => {
            let (code, a, b, msg): (u8, u64, u64, &str) = match err {
                RemoteError::Overloaded { active, max } => (ERR_OVERLOADED, *active, *max, ""),
                RemoteError::ShuttingDown => (ERR_SHUTTING_DOWN, 0, 0, ""),
                RemoteError::TooLarge { len, max } => (ERR_TOO_LARGE, *len, *max, ""),
                RemoteError::Unsupported(msg) => (ERR_UNSUPPORTED, 0, 0, msg.as_str()),
                RemoteError::BadRequest(msg) => (ERR_BAD_REQUEST, 0, 0, msg.as_str()),
                RemoteError::Failed(msg) => (ERR_FAILED, 0, 0, msg.as_str()),
            };
            let mut body = vec![code];
            body.extend_from_slice(&a.to_le_bytes());
            body.extend_from_slice(&b.to_le_bytes());
            body.extend_from_slice(msg.as_bytes());
            (KIND_RESP_ERROR, body)
        }
    };
    seal(kind, body)
}

/// A validated frame envelope: `(kind, body, consumed)`. `None` means
/// the buffer holds only a strict prefix of the frame so far.
type Envelope<'a> = Option<(u8, &'a [u8], usize)>;

/// Validate the header + body envelope of the frame at the front of
/// `buf`, returning `(kind, body, consumed)` once whole and authentic.
// srlint: untrusted-source -- the envelope body comes straight off the socket; every count it yields must be re-validated downstream
fn decode_envelope(buf: &[u8], max_body: usize) -> Result<Envelope<'_>, WireError> {
    let Some(header) = buf.get(..HEADER_LEN) else {
        return Ok(None);
    };
    let kind = header.first().copied().unwrap_or(0);
    let mut r = Reader::new(header.get(1..).unwrap_or(&[]));
    let body_len = r.u32()?;
    let hcrc = r.u32()?;
    let bcrc = r.u32()?;
    // The header checksum is verified before body_len is trusted, so a
    // flipped length bit is Corrupt now — not an endless Incomplete.
    if header_crc(kind, body_len) != hcrc {
        return Err(corrupt("header checksum mismatch"));
    }
    let body_len = body_len as usize;
    if body_len > max_body {
        return Err(WireError::TooLarge {
            len: body_len as u64,
            max: max_body as u64,
        });
    }
    let end = HEADER_LEN
        .checked_add(body_len)
        .ok_or_else(|| corrupt("frame length overflow"))?;
    let Some(body) = buf.get(HEADER_LEN..end) else {
        return Ok(None);
    };
    if body_crc(body) != bcrc {
        return Err(corrupt("body checksum mismatch"));
    }
    Ok(Some((kind, body, end)))
}

/// Decode the request frame at the front of `buf`.
pub fn decode_request(buf: &[u8], max_body: usize) -> Result<Decoded<Request>, WireError> {
    let Some((kind, body, consumed)) = decode_envelope(buf, max_body)? else {
        return Ok(Decoded::Incomplete);
    };
    let mut r = Reader::new(body);
    let msg = match kind {
        KIND_REQ_PING => Request::Ping,
        KIND_REQ_KNN => {
            let k = r.u32()?;
            let query = read_point(&mut r)?;
            Request::Knn { query, k }
        }
        KIND_REQ_RANGE => {
            let radius = r.f64()?;
            let query = read_point(&mut r)?;
            Request::Range { query, radius }
        }
        KIND_REQ_INSERT => {
            let data = r.u64()?;
            let point = read_point(&mut r)?;
            Request::Insert { point, data }
        }
        KIND_REQ_DELETE => {
            let data = r.u64()?;
            let point = read_point(&mut r)?;
            Request::Delete { point, data }
        }
        KIND_REQ_STATS => Request::Stats,
        KIND_REQ_SHUTDOWN => Request::Shutdown,
        other => return Err(corrupt(format!("unknown request kind {other:#04x}"))),
    };
    r.finish()?;
    Ok(Decoded::Frame { msg, consumed })
}

/// Decode the response frame at the front of `buf`.
pub fn decode_response(buf: &[u8], max_body: usize) -> Result<Decoded<Response>, WireError> {
    let Some((kind, body, consumed)) = decode_envelope(buf, max_body)? else {
        return Ok(Decoded::Incomplete);
    };
    let mut r = Reader::new(body);
    let msg = match kind {
        KIND_RESP_ROWS => {
            let n = r.u32()? as usize;
            // The declared row count must fit the body (16 bytes per
            // row) before it sizes the allocation or bounds the loop.
            let need = n
                .checked_mul(16)
                .ok_or_else(|| corrupt("row count overflows the body length"))?;
            if need > r.remaining() {
                return Err(corrupt("row count exceeds body contents"));
            }
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let data = r.u64()?;
                let dist = r.f64()?;
                rows.push(Row { data, dist });
            }
            Response::Rows(rows)
        }
        KIND_RESP_ACK => Response::Ack { n: r.u64()? },
        KIND_RESP_STATS => {
            let json = read_utf8(r.rest(), "stats body")?;
            Response::Stats { json }
        }
        KIND_RESP_ERROR => {
            let code = r.u8()?;
            let a = r.u64()?;
            let b = r.u64()?;
            let msg = read_utf8(r.rest(), "error message")?;
            let err = match code {
                ERR_OVERLOADED => RemoteError::Overloaded { active: a, max: b },
                ERR_SHUTTING_DOWN => RemoteError::ShuttingDown,
                ERR_TOO_LARGE => RemoteError::TooLarge { len: a, max: b },
                ERR_UNSUPPORTED => RemoteError::Unsupported(msg),
                ERR_BAD_REQUEST => RemoteError::BadRequest(msg),
                ERR_FAILED => RemoteError::Failed(msg),
                other => return Err(corrupt(format!("unknown error code {other}"))),
            };
            Response::Error(err)
        }
        other => return Err(corrupt(format!("unknown response kind {other:#04x}"))),
    };
    r.finish()?;
    Ok(Decoded::Frame { msg, consumed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_kinds_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Knn {
                query: vec![0.25, -1.5, 3.0],
                k: 10,
            },
            Request::Range {
                query: vec![0.0, 0.5],
                radius: 0.75,
            },
            Request::Insert {
                point: vec![1.0; 16],
                data: 42,
            },
            Request::Delete {
                point: vec![2.0; 4],
                data: 7,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = encode_request(&req).expect("encode");
            match decode_request(&bytes, DEFAULT_MAX_BODY).expect("decode") {
                Decoded::Frame { msg, consumed } => {
                    assert_eq!(msg, req);
                    assert_eq!(consumed, bytes.len());
                }
                Decoded::Incomplete => panic!("whole frame reported incomplete"),
            }
        }
    }

    #[test]
    fn response_kinds_round_trip() {
        let resps = [
            Response::Rows(vec![
                Row {
                    data: 3,
                    dist: 0.125,
                },
                Row { data: 9, dist: 2.5 },
            ]),
            Response::Ack { n: 1 },
            Response::Stats {
                json: "{\"schema_version\":1}".to_string(),
            },
            Response::Error(RemoteError::Overloaded {
                active: 64,
                max: 64,
            }),
            Response::Error(RemoteError::ShuttingDown),
            Response::Error(RemoteError::TooLarge { len: 9, max: 8 }),
            Response::Error(RemoteError::Unsupported("delete".to_string())),
            Response::Error(RemoteError::BadRequest("dim".to_string())),
            Response::Error(RemoteError::Failed("io".to_string())),
        ];
        for resp in resps {
            let bytes = encode_response(&resp).expect("encode");
            match decode_response(&bytes, DEFAULT_MAX_BODY).expect("decode") {
                Decoded::Frame { msg, consumed } => {
                    assert_eq!(msg, resp);
                    assert_eq!(consumed, bytes.len());
                }
                Decoded::Incomplete => panic!("whole frame reported incomplete"),
            }
        }
    }

    #[test]
    fn request_and_response_kind_namespaces_are_disjoint() {
        // A request frame handed to the response decoder (and vice
        // versa) is Corrupt, never a misparse.
        let req = encode_request(&Request::Ping).expect("encode");
        assert!(matches!(
            decode_response(&req, DEFAULT_MAX_BODY),
            Err(WireError::Corrupt { .. })
        ));
        let resp = encode_response(&Response::Ack { n: 0 }).expect("encode");
        assert!(matches!(
            decode_request(&resp, DEFAULT_MAX_BODY),
            Err(WireError::Corrupt { .. })
        ));
    }

    #[test]
    fn lying_point_dimension_is_corrupt_not_an_over_read() {
        // A KNN body whose point claims u32::MAX coordinates but
        // carries one: the declared dimension must be checked against
        // the bytes present, yielding a typed Corrupt — never a panic,
        // an over-read, or a multi-gigabyte allocation.
        let mut body = Vec::new();
        body.extend_from_slice(&10u32.to_le_bytes()); // k
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // lying dim
        body.extend_from_slice(&1.0f32.to_le_bytes()); // one coordinate
        let frame = seal(KIND_REQ_KNN, body).expect("seal");
        match decode_request(&frame, DEFAULT_MAX_BODY) {
            Err(WireError::Corrupt { detail }) => {
                assert!(detail.contains("point dimension"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn lying_row_count_is_corrupt_not_an_over_read() {
        // A rows body that declares more rows than the body holds.
        let mut body = Vec::new();
        body.extend_from_slice(&u32::MAX.to_le_bytes()); // lying count
        body.extend_from_slice(&7u64.to_le_bytes()); // one row's data
        body.extend_from_slice(&0.5f64.to_le_bytes()); // one row's dist
        let frame = seal(KIND_RESP_ROWS, body).expect("seal");
        match decode_response(&frame, DEFAULT_MAX_BODY) {
            Err(WireError::Corrupt { detail }) => {
                assert!(detail.contains("row count"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn oversized_body_is_rejected_before_buffering() {
        let req = Request::Knn {
            query: vec![0.5; 64],
            k: 3,
        };
        let bytes = encode_request(&req).expect("encode");
        assert!(matches!(
            decode_request(&bytes, 16),
            Err(WireError::TooLarge { max: 16, .. })
        ));
    }
}
