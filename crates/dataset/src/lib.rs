//! Workload generators for the SR-tree reproduction.
//!
//! The paper evaluates on three data sets; this crate synthesizes all of
//! them, deterministically from a seed:
//!
//! * [`uniform`] — points uniform in `[0, 1)` per dimension (§3.1);
//! * [`cluster`] — the §5.4 cluster data set: clusters with random center
//!   and radius inside the unit cube, each point generated on the cluster
//!   sphere's surface and shifted randomly along the radius;
//! * [`real_sim`] — a stand-in for the paper's "real data set" of 16-d
//!   color histograms of images (the original CMU collection is not
//!   available). Vectors are sampled from a mixture of Dirichlet
//!   distributions with skewed concentrations, giving non-negative,
//!   sum-to-one, strongly non-uniform and clustered vectors — the
//!   distributional properties the paper's real-data experiments exercise.
//!
//! Query workloads follow §3.1 exactly: "A query is to find the nearest 21
//! points relative to a particular point in the data set", i.e. query
//! points are sampled *from the data set* ([`sample_queries`]).

#![forbid(unsafe_code)]

mod dirichlet;
mod generators;
mod rng;

pub use dirichlet::DirichletMixture;
pub use generators::{cluster, real_sim, sample_queries, uniform, ClusterSpec};
pub use rng::{FromRng, SeededRng};
