//! Dirichlet-mixture sampling for the simulated color-histogram data set.
//!
//! The paper's "real data set consists of the real feature vectors of
//! images which are 16-element histograms computed over a quantized
//! version of the color space" (§3.1). Real color histograms are
//! non-negative, sum to one, have a handful of dominant bins per image,
//! and cluster by scene type. A mixture of Dirichlet distributions with
//! sparse, skewed concentration vectors has exactly those properties, so
//! it is the substitution this reproduction uses (see DESIGN.md §2).
//!
//! `rand_distr` is not among the approved dependencies, so the Gamma
//! sampler (Marsaglia & Tsang 2000) is implemented here.

use crate::rng::SeededRng;

/// Standard normal via Box–Muller (we only need modest statistical
/// quality, not extreme-tail accuracy).
fn gauss(rng: &mut SeededRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Gamma(shape, 1) via Marsaglia & Tsang's squeeze method, with the
/// standard `U^{1/a}` boost for `shape < 1`.
fn gamma(rng: &mut SeededRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boosting: G(a) = G(a+1) * U^(1/a)
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gauss(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A mixture of Dirichlet distributions over the `dim`-simplex.
///
/// Each component has a concentration vector with a few "dominant" bins
/// (large alpha) and many near-empty ones (small alpha), mimicking the
/// color histogram of one scene type.
pub struct DirichletMixture {
    components: Vec<Vec<f64>>,
    rng: SeededRng,
}

impl DirichletMixture {
    /// Build a mixture with `k` components over `dim` bins, seeded
    /// deterministically.
    ///
    /// # Panics
    /// Panics if `k == 0` or `dim == 0`.
    pub fn new(dim: usize, k: usize, seed: u64) -> Self {
        assert!(
            dim > 0 && k > 0,
            "need at least one dimension and component"
        );
        let mut rng = SeededRng::seed_from_u64(seed ^ 0x5EED_D1A1);
        let mut components = Vec::with_capacity(k);
        for _ in 0..k {
            // 2–4 dominant bins per component, like an image dominated by
            // a few hues.
            let dominant = 2 + rng.random_range(0..3usize).min(dim - 1);
            let mut alpha = vec![0.15f64; dim];
            for _ in 0..dominant {
                let bin = rng.random_range(0..dim);
                alpha[bin] += 4.0 + 8.0 * rng.random::<f64>();
            }
            components.push(alpha);
        }
        DirichletMixture { components, rng }
    }

    /// Number of mixture components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Draw one histogram vector (non-negative, sums to 1).
    pub fn sample(&mut self) -> Vec<f32> {
        let c = self.rng.random_range(0..self.components.len());
        let alpha = self.components[c].clone();
        let mut v: Vec<f64> = alpha.iter().map(|&a| gamma(&mut self.rng, a)).collect();
        let sum: f64 = v.iter().sum();
        if sum <= 0.0 {
            // Astronomically unlikely; fall back to the mode of the
            // component rather than divide by zero.
            let total: f64 = alpha.iter().sum();
            v = alpha.iter().map(|&a| a / total).collect();
        } else {
            for x in v.iter_mut() {
                *x /= sum;
            }
        }
        v.into_iter().map(|x| x as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_live_on_the_simplex() {
        let mut m = DirichletMixture::new(16, 8, 7);
        for _ in 0..200 {
            let v = m.sample();
            assert_eq!(v.len(), 16);
            let sum: f32 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "sum = {sum}");
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn samples_are_skewed_not_uniform() {
        // A uniform histogram has every bin ≈ 1/16 ≈ 0.0625. Dirichlet
        // components with dominant bins should routinely produce a bin
        // over 0.3.
        let mut m = DirichletMixture::new(16, 8, 11);
        let peaked = (0..200)
            .filter(|_| {
                let v = m.sample();
                v.iter().cloned().fold(0.0f32, f32::max) > 0.3
            })
            .count();
        assert!(peaked > 100, "only {peaked}/200 samples were peaked");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DirichletMixture::new(8, 4, 99);
        let mut b = DirichletMixture::new(8, 4, 99);
        for _ in 0..10 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DirichletMixture::new(8, 4, 1);
        let mut b = DirichletMixture::new(8, 4, 2);
        assert_ne!(a.sample(), b.sample());
    }

    #[test]
    fn gamma_mean_is_roughly_shape() {
        let mut rng = SeededRng::seed_from_u64(5);
        for shape in [0.3f64, 1.0, 4.5] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(0.5),
                "shape {shape}: mean {mean}"
            );
        }
    }
}
