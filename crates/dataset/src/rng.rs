//! A small, deterministic, dependency-free pseudo-random number
//! generator for data synthesis and testing.
//!
//! The workspace's dependency policy admits no registry crates, so the
//! generator is implemented here: xoshiro256++ (Blackman & Vigna 2019)
//! seeded through SplitMix64, the standard pairing. Statistical quality
//! is far beyond what data-set synthesis and fuzzing need, the state is
//! 32 bytes, and — crucially for the differential test harness — every
//! stream is exactly reproducible from a single `u64` seed on every
//! platform.
//!
//! The API deliberately mirrors the subset of the `rand` crate the
//! workspace used to consume (`seed_from_u64`, `random`, `random_range`)
//! so call sites read the same.

/// Deterministic xoshiro256++ generator, seedable from a single `u64`.
#[derive(Clone, Debug)]
pub struct SeededRng {
    s: [u64; 4],
}

/// Types [`SeededRng::random`] can produce.
pub trait FromRng {
    /// Draw one value from the generator.
    fn from_rng(rng: &mut SeededRng) -> Self;
}

impl SeededRng {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SeededRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Draw a value of type `T` (uniform over the type's natural range;
    /// floats are uniform in `[0, 1)`).
    #[inline]
    pub fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform integer in `[range.start, range.end)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Debiased multiply-shift (Lemire); the rejection loop is
        // entered with probability span/2^64, i.e. effectively never
        // for the small spans used here.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        range.start + (m >> 64) as usize
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.random_range(0..i + 1);
            xs.swap(i, j);
        }
    }
}

impl FromRng for u64 {
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for u8 {
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng(rng: &mut SeededRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(8);
        assert_ne!(SeededRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SeededRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut r = SeededRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_is_inclusive_exclusive_and_unbiased() {
        let mut r = SeededRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            let v = r.random_range(2..7);
            assert!((2..7).contains(&v));
            counts[v - 2] += 1;
        }
        for c in counts {
            assert!((1600..2400).contains(&c), "biased bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SeededRng::seed_from_u64(0).random_range(3..3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SeededRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn bool_probability_respected() {
        let mut r = SeededRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
