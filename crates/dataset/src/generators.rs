//! The three data sets of the paper plus query sampling.

use sr_geometry::Point;

use crate::dirichlet::DirichletMixture;
use crate::rng::SeededRng;

/// The uniform data set of §3.1: `n` points, each coordinate uniform in
/// `[0, 1)`.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    assert!(dim > 0, "dimensionality must be positive");
    let mut rng = SeededRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.random::<f32>()).collect::<Vec<_>>()))
        .collect()
}

/// Parameters of the §5.4 cluster data set.
#[derive(Clone, Copy, Debug)]
pub struct ClusterSpec {
    /// Number of clusters. `1` puts every point in a single sphere;
    /// setting it equal to the point count degenerates to (near-)uniform
    /// data, which is exactly the uniformity sweep of Figure 19.
    pub clusters: usize,
    /// Points per cluster.
    pub points_per_cluster: usize,
    /// Upper bound for the random cluster radius. The paper says "the
    /// location and the radius of each cluster is chosen randomly within
    /// the unit cube" without giving the radius range; `0.1` keeps 100
    /// clusters visually distinct in the unit cube, matching the regime
    /// the paper's cluster experiments describe.
    pub max_radius: f32,
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec {
            clusters: 100,
            points_per_cluster: 1000,
            max_radius: 0.1,
        }
    }
}

/// The cluster data set of §5.4: for each cluster, a random center in the
/// unit cube and a random radius; each point is "generated on the sphere
/// surface uniformly and then shifted along the radius randomly".
pub fn cluster(spec: ClusterSpec, dim: usize, seed: u64) -> Vec<Point> {
    assert!(dim > 0, "dimensionality must be positive");
    assert!(spec.clusters > 0 && spec.points_per_cluster > 0);
    let mut rng = SeededRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(spec.clusters * spec.points_per_cluster);
    for _ in 0..spec.clusters {
        let center: Vec<f32> = (0..dim).map(|_| rng.random::<f32>()).collect();
        let radius: f32 = rng.random::<f32>() * spec.max_radius;
        for _ in 0..spec.points_per_cluster {
            // Uniform direction: normalized Gaussian vector. In 1-D this
            // degenerates to ±1, which is still correct.
            let mut dir: Vec<f64> = (0..dim).map(|_| gauss(&mut rng)).collect();
            let norm = dir.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                dir = vec![1.0; dim];
            }
            let shift = rng.random::<f32>() as f64; // fraction of the radius
            let coords: Vec<f32> = center
                .iter()
                .zip(dir.iter())
                .map(|(&c, &d)| {
                    let n = if norm < 1e-12 {
                        (dim as f64).sqrt()
                    } else {
                        norm
                    };
                    c + (radius as f64 * shift * d / n) as f32
                })
                .collect();
            out.push(Point::new(coords));
        }
    }
    out
}

/// The simulated "real" data set: Dirichlet-mixture color-histogram-like
/// vectors (see crate docs and DESIGN.md for the substitution rationale).
///
/// `dim = 16` reproduces the paper's 16-element histograms; other
/// dimensionalities are supported for sensitivity experiments.
pub fn real_sim(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    // ~24 scene types gives visible clustering at the paper's data sizes.
    let mut mix = DirichletMixture::new(dim, 24, seed);
    (0..n).map(|_| Point::new(mix.sample())).collect()
}

/// Sample `n` query points *from the data set*, per §3.1 ("the nearest 21
/// points relative to a particular point in the data set"), deterministic
/// in `seed`. Sampling is with replacement, matching "1,000 random
/// trials".
pub fn sample_queries(data: &[Point], n: usize, seed: u64) -> Vec<Point> {
    assert!(
        !data.is_empty(),
        "cannot sample queries from an empty data set"
    );
    let mut rng = SeededRng::seed_from_u64(seed ^ 0x9E37_79B9);
    (0..n)
        .map(|_| data[rng.random_range(0..data.len())].clone())
        .collect()
}

fn gauss(rng: &mut SeededRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_unit_cube() {
        let pts = uniform(500, 16, 1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert_eq!(p.dim(), 16);
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn uniform_is_deterministic() {
        assert_eq!(uniform(10, 4, 7), uniform(10, 4, 7));
        assert_ne!(uniform(10, 4, 7), uniform(10, 4, 8));
    }

    #[test]
    fn uniform_covers_the_cube() {
        // Mean of each coordinate should be near 0.5.
        let pts = uniform(2000, 4, 3);
        for i in 0..4 {
            let mean: f64 = pts.iter().map(|p| p[i] as f64).sum::<f64>() / pts.len() as f64;
            assert!((mean - 0.5).abs() < 0.05, "dim {i}: mean {mean}");
        }
    }

    #[test]
    fn cluster_points_stay_near_their_center() {
        let spec = ClusterSpec {
            clusters: 5,
            points_per_cluster: 200,
            max_radius: 0.05,
        };
        let pts = cluster(spec, 8, 42);
        assert_eq!(pts.len(), 1000);
        // Each consecutive block of 200 points is one cluster: its spread
        // must be at most 2 * max_radius across.
        for c in 0..5 {
            let block = &pts[c * 200..(c + 1) * 200];
            let first = &block[0];
            let max_d = block.iter().map(|p| first.dist(p)).fold(0.0f64, f64::max);
            assert!(max_d <= 2.0 * 0.05 + 1e-6, "cluster {c} spread {max_d}");
        }
    }

    #[test]
    fn cluster_respects_counts() {
        let spec = ClusterSpec {
            clusters: 3,
            points_per_cluster: 7,
            max_radius: 0.1,
        };
        assert_eq!(cluster(spec, 2, 1).len(), 21);
    }

    #[test]
    fn cluster_works_in_one_dimension() {
        let spec = ClusterSpec {
            clusters: 2,
            points_per_cluster: 50,
            max_radius: 0.01,
        };
        let pts = cluster(spec, 1, 5);
        assert_eq!(pts.len(), 100);
    }

    #[test]
    fn real_sim_vectors_are_histograms() {
        let pts = real_sim(300, 16, 9);
        for p in &pts {
            let sum: f32 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3);
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn real_sim_is_nonuniform() {
        // Compare the average nearest-bin mass against uniform's 1/16.
        let pts = real_sim(200, 16, 13);
        let avg_peak: f64 = pts
            .iter()
            .map(|p| p.iter().cloned().fold(0.0f32, f32::max) as f64)
            .sum::<f64>()
            / pts.len() as f64;
        assert!(avg_peak > 0.2, "avg peak bin {avg_peak} — too uniform");
    }

    #[test]
    fn queries_come_from_the_data_set() {
        let data = uniform(50, 4, 3);
        let qs = sample_queries(&data, 20, 1);
        assert_eq!(qs.len(), 20);
        for q in &qs {
            assert!(data.iter().any(|p| p == q));
        }
    }

    #[test]
    fn queries_are_deterministic() {
        let data = uniform(50, 4, 3);
        assert_eq!(sample_queries(&data, 5, 2), sample_queries(&data, 5, 2));
    }
}
