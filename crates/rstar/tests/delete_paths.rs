//! Delete-path tests: drive the condense algorithm's underflow branch
//! deterministically — spatially concentrated drains dissolve whole
//! subtrees into orphans that must be reinserted losslessly — and check
//! the structural invariants after every step of the churn.

use sr_dataset::{uniform, SeededRng};
use sr_geometry::Point;
use sr_pager::PageFile;
use sr_query::brute_force_knn;
use sr_rstar::{verify, RstarTree};

fn build(points: &[Point]) -> RstarTree {
    let mut t = RstarTree::create_from(PageFile::create_in_memory(1024).unwrap(), 3, 64).unwrap();
    for (i, p) in points.iter().enumerate() {
        t.insert(p.clone(), i as u64).unwrap();
    }
    t
}

/// Deleting an entire spatial region, point by point, repeatedly drops
/// leaves and inner nodes below minimum fill: their survivors are
/// dissolved and reinserted. No entry may be lost and every invariant
/// must hold mid-drain.
#[test]
fn region_drain_underflows_and_reinserts() {
    let points = uniform(400, 3, 0x52DE_0001);
    let mut t = build(&points);
    assert!(t.height() >= 2, "tree too shallow to exercise underflow");

    // Drain in x-order so deletions concentrate in one region of the
    // tree instead of spreading the shrinkage evenly.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| points[a].coords()[0].total_cmp(&points[b].coords()[0]));

    let drain = &order[..300];
    let keep: Vec<usize> = order[300..].to_vec();
    for (step, &i) in drain.iter().enumerate() {
        assert!(t.delete(&points[i], i as u64).unwrap(), "lost entry {i}");
        if step % 20 == 0 {
            verify::check(&t).unwrap_or_else(|e| panic!("after {step} deletes: {e}"));
        }
    }
    verify::check(&t).unwrap();
    assert_eq!(t.len() as usize, keep.len());

    // Reinserted orphans must still be reachable by exact lookup and by
    // search.
    for &i in &keep {
        assert!(
            t.contains(&points[i], i as u64).unwrap(),
            "entry {i} unreachable"
        );
    }
    let survivors: Vec<(&[f32], u64)> = keep
        .iter()
        .map(|&i| (points[i].coords(), i as u64))
        .collect();
    let q = points[keep[0]].coords();
    let got = t.knn(q, 10).unwrap();
    let want = brute_force_knn(survivors.iter().copied(), q, 10);
    assert_eq!(
        got.iter().map(|n| n.data).collect::<Vec<_>>(),
        want.iter().map(|n| n.data).collect::<Vec<_>>()
    );
}

/// Draining almost everything walks the root-shrink path: the tree must
/// come back down to a single leaf and still answer queries.
#[test]
fn drain_to_trivial_height_shrinks_root() {
    let points = uniform(500, 3, 0x52DE_0002);
    let mut t = build(&points);
    assert!(t.height() >= 2);
    for (i, p) in points.iter().take(498).enumerate() {
        assert!(t.delete(p, i as u64).unwrap());
    }
    assert_eq!(t.height(), 1, "root did not shrink back to a leaf");
    verify::check(&t).unwrap();
    assert_eq!(t.len(), 2);
    for (i, p) in points.iter().enumerate().skip(498) {
        assert!(t.contains(p, i as u64).unwrap());
    }
}

/// Underflow churn: random interleaved deletes and reinserts around the
/// minimum-fill boundary, verifying throughout. This walks the
/// dissolve/reinsert path many times in both directions.
#[test]
fn churn_around_minimum_fill_keeps_invariants() {
    let points = uniform(240, 3, 0x52DE_0003);
    let mut t = build(&points);
    let mut rng = SeededRng::seed_from_u64(0x52DE_0003);
    let mut live: Vec<usize> = (0..points.len()).collect();
    let mut parked: Vec<usize> = Vec::new();
    for round in 0..600 {
        let del = !live.is_empty() && (parked.is_empty() || rng.random::<bool>());
        if del {
            let k = rng.random_range(0..live.len());
            let i = live.swap_remove(k);
            assert!(t.delete(&points[i], i as u64).unwrap(), "lost entry {i}");
            parked.push(i);
        } else {
            let k = rng.random_range(0..parked.len());
            let i = parked.swap_remove(k);
            t.insert(points[i].clone(), i as u64).unwrap();
            live.push(i);
        }
        if round % 50 == 0 {
            verify::check(&t).unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }
    verify::check(&t).unwrap();
    assert_eq!(t.len() as usize, live.len());
    for &i in &live {
        assert!(
            t.contains(&points[i], i as u64).unwrap(),
            "entry {i} unreachable"
        );
    }
}
