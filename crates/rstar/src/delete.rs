//! R-tree deletion with condense-tree, as the R\*-tree inherits it.
//!
//! When a node underflows, its whole subtree is dissolved: the pages are
//! freed and every point beneath it is reinserted from the root. (The
//! original formulation reinserts orphaned *subtrees* at their original
//! level; dissolving to points is behaviorally equivalent for point data
//! and interacts simply with root shrinking.)

use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::insert::{insert_at_level, propagate_mbrs, AnyEntry};
use crate::node::{LeafEntry, Node};
use crate::tree::RstarTree;

/// Delete the exact entry `(point, data)`. Returns whether it was found.
pub(crate) fn delete(tree: &mut RstarTree, point: &sr_geometry::Point, data: u64) -> Result<bool> {
    let root_level = (tree.height - 1) as u16;
    let Some(path) = find_leaf(tree, tree.root, root_level, point, data)? else {
        return Ok(false);
    };

    let &leaf_id = path
        .last()
        .ok_or_else(|| TreeError::Corrupt("empty descent path".into()))?;
    let mut node = tree.read_node(leaf_id, 0)?;
    if let Node::Leaf(entries) = &mut node {
        let pos = entries
            .iter()
            .position(|e| e.point == *point && e.data == data)
            .ok_or_else(|| {
                TreeError::Corrupt("find_leaf returned a leaf without the entry".into())
            })?;
        entries.remove(pos);
    }

    let mut orphans: Vec<LeafEntry> = Vec::new();
    let mut idx = path.len() - 1;
    loop {
        if idx == 0 {
            tree.write_node(path[0], &node)?;
            break;
        }
        if node.len() < tree.min_for(&node) {
            // Dissolve this node: free its pages and collect its points.
            collect_points(tree, &node, &mut orphans)?;
            tree.pf.free(path[idx])?;
            idx -= 1;
            let level = (tree.height as usize - 1 - idx) as u16;
            let mut parent = tree.read_node(path[idx], level)?;
            if let Node::Inner { entries, .. } = &mut parent {
                let pos = entries
                    .iter()
                    .position(|e| e.child == path[idx + 1])
                    .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
                entries.remove(pos);
            }
            node = parent;
        } else {
            tree.write_node(path[idx], &node)?;
            propagate_mbrs(tree, &path, idx, node.mbr()?)?;
            break;
        }
    }

    shrink_root(tree)?;

    // Reinsert orphaned points (they keep their own reinsertion budget).
    for e in orphans {
        let mut reinserted = vec![false; tree.height as usize];
        insert_at_level(tree, AnyEntry::Leaf(e), 0, &mut reinserted)?;
    }

    tree.count -= 1;
    tree.save_meta()?;
    Ok(true)
}

/// Depth-first search for the leaf holding the exact entry; returns the
/// page-id path root..leaf.
fn find_leaf(
    tree: &RstarTree,
    id: PageId,
    level: u16,
    point: &sr_geometry::Point,
    data: u64,
) -> Result<Option<Vec<PageId>>> {
    let node = tree.read_node(id, level)?;
    match node {
        Node::Leaf(entries) => {
            if entries.iter().any(|e| e.point == *point && e.data == data) {
                Ok(Some(vec![id]))
            } else {
                Ok(None)
            }
        }
        Node::Inner { entries, .. } => {
            for e in &entries {
                if e.rect.contains_point(point.coords()) {
                    if let Some(mut path) = find_leaf(tree, e.child, level - 1, point, data)? {
                        path.insert(0, id);
                        return Ok(Some(path));
                    }
                }
            }
            Ok(None)
        }
    }
}

/// Free every page of `node`'s subtree (the node's own page is freed by
/// the caller) and collect the points it held.
fn collect_points(tree: &RstarTree, node: &Node, out: &mut Vec<LeafEntry>) -> Result<()> {
    match node {
        Node::Leaf(entries) => out.extend(entries.iter().cloned()),
        Node::Inner { level, entries } => {
            for e in entries {
                let child = tree.read_node(e.child, level - 1)?;
                collect_points(tree, &child, out)?;
                tree.pf.free(e.child)?;
            }
        }
    }
    Ok(())
}

/// Shrink the root while it is an inner node with a single child, and
/// replace an emptied inner root with an empty leaf.
fn shrink_root(tree: &mut RstarTree) -> Result<()> {
    loop {
        let root_level = (tree.height - 1) as u16;
        if root_level == 0 {
            return Ok(());
        }
        let node = tree.read_node(tree.root, root_level)?;
        let entries = match &node {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "root is a leaf but the recorded height says otherwise".into(),
                ))
            }
        };
        match entries.len() {
            0 => {
                // Everything beneath the root was dissolved.
                tree.pf.free(tree.root)?;
                let leaf = Node::Leaf(Vec::new());
                tree.root = tree.allocate_node(&leaf)?;
                tree.height = 1;
                tree.save_meta()?;
                return Ok(());
            }
            1 => {
                let child = entries[0].child;
                tree.pf.free(tree.root)?;
                tree.root = child;
                tree.height -= 1;
                tree.save_meta()?;
                // loop: the new root may itself have a single child
            }
            _ => return Ok(()),
        }
    }
}
