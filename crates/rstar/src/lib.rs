//! The R\*-tree (Beckmann, Kriegel, Schneider & Seeger, SIGMOD 1990) in
//! point mode — the rectangle-region baseline of the SR-tree paper (§2.2).
//!
//! A disk-based, height-balanced tree of nested minimum bounding
//! rectangles. This implementation follows the original R\*-tree
//! algorithms:
//!
//! * **ChooseSubtree** — minimum overlap enlargement at the level above
//!   the leaves, minimum area enlargement elsewhere;
//! * **Forced reinsertion** — on the first overflow per level per
//!   insertion, the 30% of entries farthest from the node's center are
//!   reinserted instead of splitting ("close reinsert");
//! * **R\*-split** — axis chosen by minimum margin sum, distribution by
//!   minimum overlap, ties by minimum area;
//! * **Deletion** — the R-tree condense-tree algorithm with orphan
//!   reinsertion.
//!
//! Nearest-neighbor queries run the Roussopoulos et al. depth-first
//! search from [`sr_query`], scoring regions with rectangle `MINDIST`.
//!
//! ```
//! use sr_rstar::RstarTree;
//! use sr_geometry::Point;
//!
//! let mut tree = RstarTree::create_in_memory(2, 8192).unwrap();
//! for (i, xy) in [[0.0f32, 0.0], [1.0, 1.0], [0.2, 0.1]].iter().enumerate() {
//!     tree.insert(Point::new(xy.to_vec()), i as u64).unwrap();
//! }
//! let hits = tree.knn(&[0.0, 0.0], 2).unwrap();
//! assert_eq!(hits[0].data, 0);
//! ```

#![forbid(unsafe_code)]
// Tree internals index into child/entry vectors whose bounds are
// maintained as structural invariants (checked by `verify`); the
// clippy index ban applies to the audited geometry/pager hot paths.
#![allow(clippy::indexing_slicing)]

mod delete;
mod error;
mod insert;
mod node;
mod params;
mod search;
mod split;
mod tree;
pub mod verify;

pub use error::{Result, TreeError};
pub use params::RstarParams;
pub use tree::RstarTree;

pub use sr_query::Neighbor;
