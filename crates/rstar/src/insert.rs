//! The R\*-tree insertion algorithm: ChooseSubtree, OverflowTreatment
//! with forced reinsertion, and upward split propagation.

use sr_geometry::Rect;
use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::{InnerEntry, LeafEntry, Node};
use crate::split;
use crate::tree::RstarTree;

/// An entry being inserted at some level: a point (level 0) or a subtree
/// reference (level ≥ 1, produced by forced reinsertion).
pub(crate) enum AnyEntry {
    Leaf(LeafEntry),
    Inner(InnerEntry),
}

impl AnyEntry {
    /// The (possibly degenerate) rectangle of the entry, used by
    /// ChooseSubtree.
    fn rect(&self) -> Rect {
        match self {
            AnyEntry::Leaf(e) => Rect::from_point(&e.point),
            AnyEntry::Inner(e) => e.rect.clone(),
        }
    }
}

/// Public entry point: insert one point.
pub(crate) fn insert_point(
    tree: &mut RstarTree,
    point: sr_geometry::Point,
    data: u64,
) -> Result<()> {
    // One "reinserted" flag per level, for the R*-tree rule that forced
    // reinsertion runs at most once per level per insertion.
    let mut reinserted = vec![false; tree.height as usize];
    insert_at_level(
        tree,
        AnyEntry::Leaf(LeafEntry { point, data }),
        0,
        &mut reinserted,
    )?;
    tree.count += 1;
    tree.save_meta()?;
    Ok(())
}

/// Insert `entry` at `target_level`, handling overflow by forced
/// reinsertion (first time per level) or split (afterwards), and
/// propagating splits toward the root.
pub(crate) fn insert_at_level(
    tree: &mut RstarTree,
    entry: AnyEntry,
    target_level: u16,
    reinserted: &mut Vec<bool>,
) -> Result<()> {
    debug_assert!((target_level as u32) < tree.height);
    let entry_rect = entry.rect();
    let path = choose_path(tree, &entry_rect, target_level)?;
    let &target = path
        .last()
        .ok_or_else(|| TreeError::Corrupt("empty descent path".into()))?;
    let mut node = tree.read_node(target, target_level)?;
    match (entry, &mut node) {
        (AnyEntry::Leaf(e), Node::Leaf(entries)) => entries.push(e),
        (AnyEntry::Inner(e), Node::Inner { entries, .. }) => entries.push(e),
        _ => {
            return Err(TreeError::Corrupt(
                "insertion target level does not match the node kind on disk".into(),
            ))
        }
    }

    let mut idx = path.len() - 1;
    loop {
        if node.len() <= tree.max_for(&node) {
            tree.write_node(path[idx], &node)?;
            propagate_mbrs(tree, &path, idx, node.mbr()?)?;
            return Ok(());
        }
        if idx == 0 {
            split_root(tree, node)?;
            return Ok(());
        }
        let level = node.level() as usize;
        if !reinserted.get(level).copied().unwrap_or(true) {
            // --- forced reinsertion ---
            reinserted[level] = true;
            let removed = remove_farthest(tree, &mut node)?;
            tree.write_node(path[idx], &node)?;
            propagate_mbrs(tree, &path, idx, node.mbr()?)?;
            // "Close reinsert": re-add starting with the entry closest to
            // the node center (removed is sorted farthest-first).
            for e in removed.into_iter().rev() {
                insert_at_level(tree, e, level as u16, reinserted)?;
            }
            return Ok(());
        }
        // --- split ---
        let (a, b) = split::split_node(&tree.params, node);
        let b_id = tree.allocate_node(&b)?;
        tree.write_node(path[idx], &a)?;
        let (a_mbr, b_mbr) = (a.mbr()?, b.mbr()?);
        idx -= 1;
        let mut parent = tree.read_node(
            path[idx],
            (target_level as usize + (path.len() - 1 - idx)) as u16,
        )?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == path[idx + 1])
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            slot.rect = a_mbr;
            entries.push(InnerEntry {
                rect: b_mbr,
                child: b_id,
            });
        } else {
            return Err(TreeError::Corrupt(
                "parent of a split node is not an inner node".into(),
            ));
        }
        node = parent;
    }
}

/// Descend from the root to `target_level`, choosing the subtree for
/// `rect` at each step with the R\* criteria. Returns the page-id path,
/// root first.
fn choose_path(tree: &RstarTree, rect: &Rect, target_level: u16) -> Result<Vec<PageId>> {
    let mut path = vec![tree.root];
    let mut level = (tree.height - 1) as u16;
    let mut id = tree.root;
    while level > target_level {
        let node = tree.read_node(id, level)?;
        let entries = match &node {
            Node::Inner { entries, .. } => entries,
            Node::Leaf(_) => {
                return Err(TreeError::Corrupt(
                    "leaf found above the target level while descending".into(),
                ))
            }
        };
        let idx = if level == 1 {
            // children are leaves: minimize overlap enlargement
            choose_min_overlap(entries, rect)
        } else {
            choose_min_enlargement(entries, rect)
        };
        id = entries[idx].child;
        path.push(id);
        level -= 1;
    }
    Ok(path)
}

/// R\* ChooseSubtree at the leaf-parent level: least overlap enlargement,
/// ties by least area enlargement, then least area.
fn choose_min_overlap(entries: &[InnerEntry], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, e) in entries.iter().enumerate() {
        let enlarged = e.rect.union(rect);
        let mut overlap_delta = 0.0f64;
        for (j, o) in entries.iter().enumerate() {
            if i == j {
                continue;
            }
            overlap_delta += enlarged.overlap_volume(&o.rect) - e.rect.overlap_volume(&o.rect);
        }
        let area = e.rect.volume();
        let key = (overlap_delta, enlarged.volume() - area, area);
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// ChooseSubtree above the leaf-parent level: least area enlargement,
/// ties by least area.
fn choose_min_enlargement(entries: &[InnerEntry], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for (i, e) in entries.iter().enumerate() {
        let area = e.rect.volume();
        let key = (e.rect.union(rect).volume() - area, area);
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// After writing the node at `path[idx]`, refresh the bounding rectangles
/// recorded for it (and transitively its ancestors) up to the root.
pub(crate) fn propagate_mbrs(
    tree: &RstarTree,
    path: &[PageId],
    idx: usize,
    mut child_mbr: Rect,
) -> Result<()> {
    let mut child_id = path[idx];
    for j in (0..idx).rev() {
        // Level bookkeeping: path runs root..target, so path[j] sits
        // `path.len()-1-j` levels above the target.
        let level = (tree.height as usize - 1 - j) as u16;
        let mut parent = tree.read_node(path[j], level)?;
        if let Node::Inner { entries, .. } = &mut parent {
            let slot = entries
                .iter_mut()
                .find(|e| e.child == child_id)
                .ok_or_else(|| TreeError::Corrupt("parent lost track of its child".into()))?;
            if slot.rect == child_mbr {
                return Ok(()); // nothing changed; ancestors are exact
            }
            slot.rect = child_mbr;
        }
        tree.write_node(path[j], &parent)?;
        child_mbr = parent.mbr()?;
        child_id = path[j];
    }
    Ok(())
}

/// Remove the reinsert-fraction of entries farthest from the node's MBR
/// center, returning them farthest-first.
fn remove_farthest(tree: &RstarTree, node: &mut Node) -> Result<Vec<AnyEntry>> {
    let center = node.mbr()?.center();
    let p = if node.is_leaf() {
        tree.params.reinsert_leaf
    } else {
        tree.params.reinsert_node
    };
    match node {
        Node::Leaf(entries) => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                let da = entries[a].point.dist2(&center);
                let db = entries[b].point.dist2(&center);
                db.total_cmp(&da)
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Leaf)
                .collect())
        }
        Node::Inner { entries, .. } => {
            let mut order: Vec<usize> = (0..entries.len()).collect();
            order.sort_by(|&a, &b| {
                let da = entries[a].rect.center().dist2(&center);
                let db = entries[b].rect.center().dist2(&center);
                db.total_cmp(&da)
            });
            let victims: Vec<usize> = order.into_iter().take(p).collect();
            Ok(extract(entries, &victims)
                .into_iter()
                .map(AnyEntry::Inner)
                .collect())
        }
    }
}

/// Remove `victims` (indices into `entries`) preserving the victims'
/// given order in the returned vector.
fn extract<T>(entries: &mut Vec<T>, victims: &[usize]) -> Vec<T> {
    let mut sorted = victims.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut removed: Vec<(usize, T)> = sorted.into_iter().map(|i| (i, entries.remove(i))).collect();
    // restore the caller's requested order
    let mut out = Vec::with_capacity(victims.len());
    for &v in victims {
        // `victims` holds distinct indices, so every lookup hits.
        if let Some(pos) = removed.iter().position(|(i, _)| *i == v) {
            out.push(removed.remove(pos).1);
        }
    }
    out
}

/// Split an overflowing root, growing the tree by one level.
fn split_root(tree: &mut RstarTree, node: Node) -> Result<()> {
    let level = node.level();
    let (a, b) = split::split_node(&tree.params, node);
    let a_id = tree.allocate_node(&a)?;
    let b_id = tree.allocate_node(&b)?;
    let new_root = Node::Inner {
        level: level + 1,
        entries: vec![
            InnerEntry {
                rect: a.mbr()?,
                child: a_id,
            },
            InnerEntry {
                rect: b.mbr()?,
                child: b_id,
            },
        ],
    };
    // Reuse the old root page for the new root so the meta root pointer
    // stays stable only when we choose; simpler: free it and point meta at
    // a fresh page.
    tree.pf.free(tree.root)?;
    let root_id = tree.allocate_node(&new_root)?;
    tree.root = root_id;
    tree.height += 1;
    tree.save_meta()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafEntry;
    use sr_geometry::Point;

    #[test]
    fn extract_preserves_requested_order() {
        let mut entries = vec!["a", "b", "c", "d", "e"];
        let got = extract(&mut entries, &[4, 1, 2]);
        assert_eq!(got, vec!["e", "b", "c"]);
        assert_eq!(entries, vec!["a", "d"]);
    }

    #[test]
    fn extract_single_and_empty() {
        let mut entries = vec![1, 2, 3];
        assert!(extract(&mut entries, &[]).is_empty());
        assert_eq!(extract(&mut entries, &[0]), vec![1]);
        assert_eq!(entries, vec![2, 3]);
    }

    #[test]
    fn choose_min_enlargement_prefers_containing_rect() {
        let entries = vec![
            InnerEntry {
                rect: Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]),
                child: 1,
            },
            InnerEntry {
                rect: Rect::new(vec![5.0, 5.0], vec![6.0, 6.0]),
                child: 2,
            },
        ];
        let target = Rect::from_point(&Point::new(vec![0.5, 0.5]));
        assert_eq!(choose_min_enlargement(&entries, &target), 0);
        let target2 = Rect::from_point(&Point::new(vec![5.5, 5.5]));
        assert_eq!(choose_min_enlargement(&entries, &target2), 1);
    }

    #[test]
    fn choose_min_overlap_avoids_creating_overlap() {
        // Two adjacent rects; a point between them. Enlarging the left
        // rect to take the point overlaps the right rect less than the
        // converse (the right rect is bigger).
        let entries = vec![
            InnerEntry {
                rect: Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]),
                child: 1,
            },
            InnerEntry {
                rect: Rect::new(vec![2.0, 0.0], vec![5.0, 5.0]),
                child: 2,
            },
        ];
        let target = Rect::from_point(&Point::new(vec![1.5, 0.5]));
        let got = choose_min_overlap(&entries, &target);
        // enlarging entry 0 to x=1.5 does not touch entry 1 (starts at 2)
        assert_eq!(got, 0);
    }

    #[test]
    fn remove_farthest_takes_outliers() {
        // Build a fake tree handle cheaply: remove_farthest needs params
        // only for the count, so use a leaf with a known outlier.
        let pf = sr_pager::PageFile::create_in_memory(1024).unwrap();
        let tree = crate::tree::RstarTree::create_from(pf, 2, 64).unwrap();
        let mut node = Node::Leaf(
            (0..8)
                .map(|i| LeafEntry {
                    point: Point::new(if i == 7 {
                        vec![100.0, 100.0]
                    } else {
                        vec![i as f32 * 0.1, 0.0]
                    }),
                    data: i as u64,
                })
                .collect(),
        );
        let center = node.mbr().unwrap().center();
        let removed = remove_farthest(&tree, &mut node).unwrap();
        assert!(!removed.is_empty());
        // Contract: every removed entry is at least as far from the
        // (pre-removal) MBR center as every kept entry. (Note the R*
        // rule measures from the MBR *center*, not the centroid — with
        // one extreme outlier, the near-origin cluster is what is
        // farthest from that center.)
        let dist = |e: &AnyEntry| match e {
            AnyEntry::Leaf(le) => le.point.dist2(&center),
            AnyEntry::Inner(ie) => ie.rect.center().dist2(&center),
        };
        let min_removed = removed.iter().map(&dist).fold(f64::INFINITY, f64::min);
        if let Node::Leaf(kept) = &node {
            let max_kept = kept
                .iter()
                .map(|e| e.point.dist2(&center))
                .fold(0.0f64, f64::max);
            assert!(
                min_removed >= max_kept,
                "removed {min_removed} < kept {max_kept}"
            );
        }
    }
}
