//! In-memory node representation and its page codec.

use sr_geometry::{bounding_rect_of_points, Point, Rect};
use sr_pager::{PageCodec, PageId};

use crate::error::{Result, TreeError};
use crate::params::{RstarParams, NODE_HEADER};

/// One point stored in a leaf.
#[derive(Clone, Debug)]
pub(crate) struct LeafEntry {
    pub point: Point,
    pub data: u64,
}

/// One child reference stored in an internal node.
#[derive(Clone, Debug)]
pub(crate) struct InnerEntry {
    pub rect: Rect,
    pub child: PageId,
}

/// A materialized node. `level` 0 is the leaf level.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf(Vec<LeafEntry>),
    Inner {
        level: u16,
        entries: Vec<InnerEntry>,
    },
}

impl Node {
    pub fn level(&self) -> u16 {
        match self {
            Node::Leaf(_) => 0,
            Node::Inner { level, .. } => *level,
        }
    }

    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner { entries, .. } => entries.len(),
        }
    }

    /// Exact minimum bounding rectangle of this node's entries.
    ///
    /// # Panics
    /// Panics on an empty node — callers only compute MBRs of nodes that
    /// hold at least one entry (the empty-root case is special-cased in
    /// the tree).
    pub fn mbr(&self) -> Rect {
        match self {
            Node::Leaf(entries) => {
                bounding_rect_of_points(entries.iter().map(|e| e.point.coords()))
            }
            Node::Inner { entries, .. } => {
                let mut it = entries.iter();
                let mut r = it.next().expect("mbr of empty node").rect.clone();
                for e in it {
                    r.expand_to_rect(&e.rect);
                }
                r
            }
        }
    }

    /// Serialize into a page payload.
    pub fn encode(&self, params: &RstarParams, capacity: usize) -> Vec<u8> {
        let mut buf = vec![0u8; capacity];
        let mut c = PageCodec::new(&mut buf);
        c.put_u16(self.level());
        c.put_u16(self.len() as u16);
        match self {
            Node::Leaf(entries) => {
                debug_assert!(entries.len() <= params.max_leaf + 1);
                for e in entries {
                    c.put_coords(e.point.coords());
                    c.put_u64(e.data);
                    c.put_padding(params.data_area - 8);
                }
            }
            Node::Inner { entries, .. } => {
                debug_assert!(entries.len() <= params.max_node + 1);
                for e in entries {
                    c.put_coords(e.rect.min());
                    c.put_coords(e.rect.max());
                    c.put_u64(e.child);
                }
            }
        }
        let len = c.pos();
        buf.truncate(len);
        buf
    }

    /// Deserialize from a page payload.
    pub fn decode(payload: &[u8], params: &RstarParams) -> Result<Node> {
        if payload.len() < NODE_HEADER {
            return Err(TreeError::NotThisIndex("node page too short".into()));
        }
        let mut data = payload.to_vec();
        let mut c = PageCodec::new(&mut data);
        let level = c.get_u16();
        let n = c.get_u16() as usize;
        if level == 0 {
            let need = n * RstarParams::leaf_entry_bytes(params.dim, params.data_area);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated leaf page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let point = Point::new(c.get_coords(params.dim));
                let data = c.get_u64();
                c.skip(params.data_area - 8);
                entries.push(LeafEntry { point, data });
            }
            Ok(Node::Leaf(entries))
        } else {
            let need = n * RstarParams::node_entry_bytes(params.dim);
            if c.remaining() < need {
                return Err(TreeError::NotThisIndex("truncated node page".into()));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let min = c.get_coords(params.dim);
                let max = c.get_coords(params.dim);
                let child = c.get_u64();
                entries.push(InnerEntry {
                    rect: Rect::new(min, max),
                    child,
                });
            }
            Ok(Node::Inner { level, entries })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RstarParams {
        RstarParams::derive(8187, 4, 512)
    }

    #[test]
    fn leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![1.0, 2.0, 3.0, 4.0]),
                data: 42,
            },
            LeafEntry {
                point: Point::new(vec![-1.0, 0.5, 0.0, 9.0]),
                data: u64::MAX,
            },
        ]);
        let bytes = node.encode(&p, 8187);
        let back = Node::decode(&bytes, &p).unwrap();
        assert!(back.is_leaf());
        assert_eq!(back.len(), 2);
        if let Node::Leaf(entries) = back {
            assert_eq!(entries[0].point.coords(), &[1.0, 2.0, 3.0, 4.0]);
            assert_eq!(entries[0].data, 42);
            assert_eq!(entries[1].data, u64::MAX);
        }
    }

    #[test]
    fn inner_roundtrip() {
        let p = params();
        let node = Node::Inner {
            level: 3,
            entries: vec![InnerEntry {
                rect: Rect::new(vec![0.0, 0.0, 0.0, 0.0], vec![1.0, 2.0, 3.0, 4.0]),
                child: 77,
            }],
        };
        let bytes = node.encode(&p, 8187);
        let back = Node::decode(&bytes, &p).unwrap();
        assert_eq!(back.level(), 3);
        if let Node::Inner { entries, .. } = back {
            assert_eq!(entries[0].child, 77);
            assert_eq!(entries[0].rect.max(), &[1.0, 2.0, 3.0, 4.0]);
        }
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let p = params();
        let node = Node::Leaf(vec![]);
        let bytes = node.encode(&p, 8187);
        let back = Node::decode(&bytes, &p).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.is_leaf());
    }

    #[test]
    fn mbr_of_leaf_and_inner() {
        let leaf = Node::Leaf(vec![
            LeafEntry {
                point: Point::new(vec![0.0, 5.0]),
                data: 0,
            },
            LeafEntry {
                point: Point::new(vec![3.0, -1.0]),
                data: 1,
            },
        ]);
        let r = leaf.mbr();
        assert_eq!(r.min(), &[0.0, -1.0]);
        assert_eq!(r.max(), &[3.0, 5.0]);

        let inner = Node::Inner {
            level: 1,
            entries: vec![
                InnerEntry {
                    rect: Rect::new(vec![0.0], vec![1.0]),
                    child: 1,
                },
                InnerEntry {
                    rect: Rect::new(vec![5.0], vec![9.0]),
                    child: 2,
                },
            ],
        };
        let r = inner.mbr();
        assert_eq!(r.min(), &[0.0]);
        assert_eq!(r.max(), &[9.0]);
    }

    #[test]
    fn decode_rejects_garbage() {
        let p = params();
        assert!(Node::decode(&[1], &p).is_err());
        // claims 100 entries but has no bytes
        let mut junk = vec![0u8; 4];
        junk[0] = 0;
        junk[2] = 100;
        assert!(Node::decode(&junk, &p).is_err());
    }
}
