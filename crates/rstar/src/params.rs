//! Capacity parameters, derived from the page size exactly as the paper
//! does (Table 1).
//!
//! On-disk sizes per entry (coordinates are stored as 8-byte floats, see
//! `sr_pager::PageCodec::put_coords`):
//!
//! * node entry = bounding rectangle (`2·D·8` bytes) + child pointer (8);
//! * leaf entry = point (`D·8` bytes) + data area (512 bytes by default —
//!   "the size of the data area associated to each leaf entry is 512
//!   bytes", §3.1 — the first 8 of which hold the `u64` payload).
//!
//! With `D = 16` and 8 KiB pages this yields 30 node entries and 12 leaf
//! entries, matching the paper's Table 1 arithmetic for the R\*-tree.

/// Per-node header: level (u16) + entry count (u16).
pub(crate) const NODE_HEADER: usize = 4;

/// Capacity and policy parameters of an R\*-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RstarParams {
    /// Dimensionality of indexed points.
    pub dim: usize,
    /// Bytes reserved per leaf entry for the data record (≥ 8).
    pub data_area: usize,
    /// Maximum entries in an internal node.
    pub max_node: usize,
    /// Minimum entries in a non-root internal node (40% of max).
    pub min_node: usize,
    /// Maximum entries in a leaf.
    pub max_leaf: usize,
    /// Minimum entries in a non-root leaf (40% of max).
    pub min_leaf: usize,
    /// Entries removed by forced reinsertion (30% of max, ≥ 1).
    pub reinsert_node: usize,
    /// Entries removed by forced reinsertion from a leaf.
    pub reinsert_leaf: usize,
}

impl RstarParams {
    /// Derive parameters from the usable page payload (see
    /// `PageFile::capacity`), the dimensionality, and the per-entry data
    /// area.
    ///
    /// # Panics
    /// Panics if the page is too small to hold at least 2 entries per
    /// node and per leaf, or if `data_area < 8`.
    #[allow(clippy::panic)] // documented contract panic; fallible callers use try_derive
    pub fn derive(page_capacity: usize, dim: usize, data_area: usize) -> Self {
        match Self::try_derive(page_capacity, dim, data_area) {
            Some(p) => p,
            // srlint: allow(panic) -- documented contract panic on
            // construction-time configuration; fallible callers (the
            // on-disk open path) go through `try_derive`.
            None => panic!(
                "invalid parameters: page_capacity={page_capacity} dim={dim} \
                 data_area={data_area} (need dim > 0, data_area >= 8, and at \
                 least 2 entries per node and leaf)"
            ),
        }
    }

    /// Non-panicking variant of [`RstarParams::derive`] for parameters
    /// read back from disk, where every precondition violation is a
    /// corruption symptom rather than a caller bug: returns `None`
    /// wherever `derive` would panic.
    pub fn try_derive(page_capacity: usize, dim: usize, data_area: usize) -> Option<Self> {
        if dim == 0 || data_area < 8 {
            return None;
        }
        let usable = page_capacity.checked_sub(NODE_HEADER)?;
        let max_node = usable / Self::node_entry_bytes(dim);
        let max_leaf = usable / Self::leaf_entry_bytes(dim, data_area);
        if max_node < 2 || max_leaf < 2 {
            return None;
        }
        Some(RstarParams {
            dim,
            data_area,
            max_node,
            min_node: min_fill(max_node),
            max_leaf,
            min_leaf: min_fill(max_leaf),
            reinsert_node: reinsert_count(max_node),
            reinsert_leaf: reinsert_count(max_leaf),
        })
    }

    /// Bytes of one internal-node entry on disk.
    pub fn node_entry_bytes(dim: usize) -> usize {
        2 * 8 * dim + 8
    }

    /// Bytes of one leaf entry on disk.
    pub fn leaf_entry_bytes(dim: usize, data_area: usize) -> usize {
        8 * dim + data_area
    }
}

/// 40% minimum utilization, as the paper sets for every structure, but at
/// least 2 so splits are possible.
pub(crate) fn min_fill(max: usize) -> usize {
    ((max * 2) / 5).max(2).min(max / 2)
}

/// 30% reinsert fraction, as the paper sets.
pub(crate) fn reinsert_count(max: usize) -> usize {
    ((max * 3) / 10).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_at_16_dimensions() {
        // 8192-byte page, 5-byte page header → 8187 usable.
        let p = RstarParams::derive(8187, 16, 512);
        // node entry = 2*8*16 + 8 = 264 → (8187-4)/264 = 30
        assert_eq!(p.max_node, 30);
        // leaf entry = 8*16 + 512 = 640 → (8187-4)/640 = 12
        assert_eq!(p.max_leaf, 12);
        assert_eq!(p.min_node, 12); // 40%
        assert_eq!(p.min_leaf, 4);
        assert_eq!(p.reinsert_node, 9); // 30%
        assert_eq!(p.reinsert_leaf, 3);
    }

    #[test]
    fn fanout_shrinks_with_dimensionality() {
        let lo = RstarParams::derive(8187, 8, 512);
        let hi = RstarParams::derive(8187, 64, 512);
        assert!(hi.max_node < lo.max_node);
    }

    #[test]
    fn min_fill_bounds() {
        for max in 2..200 {
            let m = min_fill(max);
            assert!(m >= 1 && m <= max / 2, "max={max} m={m}");
            let r = reinsert_count(max);
            assert!(r >= 1 && max + 1 - r >= m, "max={max} r={r} m={m}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid parameters")]
    fn tiny_page_rejected() {
        let _ = RstarParams::derive(300, 64, 512);
    }
}
