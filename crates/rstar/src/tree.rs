//! The public [`RstarTree`] type: lifecycle, metadata, and page helpers.

use std::path::Path;

use sr_geometry::{Point, Rect};
use sr_pager::{PageCodec, PageFile, PageId, PageKind};
use sr_query::Neighbor;

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::params::RstarParams;
use crate::{delete, insert, search};

const META_MAGIC: u32 = 0x5253_5452; // "RSTR"
/// Version 2: leaves are columnar (dimension-major). Version-1 files
/// are rejected rather than silently misread — the byte totals match,
/// but the entry layout moved.
const META_VERSION: u32 = 2;

/// A disk-based R\*-tree over points, used by the paper as the
/// rectangle-region baseline.
// srlint: send-sync -- queries take &self and go through the internally synchronized PageFile; params/root/height/count only change via &mut self (insert/delete), which the borrow checker serializes
pub struct RstarTree {
    pub(crate) pf: PageFile,
    pub(crate) params: RstarParams, // srlint: guarded-by(owner)
    pub(crate) root: PageId,        // srlint: guarded-by(owner)
    /// Number of levels; 1 means the root is a leaf. The root's level
    /// number is `height - 1` (leaves are level 0).
    pub(crate) height: u32, // srlint: guarded-by(owner)
    pub(crate) count: u64,          // srlint: guarded-by(owner)
}

impl RstarTree {
    /// Create a new tree in an in-memory page file (tests, benchmarks).
    pub fn create_in_memory(dim: usize, page_size: usize) -> Result<Self> {
        Self::create_from(PageFile::create_in_memory(page_size)?, dim, 512)
    }

    /// Create a new tree in a page file on disk with the default 8 KiB
    /// pages and the paper's 512-byte per-entry data area.
    pub fn create(path: &Path, dim: usize) -> Result<Self> {
        Self::create_from(PageFile::create(path)?, dim, 512)
    }

    /// Create a new tree over an existing empty [`PageFile`], with an
    /// explicit per-leaf-entry data area (≥ 8 bytes).
    pub fn create_from(pf: PageFile, dim: usize, data_area: usize) -> Result<Self> {
        let params = RstarParams::derive(pf.capacity(), dim, data_area);
        let root = pf.allocate(PageKind::Leaf)?;
        let tree = RstarTree {
            pf,
            params,
            root,
            height: 1,
            count: 0,
        };
        tree.write_node(root, &Node::Leaf(Vec::new()))?;
        tree.save_meta()?;
        Ok(tree)
    }

    /// Reopen a tree previously created with [`RstarTree::create`].
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_from(PageFile::open(path)?)
    }

    /// Reopen a tree from an already-open page file.
    pub fn open_from(pf: PageFile) -> Result<Self> {
        let meta = pf.user_meta();
        if meta.len() < 36 {
            return Err(TreeError::NotThisIndex("metadata too short".into()));
        }
        let mut meta = meta;
        let mut c = PageCodec::new(&mut meta);
        if c.get_u32()? != META_MAGIC {
            return Err(TreeError::NotThisIndex("not an R*-tree file".into()));
        }
        if c.get_u32()? != META_VERSION {
            return Err(TreeError::NotThisIndex(
                "unsupported R*-tree version".into(),
            ));
        }
        let dim = c.get_u32()? as usize;
        let data_area = c.get_u32()? as usize;
        let root = c.get_u64()?;
        let height = c.get_u32()?;
        let count = c.get_u64()?;
        let params = RstarParams::try_derive(pf.capacity(), dim, data_area).ok_or_else(|| {
            TreeError::NotThisIndex(format!(
                "stored parameters (dim {dim}, data area {data_area}) do not fit a {}-byte page",
                pf.capacity()
            ))
        })?;
        Ok(RstarTree {
            pf,
            params,
            root,
            height,
            count,
        })
    }

    pub(crate) fn save_meta(&self) -> Result<()> {
        let mut buf = vec![0u8; 36];
        let mut c = PageCodec::new(&mut buf);
        c.put_u32(META_MAGIC)?;
        c.put_u32(META_VERSION)?;
        c.put_u32(self.params.dim as u32)?;
        c.put_u32(self.params.data_area as u32)?;
        c.put_u64(self.root)?;
        c.put_u32(self.height)?;
        c.put_u64(self.count)?;
        self.pf.set_user_meta(&buf)?;
        Ok(())
    }

    /// Dimensionality of indexed points.
    pub fn dim(&self) -> usize {
        self.params.dim
    }

    /// Number of points in the tree.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the tree holds no points.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Tree height in levels (1 = the root is a leaf). Reproduces the
    /// paper's Tables 2 and 3.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Capacity parameters in force (Table 1).
    pub fn params(&self) -> &RstarParams {
        &self.params
    }

    /// The underlying page file, exposed for I/O statistics
    /// ([`sr_pager::IoStats`]) and cache configuration in experiments.
    pub fn pager(&self) -> &PageFile {
        &self.pf
    }

    /// Flush all dirty pages and metadata to the backing store.
    pub fn flush(&self) -> Result<()> {
        self.pf.flush()?;
        Ok(())
    }

    pub(crate) fn check_dim(&self, got: usize) -> Result<()> {
        if got != self.params.dim {
            return Err(TreeError::DimensionMismatch {
                expected: self.params.dim,
                got,
            });
        }
        Ok(())
    }

    /// Read a leaf's raw payload for the columnar scan — a zero-copy view
    /// into the buffer pool ([`sr_pager::PageBuf`]); the kernels score it
    /// without decoding entries.
    pub(crate) fn leaf_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Leaf)?)
    }

    /// Read an inner node's raw payload for the zero-copy bound scan —
    /// same zero-copy view as the leaf path, one logical read per
    /// expansion so `node_expansions == node_reads` holds unchanged.
    pub(crate) fn node_payload(&self, id: PageId) -> Result<sr_pager::PageBuf> {
        Ok(self.pf.read(id, PageKind::Node)?)
    }

    pub(crate) fn read_node(&self, id: PageId, level: u16) -> Result<Node> {
        let kind = if level == 0 {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let payload = self.pf.read(id, kind)?;
        let node = Node::decode(&payload, &self.params)?;
        debug_assert_eq!(node.level(), level, "page {id} level mismatch");
        Ok(node)
    }

    pub(crate) fn write_node(&self, id: PageId, node: &Node) -> Result<()> {
        let kind = if node.is_leaf() {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let payload = node.encode(&self.params, self.pf.capacity())?;
        self.pf.write(id, kind, &payload)?;
        Ok(())
    }

    pub(crate) fn allocate_node(&self, node: &Node) -> Result<PageId> {
        let kind = if node.is_leaf() {
            PageKind::Leaf
        } else {
            PageKind::Node
        };
        let id = self.pf.allocate(kind)?;
        self.write_node(id, node)?;
        Ok(id)
    }

    pub(crate) fn max_for(&self, node: &Node) -> usize {
        if node.is_leaf() {
            self.params.max_leaf
        } else {
            self.params.max_node
        }
    }

    pub(crate) fn min_for(&self, node: &Node) -> usize {
        if node.is_leaf() {
            self.params.min_leaf
        } else {
            self.params.min_node
        }
    }

    /// Insert a point with a `u64` payload (typically a row id).
    pub fn insert(&mut self, point: Point, data: u64) -> Result<()> {
        self.check_dim(point.dim())?;
        insert::insert_point(self, point, data)
    }

    /// Delete the entry matching `point` (exact coordinates) and `data`.
    /// Returns `true` if an entry was removed.
    pub fn delete(&mut self, point: &Point, data: u64) -> Result<bool> {
        self.check_dim(point.dim())?;
        delete::delete(self, point, data)
    }

    /// Whether an exact entry `(point, data)` is stored.
    pub fn contains(&self, point: &Point, data: u64) -> Result<bool> {
        self.check_dim(point.dim())?;
        search::contains(self, point, data)
    }

    /// The `k` nearest neighbors of `query`, sorted by ascending distance.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>> {
        self.knn_with(query, k, &sr_obs::Noop)
    }

    /// [`RstarTree::knn`] with a metrics recorder (node expansions, prune
    /// events, heap high-water — see `sr-obs`).
    pub fn knn_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn(self, query, k, rec)
    }

    /// [`RstarTree::knn_with`] with an explicit leaf-scan kernel — the
    /// ablation knob for the columnar layout. All modes return
    /// bit-identical neighbors; they differ only in scan time (and in the
    /// `EarlyAbandons` counter the pruning mode reports).
    pub fn knn_scan_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        scan: sr_query::LeafScan,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::knn_with_scan(self, query, k, scan, rec)
    }

    /// Every point within `radius` of `query`, sorted by ascending
    /// distance. A negative or NaN radius is rejected with
    /// [`TreeError::InvalidRadius`].
    pub fn range(&self, query: &[f32], radius: f64) -> Result<Vec<Neighbor>> {
        self.range_with(query, radius, &sr_obs::Noop)
    }

    /// [`RstarTree::range`] with a metrics recorder.
    pub fn range_with<R: sr_obs::Recorder + ?Sized>(
        &self,
        query: &[f32],
        radius: f64,
        rec: &R,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query.len())?;
        search::range(self, query, radius, rec)
    }

    /// Bounding rectangles of all (non-empty) leaves — the "leaf-level
    /// regions" whose volumes and diameters Figures 5, 12 and 13 measure.
    pub fn leaf_regions(&self) -> Result<Vec<Rect>> {
        let mut out = Vec::new();
        self.collect_leaf_regions(self.root, (self.height - 1) as u16, &mut out)?;
        Ok(out)
    }

    fn collect_leaf_regions(&self, id: PageId, level: u16, out: &mut Vec<Rect>) -> Result<()> {
        let node = self.read_node(id, level)?;
        match node {
            Node::Leaf(ref entries) => {
                if !entries.is_empty() {
                    out.push(node.mbr()?);
                }
            }
            Node::Inner { entries, level } => {
                for e in entries {
                    self.collect_leaf_regions(e.child, level - 1, out)?;
                }
            }
        }
        Ok(())
    }

    /// Total number of leaf pages (used by the Figure 16 leaf-access
    /// ratio).
    pub fn num_leaves(&self) -> Result<u64> {
        fn walk(tree: &RstarTree, id: PageId, level: u16) -> Result<u64> {
            if level == 0 {
                return Ok(1);
            }
            let node = tree.read_node(id, level)?;
            let mut n = 0;
            if let Node::Inner { entries, .. } = node {
                for e in entries {
                    n += walk(tree, e.child, level - 1)?;
                }
            }
            Ok(n)
        }
        walk(self, self.root, (self.height - 1) as u16)
    }
}

impl sr_query::SpatialIndex for RstarTree {
    fn kind_name(&self) -> &'static str {
        "R*-tree"
    }

    fn dim(&self) -> usize {
        RstarTree::dim(self)
    }

    fn len(&self) -> u64 {
        RstarTree::len(self)
    }

    fn height(&self) -> u32 {
        RstarTree::height(self)
    }

    fn num_leaves(&self) -> std::result::Result<u64, sr_query::IndexError> {
        Ok(RstarTree::num_leaves(self)?)
    }

    fn insert(
        &mut self,
        point: &[f32],
        data: u64,
    ) -> std::result::Result<(), sr_query::IndexError> {
        if point.is_empty() {
            return Err(sr_query::IndexError::DimensionMismatch {
                expected: RstarTree::dim(self),
                got: 0,
            });
        }
        Ok(RstarTree::insert(self, Point::new(point), data)?)
    }

    fn delete(
        &mut self,
        point: &[f32],
        data: u64,
    ) -> std::result::Result<bool, sr_query::IndexError> {
        if point.is_empty() {
            return Err(sr_query::IndexError::DimensionMismatch {
                expected: RstarTree::dim(self),
                got: 0,
            });
        }
        Ok(RstarTree::delete(self, &Point::new(point), data)?)
    }

    fn query(
        &self,
        spec: &sr_query::QuerySpec<'_>,
        rec: &dyn sr_obs::Recorder,
    ) -> std::result::Result<sr_query::QueryOutput, sr_query::IndexError> {
        let rows = match spec.shape {
            sr_query::QueryShape::Knn { k } => {
                RstarTree::knn_scan_with(self, spec.point, k, spec.scan, rec)?
            }
            sr_query::QueryShape::Range { radius } => {
                RstarTree::range_with(self, spec.point, radius, rec)?
            }
        };
        Ok(sr_query::QueryOutput::from_rows(rows))
    }

    fn pager(&self) -> &PageFile {
        RstarTree::pager(self)
    }

    fn flush(&self) -> std::result::Result<(), sr_query::IndexError> {
        Ok(RstarTree::flush(self)?)
    }

    fn verify(&self) -> std::result::Result<String, sr_query::IndexError> {
        let r = crate::verify::check(self)?;
        Ok(format!(
            "{} nodes, {} leaves, {} points",
            r.nodes, r.leaves, r.points
        ))
    }
}
