//! The R\*-tree split: axis by minimum margin sum, distribution by
//! minimum overlap, ties by minimum combined area.

use sr_geometry::Rect;

use crate::node::Node;
use crate::params::RstarParams;

/// Split an overflowing node (holding `max + 1` entries) into two nodes,
/// each holding at least the minimum fill.
pub(crate) fn split_node(params: &RstarParams, node: Node) -> (Node, Node) {
    match node {
        Node::Leaf(entries) => {
            let rects: Vec<Rect> = entries.iter().map(|e| Rect::from_point(&e.point)).collect();
            let (left_idx, right_idx) = rstar_split(&rects, params.min_leaf);
            let (a, b) = partition(entries, &left_idx, &right_idx);
            (Node::Leaf(a), Node::Leaf(b))
        }
        Node::Inner { level, entries } => {
            let rects: Vec<Rect> = entries.iter().map(|e| e.rect.clone()).collect();
            let (left_idx, right_idx) = rstar_split(&rects, params.min_node);
            let (a, b) = partition(entries, &left_idx, &right_idx);
            (
                Node::Inner { level, entries: a },
                Node::Inner { level, entries: b },
            )
        }
    }
}

fn partition<T>(mut entries: Vec<T>, left: &[usize], right: &[usize]) -> (Vec<T>, Vec<T>) {
    debug_assert_eq!(left.len() + right.len(), entries.len());
    let mut tagged: Vec<Option<T>> = entries.drain(..).map(Some).collect();
    // The index lists are disjoint and in-bounds, so every take hits a
    // still-occupied slot; a duplicated index simply yields nothing.
    let mut pick = |idxs: &[usize]| -> Vec<T> {
        idxs.iter()
            .filter_map(|&i| tagged.get_mut(i).and_then(Option::take))
            .collect()
    };
    let a = pick(left);
    let b = pick(right);
    (a, b)
}

/// Core R\* split over entry rectangles. Returns the entry indices of the
/// two groups.
///
/// For every axis, entries are sorted by lower and by upper bound; for
/// every legal distribution (`k = m .. n-m` entries in the first group)
/// the margin (perimeter) sum is accumulated. The axis with the least
/// total margin wins; on that axis the distribution with the least
/// overlap between group rectangles wins, ties broken by least combined
/// area.
pub(crate) fn rstar_split(rects: &[Rect], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = rects.len();
    debug_assert!(n >= 2 * m, "cannot split {n} entries with minimum {m}");
    let dim = rects[0].dim();

    let mut best_axis_margin = f64::INFINITY;
    // Seeded below on the first axis, so the orders are never empty even
    // when every margin compares as INFINITY or NaN.
    let mut orders: [Vec<usize>; 2] = [Vec::new(), Vec::new()];

    for axis in 0..dim {
        let mut by_lower: Vec<usize> = (0..n).collect();
        by_lower.sort_by(|&a, &b| {
            rects[a].min()[axis]
                .total_cmp(&rects[b].min()[axis])
                .then_with(|| rects[a].max()[axis].total_cmp(&rects[b].max()[axis]))
        });
        let mut by_upper: Vec<usize> = (0..n).collect();
        by_upper.sort_by(|&a, &b| {
            rects[a].max()[axis]
                .total_cmp(&rects[b].max()[axis])
                .then_with(|| rects[a].min()[axis].total_cmp(&rects[b].min()[axis]))
        });

        let mut margin_sum = 0.0f64;
        for order in [&by_lower, &by_upper] {
            let (prefix, suffix) = prefix_suffix_bbs(rects, order);
            for k in m..=(n - m) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }
        }
        if axis == 0 || margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            orders = [by_lower, by_upper];
        }
    }

    // Choose the distribution on the winning axis. The fallback — the
    // lower-bound order split at the minimum fill — is a legal
    // distribution, reached only if every overlap/area compares as NaN.
    let mut best: (f64, f64, &[usize], usize) = (f64::INFINITY, f64::INFINITY, &orders[0], m);
    for order in &orders {
        let (prefix, suffix) = prefix_suffix_bbs(rects, order);
        for k in m..=(n - m) {
            let overlap = prefix[k - 1].overlap_volume(&suffix[k]);
            let area = prefix[k - 1].volume() + suffix[k].volume();
            if overlap < best.0 || (overlap == best.0 && area < best.1) {
                best = (overlap, area, order, k);
            }
        }
    }
    let (_, _, order, k) = best;
    (order[..k].to_vec(), order[k..].to_vec())
}

/// `prefix[i]` = bb of order[0..=i]; `suffix[i]` = bb of order[i..].
fn prefix_suffix_bbs(rects: &[Rect], order: &[usize]) -> (Vec<Rect>, Vec<Rect>) {
    let n = order.len();
    let mut prefix = Vec::with_capacity(n);
    let mut acc = rects[order[0]].clone();
    prefix.push(acc.clone());
    for &i in &order[1..] {
        acc.expand_to_rect(&rects[i]);
        prefix.push(acc.clone());
    }
    let mut suffix = vec![rects[order[n - 1]].clone(); n];
    for j in (0..n - 1).rev() {
        let mut r = rects[order[j]].clone();
        r.expand_to_rect(&suffix[j + 1]);
        suffix[j] = r;
    }
    (prefix, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{InnerEntry, LeafEntry};
    use sr_geometry::Point;

    fn pt_rects(coords: &[[f32; 2]]) -> Vec<Rect> {
        coords
            .iter()
            .map(|c| Rect::from_point(&Point::new(c.to_vec())))
            .collect()
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clear clusters on the x axis must be separated.
        let rects = pt_rects(&[
            [0.0, 0.0],
            [0.1, 0.1],
            [0.05, 0.2],
            [10.0, 0.0],
            [10.1, 0.1],
            [10.05, 0.2],
        ]);
        let (a, b) = rstar_split(&rects, 2);
        let cluster = |idx: &[usize]| idx.iter().all(|&i| i < 3) || idx.iter().all(|&i| i >= 3);
        assert!(cluster(&a) && cluster(&b), "a={a:?} b={b:?}");
    }

    #[test]
    fn split_respects_minimum_fill() {
        let rects = pt_rects(&[
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [3.0, 0.0],
            [4.0, 0.0],
            [5.0, 0.0],
            [6.0, 0.0],
        ]);
        let (a, b) = rstar_split(&rects, 3);
        assert!(a.len() >= 3 && b.len() >= 3);
        assert_eq!(a.len() + b.len(), 7);
    }

    #[test]
    fn split_covers_all_indices_exactly_once() {
        let rects = pt_rects(&[
            [0.3, 0.7],
            [0.1, 0.2],
            [0.9, 0.4],
            [0.5, 0.5],
            [0.8, 0.1],
            [0.2, 0.9],
        ]);
        let (a, b) = rstar_split(&rects, 2);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn split_node_distributes_leaf_entries() {
        // Overflowing leaf: max_leaf + 1 entries, as the tree produces.
        let params = RstarParams::derive(8187, 2, 512);
        let n = params.max_leaf + 1;
        let entries: Vec<LeafEntry> = (0..n)
            .map(|i| LeafEntry {
                point: Point::new(vec![i as f32, (i % 3) as f32]),
                data: i as u64,
            })
            .collect();
        let (a, b) = split_node(&params, Node::Leaf(entries));
        assert_eq!(a.len() + b.len(), n);
        assert!(a.len() >= params.min_leaf && b.len() >= params.min_leaf);
    }

    #[test]
    fn split_node_preserves_inner_level() {
        let params = RstarParams::derive(8187, 2, 512);
        let n = params.max_node + 1;
        let entries: Vec<InnerEntry> = (0..n)
            .map(|i| InnerEntry {
                rect: Rect::new(
                    vec![i as f32, 0.0],
                    vec![i as f32 + 0.5, 1.0 + (i % 5) as f32],
                ),
                child: i as u64 + 10,
            })
            .collect();
        let (a, b) = split_node(&params, Node::Inner { level: 2, entries });
        assert_eq!(a.level(), 2);
        assert_eq!(b.level(), 2);
        assert_eq!(a.len() + b.len(), n);
        assert!(a.len() >= params.min_node && b.len() >= params.min_node);
    }

    #[test]
    fn chooses_low_overlap_axis() {
        // Points form a tall thin strip: splitting on y gives zero
        // overlap, splitting on x would give total overlap.
        let rects = pt_rects(&[
            [0.0, 0.0],
            [0.01, 1.0],
            [0.0, 2.0],
            [0.01, 3.0],
            [0.0, 4.0],
            [0.01, 5.0],
        ]);
        let (a, b) = rstar_split(&rects, 2);
        // groups must be contiguous in y
        let max_y = |idx: &[usize]| idx.iter().map(|&i| rects[i].min()[1] as i32).max().unwrap();
        let min_y = |idx: &[usize]| idx.iter().map(|&i| rects[i].min()[1] as i32).min().unwrap();
        assert!(max_y(&a) < min_y(&b) || max_y(&b) < min_y(&a));
    }
}
