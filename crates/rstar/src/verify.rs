//! Structural-invariant checker, used heavily by the test suites.
//!
//! Checks, over the whole tree:
//! * every stored bounding rectangle equals the exact MBR of its child
//!   subtree (the R\*-tree maintains MBRs exactly);
//! * every non-root node respects the `[min, max]` fanout bounds;
//! * all leaves sit at depth `height - 1`;
//! * the entry count in the metadata matches the points on disk.

use sr_pager::PageId;

use crate::error::{Result, TreeError};
use crate::node::Node;
use crate::tree::RstarTree;

/// Summary of a verified tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Internal nodes visited.
    pub nodes: u64,
    /// Leaves visited.
    pub leaves: u64,
    /// Points counted.
    pub points: u64,
}

/// Walk the whole tree, validating every structural invariant.
///
/// # Errors
/// [`TreeError::Corrupt`] naming the offending page and invariant;
/// [`TreeError::Pager`] when a page cannot be read at all.
pub fn check(tree: &RstarTree) -> Result<VerifyReport> {
    let mut report = VerifyReport::default();
    let root_level = (tree.height - 1) as u16;
    walk(tree, tree.root, root_level, true, &mut report)?;
    if report.points != tree.len() {
        return Err(TreeError::Corrupt(format!(
            "metadata says {} points, tree holds {}",
            tree.len(),
            report.points
        )));
    }
    Ok(report)
}

fn walk(
    tree: &RstarTree,
    id: PageId,
    level: u16,
    is_root: bool,
    report: &mut VerifyReport,
) -> Result<()> {
    let node = tree.read_node(id, level)?;
    if node.level() != level {
        return Err(TreeError::Corrupt(format!(
            "page {id}: stored level {} but expected {level}",
            node.level()
        )));
    }
    let (min, max) = if node.is_leaf() {
        (tree.params().min_leaf, tree.params().max_leaf)
    } else {
        (tree.params().min_node, tree.params().max_node)
    };
    if !is_root && (node.len() < min || node.len() > max) {
        return Err(TreeError::Corrupt(format!(
            "page {id} (level {level}): {} entries outside [{min}, {max}]",
            node.len()
        )));
    }
    if is_root && !node.is_leaf() && node.len() < 2 {
        return Err(TreeError::Corrupt(format!(
            "inner root {id} has {} < 2 entries",
            node.len()
        )));
    }
    match node {
        Node::Leaf(entries) => {
            report.leaves += 1;
            report.points += entries.len() as u64;
        }
        Node::Inner { entries, .. } => {
            report.nodes += 1;
            for e in &entries {
                let child = tree.read_node(e.child, level - 1)?;
                if child.len() == 0 {
                    return Err(TreeError::Corrupt(format!(
                        "page {} is an empty non-root node",
                        e.child
                    )));
                }
                let mbr = child.mbr()?;
                if mbr != e.rect {
                    return Err(TreeError::Corrupt(format!(
                        "page {id}: stored rect {:?} differs from child {} MBR {:?}",
                        e.rect, e.child, mbr
                    )));
                }
                walk(tree, e.child, level - 1, false, report)?;
            }
        }
    }
    Ok(())
}
